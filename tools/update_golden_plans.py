"""Regenerate the golden plan files under ``tests/golden_plans/``.

One file per (paper query, rewrite toggle): the compiler's ``explain()``
report — naive plan plus rewritten plan — for each of the five paper
queries under each entry of
:data:`repro.algebra.rules.TOGGLE_CONFIGS`.  The goldens pin the exact
plan shape each rule-family toggle produces, so an inadvertent rule
interaction change shows up as a readable plan diff in
``tests/test_golden_plans.py`` instead of a silent perf or semantics
drift.

Usage::

    PYTHONPATH=src python tools/update_golden_plans.py

Review the resulting ``git diff`` before committing — a golden change
must correspond to an intentional rule change.
"""

from __future__ import annotations

import pathlib

from repro.algebra.rules import TOGGLE_CONFIGS
from repro.bench.queries import ALL_QUERIES
from repro.compiler.pipeline import compile_query

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "tests/golden_plans"
)


def golden_name(query_name: str, toggle: str) -> str:
    return f"{query_name}__{toggle}.txt"


def render(query_name: str, toggle: str) -> str:
    query_text = ALL_QUERIES[query_name](
        collection="/sensors", wrapped=True
    )
    compiled = compile_query(query_text, TOGGLE_CONFIGS[toggle])
    header = (
        f"# golden plan: {query_name} under toggle '{toggle}'\n"
        f"# regenerate: PYTHONPATH=src python tools/update_golden_plans.py\n"
        f"# query: {query_text}\n"
    )
    return header + compiled.explain() + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for query_name in ALL_QUERIES:
        for toggle in TOGGLE_CONFIGS:
            path = GOLDEN_DIR / golden_name(query_name, toggle)
            path.write_text(render(query_name, toggle))
            print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)}")


if __name__ == "__main__":
    main()
