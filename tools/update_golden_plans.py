"""Regenerate the golden plan files under ``tests/golden_plans/``.

One file per (paper query, rewrite toggle): the compiler's ``explain()``
report — naive plan plus rewritten plan — for each of the five paper
queries under each entry of
:data:`repro.algebra.rules.TOGGLE_CONFIGS`.  The goldens pin the exact
plan shape each rule-family toggle produces, so an inadvertent rule
interaction change shows up as a readable plan diff in
``tests/test_golden_plans.py`` instead of a silent perf or semantics
drift.

The pseudo-toggle ``cost`` additionally pins the cost-based planning
phase: every query is compiled under the ``all`` config against the
deterministic :func:`demo_snapshot` statistics.  For the paper queries
(symmetric self-joins over one collection) the cost phase must leave
the plan untouched; the ``QJ*`` demo joins pin each cost decision —
broadcast exchange, skew splitting, and join reordering.

Usage::

    PYTHONPATH=src python tools/update_golden_plans.py

Review the resulting ``git diff`` before committing — a golden change
must correspond to an intentional rule or cost-model change.
"""

from __future__ import annotations

import json
import pathlib

from repro.algebra.rules import TOGGLE_CONFIGS
from repro.bench.queries import ALL_QUERIES
from repro.compiler.pipeline import compile_query
from repro.data.catalog import InMemorySource

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "tests/golden_plans"
)

#: pseudo-toggle name for the cost-phase goldens.
COST_TOGGLE = "cost"

#: joins crafted so the demo statistics trigger each cost decision.
COST_DEMO_QUERIES = {
    # /dim is tiny next to /fact: broadcast the dimension side.
    "QJbroadcast": (
        'for $d in collection("/dim")() '
        'for $f in collection("/fact")() '
        'where $d("k") eq $f("k") '
        'return {"label": $d("label"), "v": $f("v")}'
    ),
    # Self-join on a column where one value carries half the rows:
    # the hot key's exchange bucket is split.
    "QJskew": (
        'for $a in collection("/fact")() '
        'for $b in collection("/fact")() '
        'where $a("station") eq $b("station") '
        'return $b("v")'
    ),
    # Three-way chain written largest-first: the cost order starts
    # from the cheapest pair instead.
    "QJorder": (
        'for $f in collection("/fact")() '
        'for $m in collection("/mid")() '
        'for $d in collection("/dim")() '
        'where $f("k") eq $m("k") and $m("g") eq $d("g") '
        'return {"v": $f("v"), "label": $d("label")}'
    ),
}

_SENSORS_RESULTS = [
    {
        "dataType": "TMIN" if i % 2 else "TMAX",
        "value": i % 40,
        "station": f"st{i % 10}",
        "date": f"2013-01-{1 + i % 28:02d}T00:00:00",
    }
    for i in range(80)
]


def demo_source() -> InMemorySource:
    """Deterministic in-memory source behind :func:`demo_snapshot`."""
    dim = [{"k": i, "g": i % 2, "label": f"d{i}"} for i in range(4)]
    mid = [{"k": i % 4, "g": i % 2} for i in range(40)]
    fact = [
        {
            "k": i % 4,
            "station": "HOT" if i % 2 else f"s{i % 20}",
            "v": i,
        }
        for i in range(400)
    ]
    sensors = [{"root": [{"results": _SENSORS_RESULTS}]}]
    return InMemorySource(
        {
            "/dim": [[json.dumps(dim)]],
            "/mid": [[json.dumps(mid)]],
            "/fact": [[json.dumps(fact)]],
            "/sensors": [[json.dumps(doc)] for doc in sensors],
        },
        stats_sample=10_000,
    )


def demo_snapshot():
    """The statistics snapshot every ``cost`` golden is compiled against.

    Sampling is deterministic (positional prefix, sorted keys), so the
    snapshot — and therefore the goldens — are stable across runs.
    """
    return demo_source().stats_snapshot()


def all_combos() -> list[tuple[str, str]]:
    """Every (query, toggle) pair that owns a golden file."""
    combos = [
        (query_name, toggle)
        for query_name in ALL_QUERIES
        for toggle in TOGGLE_CONFIGS
    ]
    combos += [(query_name, COST_TOGGLE) for query_name in ALL_QUERIES]
    combos += [
        (query_name, toggle)
        for query_name in COST_DEMO_QUERIES
        for toggle in ("all", COST_TOGGLE)
    ]
    return combos


def golden_name(query_name: str, toggle: str) -> str:
    return f"{query_name}__{toggle}.txt"


def render(query_name: str, toggle: str) -> str:
    if query_name in COST_DEMO_QUERIES:
        query_text = COST_DEMO_QUERIES[query_name]
    else:
        query_text = ALL_QUERIES[query_name](
            collection="/sensors", wrapped=True
        )
    if toggle == COST_TOGGLE:
        config = TOGGLE_CONFIGS["all"]
        stats = demo_snapshot()
    else:
        config = TOGGLE_CONFIGS[toggle]
        stats = None
    compiled = compile_query(query_text, config, stats=stats)
    header = (
        f"# golden plan: {query_name} under toggle '{toggle}'\n"
        f"# regenerate: PYTHONPATH=src python tools/update_golden_plans.py\n"
        f"# query: {query_text}\n"
    )
    return header + compiled.explain() + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for query_name, toggle in all_combos():
        path = GOLDEN_DIR / golden_name(query_name, toggle)
        path.write_text(render(query_name, toggle))
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)}")


if __name__ == "__main__":
    main()
