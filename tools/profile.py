#!/usr/bin/env python
"""Profile the paper's queries operator by operator.

Generates a synthetic partitioned sensor collection, runs Q0 / Q1 / Q2
with operator-level profiling enabled, prints each query's rendered
profile (per-operator counters, timing spans, and the rewrite audit),
and writes ``BENCH_profile.json``.  The report also measures the cost of
the instrumentation itself: each query is timed with profiling disabled
and with the wall clock enabled, and the overhead ratio is recorded —
the disabled path is expected to stay within noise of an unprofiled
build.

The ``--rewrite`` flag selects the rule families to compile under
(``all`` | ``none`` | ``path_only`` | ``path_and_pipelining``), which is
how the paper's Figure-12-style before/after attributions are produced:
profile the same query under ``none`` and under ``all`` and compare the
per-operator counters (see EXPERIMENTS.md).

Usage::

    PYTHONPATH=src python tools/profile.py \
        [--out BENCH_profile.json] [--partitions 4] \
        [--mib-per-partition 2] [--repeat 3] [--rewrite all] \
        [--backend sequential]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro import (
    JsonProcessor,
    RewriteConfig,
    SensorDataConfig,
    write_sensor_collection,
)
from repro.bench.queries import q0, q1, q2

QUERIES = {"Q0": q0, "Q1": q1, "Q2": q2}

REWRITE_PRESETS = {
    "all": RewriteConfig.all,
    "none": RewriteConfig.none,
    "path_only": RewriteConfig.path_only,
    "path_and_pipelining": RewriteConfig.path_and_pipelining,
}


def _best_wall_seconds(processor: JsonProcessor, query: str, repeat: int, profile):
    best = None
    for _ in range(repeat):
        result = processor.execute(query, profile=profile)
        if best is None or result.wall_seconds < best:
            best = result.wall_seconds
    return best


def profile_one(
    base_dir: str, name: str, query: str, args: argparse.Namespace
) -> dict:
    """Profile one query; returns the JSON entry and prints the render."""
    rewrite = REWRITE_PRESETS[args.rewrite]()
    with JsonProcessor.from_directory(
        base_dir, rewrite=rewrite, backend=args.backend
    ) as processor:
        processor.execute(query)  # warm OS cache and worker pools
        # The deterministic counter clock makes the recorded profile
        # reproducible run to run (and identical across backends).
        profile = processor.profile(query, clock="counter")
        off = _best_wall_seconds(processor, query, args.repeat, profile=None)
        on = _best_wall_seconds(processor, query, args.repeat, profile="wall")
    overhead = (on / off - 1.0) if off and off > 0 else None
    print(f"-- {name} (rewrite={args.rewrite}, backend={args.backend}) --")
    print(profile.render())
    print(
        f"wall: off={off:.4f}s on={on:.4f}s "
        f"overhead={overhead * 100.0:+.1f}%\n"
    )
    return {
        "profile": profile.to_dict(),
        "wall_seconds_profile_off": off,
        "wall_seconds_profile_on": on,
        "profiling_overhead_ratio": overhead,
    }


def run(args: argparse.Namespace) -> dict:
    report: dict = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "partitions": args.partitions,
            "bytes_per_partition": args.mib_per_partition << 20,
            "repeat": args.repeat,
            "rewrite": args.rewrite,
            "backend": args.backend,
        },
        "queries": {},
    }
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as base_dir:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=args.mib_per_partition << 20,
            config=SensorDataConfig(seed=args.seed),
        )
        for name, make_query in QUERIES.items():
            report["queries"][name] = profile_one(
                base_dir, name, make_query("/sensors"), args
            )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_profile.json")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mib-per-partition", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rewrite", choices=sorted(REWRITE_PRESETS), default="all")
    parser.add_argument(
        "--backend",
        default="sequential",
        help="execution backend: sequential | thread | process",
    )
    args = parser.parse_args(argv)
    report = run(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
