#!/usr/bin/env python
"""Benchmark the cost-based join planner against the un-costed plans.

Builds three synthetic join workloads — a tiny-dimension broadcast
candidate, a hot-key skew candidate, and a three-way join chain written
worst-first — and runs each with cost-based planning on and off across
the configured backends.  Every cost-on run's items are checked
canonically equal to the cost-off run's before anything is reported —
the planner must never change an answer, only its physical shape.
Writes ``BENCH_cost.json``: per scenario and backend, wall seconds and
exchange traffic for both modes, plus the physical annotations the
cost phase chose (empty annotations for a scenario would mean the
planner went inert — that fails the run).

Usage::

    PYTHONPATH=src python tools/bench_cost.py \
        [--out BENCH_cost.json] [--scale 1] [--repeat 1] \
        [--backends sequential,thread]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys

from repro import JsonProcessor
from repro.data.catalog import InMemorySource

ANNOTATION = re.compile(r"\[(?:build|exchange|skew)[^]]*\]")


def scenarios(scale: int) -> dict:
    """Scenario name -> (collections, query, expected annotation hint)."""
    dim = [{"k": i, "g": i % 2, "label": f"d{i}"} for i in range(8)]
    mid = [{"k": i % 8, "g": i % 2} for i in range(60 * scale)]
    fact = [
        {"k": i % 8, "station": "HOT" if i % 2 else f"s{i % 40}", "v": i}
        for i in range(2000 * scale)
    ]
    stations = [
        {"station": f"s{i % 40}", "w": i} for i in range(799 * scale)
    ] + [{"station": "HOT", "w": -1}]
    data = {"/dim": dim, "/mid": mid, "/fact": fact, "/stations": stations}
    return {
        "broadcast": (
            data,
            'for $d in collection("/dim")() '
            'for $f in collection("/fact")() '
            'where $d("k") eq $f("k") '
            'return {"label": $d("label"), "v": $f("v")}',
            "exchange=broadcast",
        ),
        "skew": (
            data,
            'for $s in collection("/stations")() '
            'for $f in collection("/fact")() '
            'where $s("station") eq $f("station") '
            'return $f("v")',
            "skew=",
        ),
        "join-order": (
            data,
            'for $f in collection("/fact")() '
            'for $m in collection("/mid")() '
            'for $d in collection("/dim")() '
            'where $f("k") eq $m("k") and $m("g") eq $d("g") '
            'return {"v": $f("v"), "label": $d("label")}',
            "exchange=broadcast",
        ),
    }


def make_source(collections: dict, partitions: int) -> InMemorySource:
    data = {}
    for name, rows in collections.items():
        parts = [[] for _ in range(partitions)]
        for index, row in enumerate(rows):
            parts[index % partitions].append(row)
        data[name] = [[json.dumps(part)] for part in parts]
    return InMemorySource(data, stats_sample=1_000_000)


def canonical(items) -> list[str]:
    return sorted(repr(item) for item in items)


def bench_scenario(
    name: str,
    collections: dict,
    query: str,
    hint: str,
    backends: list[str],
    partitions: int,
    repeat: int,
) -> dict:
    annotations = ANNOTATION.findall(
        JsonProcessor(source=make_source(collections, partitions), cost=True)
        .compile(query)
        .plan.explain()
    )
    if not annotations or not any(hint in note for note in annotations):
        raise SystemExit(
            f"scenario {name!r}: cost phase chose no {hint!r} annotation "
            f"(got {annotations!r}) — planner went inert"
        )
    entry: dict = {"query": query, "annotations": annotations, "backends": {}}
    for backend in backends:
        modes: dict = {}
        reference = None
        for cost in (True, False):
            wall = []
            for _ in range(repeat):
                with JsonProcessor(
                    source=make_source(collections, partitions),
                    backend=backend,
                    cost=cost,
                ) as processor:
                    result = processor.execute(query)
                wall.append(result.wall_seconds)
            shaped = canonical(result.items)
            if reference is None:
                reference = shaped
            elif shaped != reference:
                raise SystemExit(
                    f"scenario {name!r} ({backend}): cost-on items differ "
                    "from cost-off items"
                )
            modes["cost-on" if cost else "cost-off"] = {
                "wall_seconds": min(wall),
                "items": len(result.items),
                "exchange_tuples": result.stats.exchange_tuples,
                "exchange_bytes": result.stats.exchange_bytes,
            }
        modes["identical_items"] = True
        entry["backends"][backend] = modes
    return entry


def run(args: argparse.Namespace) -> dict:
    report: dict = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "scale": args.scale,
            "partitions": args.partitions,
            "repeat": args.repeat,
            "backends": args.backends,
        },
        "scenarios": {},
    }
    for name, (collections, query, hint) in scenarios(args.scale).items():
        entry = bench_scenario(
            name, collections, query, hint,
            args.backends, args.partitions, args.repeat,
        )
        report["scenarios"][name] = entry
        modes = entry["backends"][args.backends[0]]
        print(
            f"{name}: {', '.join(entry['annotations'])} -> "
            f"cost-on {modes['cost-on']['wall_seconds']:.3f}s / "
            f"{modes['cost-on']['exchange_tuples']} exchanged, "
            f"cost-off {modes['cost-off']['wall_seconds']:.3f}s / "
            f"{modes['cost-off']['exchange_tuples']} exchanged"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_cost.json")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--backends",
        default="sequential,thread",
        help="comma-separated backends to run",
    )
    args = parser.parse_args(argv)
    args.backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    report = run(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
