#!/usr/bin/env python
"""Concurrent-tenant soak benchmark for the query service.

Generates a synthetic partitioned sensor collection, computes one-shot
reference results for every paper query with a plain
:class:`~repro.JsonProcessor`, then soaks a
:class:`~repro.service.QueryService` per backend with several tenants
submitting the full query mix concurrently (two rounds, so the second
round exercises the warm plan cache).  The report asserts and records:

- **byte-identity**: every (tenant, query, backend) cell's items must
  serialize identically to the one-shot reference — the soak fails the
  run (exit 1) on any mismatch;
- **plan-cache warm hits**: per-query cold (compile) vs warm (cache
  hit) service latency, plus the hit/miss counters;
- **admission rejections**: a deliberately tiny-quota tenant floods
  the service and must collect at least one structured
  ``AdmissionError`` (reason counts are recorded).

Usage::

    PYTHONPATH=src python tools/bench_service.py \
        [--out BENCH_service.json] [--partitions 4] \
        [--mib-per-partition 2] [--backends sequential,thread,process] \
        [--tenants 3] [--smoke]

``--smoke`` shrinks the dataset for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro import (
    AdmissionError,
    JsonProcessor,
    QueryService,
    SensorDataConfig,
    TenantQuota,
    write_sensor_collection,
)
from repro.data.catalog import CollectionCatalog
from repro.bench.queries import q0, q0b, q1, q1b, q2

QUERIES = {"Q0": q0, "Q0b": q0b, "Q1": q1, "Q1b": q1b, "Q2": q2}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def host_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable_cores(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def canonical(items) -> str:
    """Byte-comparable serialization of a result item list."""
    return json.dumps(items, sort_keys=False, separators=(",", ":"))


def one_shot_references(base_dir: str) -> dict[str, str]:
    """Reference serialization of every query from a one-shot processor."""
    references = {}
    with JsonProcessor.from_directory(base_dir, backend="sequential") as proc:
        for name, query_fn in QUERIES.items():
            references[name] = canonical(proc.evaluate(query_fn()))
    return references


def soak_backend(
    base_dir: str,
    backend: str,
    references: dict[str, str],
    tenants: int,
    rounds: int,
    max_workers: int,
) -> dict:
    """Soak one backend: concurrent tenants × all queries × *rounds*."""
    catalog = CollectionCatalog(base_dir)
    service = QueryService(
        catalog,
        backend=backend,
        max_concurrent_queries=min(3, max(2, tenants)),
        max_workers=max_workers,
        max_queue_depth=tenants * len(QUERIES) * rounds + 4,
        result_cache_size=0,  # every cell must really execute
        plan_cache_size=32,
    )
    tenant_names = [f"tenant-{i}" for i in range(tenants)]
    cells = []
    latencies: dict[str, dict[str, list[float]]] = {
        name: {"cold": [], "warm": []} for name in QUERIES
    }

    def run_tenant(tenant: str) -> list[dict]:
        rows = []
        for round_index in range(rounds):
            for name, query_fn in QUERIES.items():
                started = time.perf_counter()
                response = service.execute(query_fn(), tenant=tenant)
                elapsed = time.perf_counter() - started
                rows.append(
                    {
                        "tenant": tenant,
                        "query": name,
                        "round": round_index,
                        "identical": canonical(response.items)
                        == references[name],
                        "plan_cache_hit": response.plan_cache_hit,
                        "wall_seconds": round(elapsed, 6),
                        "queue_seconds": round(response.queue_seconds, 6),
                        "strategy": response.strategy,
                    }
                )
                bucket = "warm" if response.plan_cache_hit else "cold"
                latencies[name][bucket].append(elapsed)
        return rows

    with ThreadPoolExecutor(max_workers=tenants) as pool:
        for rows in pool.map(run_tenant, tenant_names):
            cells.extend(rows)
    stats = service.stats()
    service.close()
    mismatches = [c for c in cells if not c["identical"]]
    latency_summary = {
        name: {
            bucket: (
                round(sum(values) / len(values), 6) if values else None
            )
            for bucket, values in buckets.items()
        }
        for name, buckets in latencies.items()
    }
    return {
        "backend": backend,
        "cells": cells,
        "cell_count": len(cells),
        "mismatches": len(mismatches),
        "plan_cache": stats["plan_cache"],
        "mean_latency_seconds": latency_summary,
        "service_counters": {
            key: stats[key]
            for key in ("submitted", "completed", "failed", "rejected")
        },
    }


def admission_rejections(base_dir: str) -> dict:
    """Flood a tiny-quota tenant; every structured rejection is recorded.

    The greedy tenant may run one query and queue none, so a burst of
    back-to-back submissions deterministically rejects everything after
    the first admitted query (queries take milliseconds; submissions
    take microseconds).
    """
    catalog = CollectionCatalog(base_dir)
    service = QueryService(
        catalog,
        backend="sequential",
        max_concurrent_queries=1,
        quotas={
            "greedy": TenantQuota(
                max_concurrent=1,
                max_queued=0,
                memory_budget_bytes=64 * 1024 * 1024,
                deadline_ceiling_seconds=300.0,
            )
        },
    )
    rejections: dict[str, int] = {}
    tickets = []
    burst = 5
    for _ in range(burst):
        try:
            tickets.append(service.submit(q1(), tenant="greedy"))
        except AdmissionError as error:
            rejections[error.reason] = rejections.get(error.reason, 0) + 1
    # Over-budget and over-deadline submissions reject regardless of load.
    for kwargs in (
        {"memory_budget_bytes": 512 * 1024 * 1024},
        {"deadline_seconds": 3600.0},
    ):
        try:
            tickets.append(service.submit(q0(), tenant="greedy", **kwargs))
        except AdmissionError as error:
            rejections[error.reason] = rejections.get(error.reason, 0) + 1
    for ticket in tickets:
        ticket.result()
    stats = service.stats()
    service.close()
    return {
        "burst_size": burst,
        "rejections_by_reason": dict(sorted(rejections.items())),
        "total_rejected": stats["rejected"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mib-per-partition", type=float, default=2.0)
    parser.add_argument(
        "--backends", default="sequential,thread,process"
    )
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny dataset for CI"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.partitions = min(args.partitions, 2)
        args.mib_per_partition = min(args.mib_per_partition, 1.0)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    base_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=int(args.mib_per_partition * 1024 * 1024),
            config=SensorDataConfig(),
        )
        references = one_shot_references(base_dir)
        per_backend = [
            soak_backend(
                base_dir,
                backend,
                references,
                tenants=args.tenants,
                rounds=args.rounds,
                max_workers=min(4, usable_cores()),
            )
            for backend in backends
        ]
        admission = admission_rejections(base_dir)
        report = {
            "host": host_info(),
            "config": {
                "partitions": args.partitions,
                "mib_per_partition": args.mib_per_partition,
                "tenants": args.tenants,
                "rounds": args.rounds,
                "backends": backends,
                "smoke": args.smoke,
            },
            "soak": per_backend,
            "admission": admission,
        }
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    total_cells = sum(b["cell_count"] for b in per_backend)
    mismatches = sum(b["mismatches"] for b in per_backend)
    warm_hits = sum(b["plan_cache"]["hits"] for b in per_backend)
    rejected = admission["total_rejected"]
    print(
        f"{args.out}: {total_cells} cells over {len(backends)} backends, "
        f"{mismatches} mismatches, {warm_hits} plan-cache hits, "
        f"{rejected} admission rejections"
    )
    if mismatches:
        print("FAIL: service results diverged from one-shot execution")
        return 1
    if not warm_hits:
        print("FAIL: no warm plan-cache hits were exercised")
        return 1
    if not rejected:
        print("FAIL: no admission rejection was exercised")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
