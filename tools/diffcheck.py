#!/usr/bin/env python
"""Differential correctness check across the full configuration matrix.

Runs the five paper queries through every (rewrite-toggle × backend ×
projection) cell and a population of seeded random (query, data) pairs
through the toggle axis plus rotating backend/projection coverage, each
cell compared against an independent plain-Python oracle
(:mod:`repro.correctness`).  Every projected cell additionally sweeps
the scan-mode axis (``eager`` / ``ondemand`` / ``cached-warm``) and
byte-compares items and degradation reports across modes, so the tape
scanner and the segment cache are proven bit-equivalent in the same
gate.  Failing generated cases are minimized by
the shrinker before reporting.  Writes ``BENCH_diffcheck.json`` and
exits nonzero on any mismatch — this is the CI gate that the rewrite
rules and parallel backends are semantics-preserving.

Usage::

    PYTHONPATH=src python tools/diffcheck.py \
        [--seed 0] [--budget small|full] [--out BENCH_diffcheck.json] \
        [--max-workers 2] [--no-shrink]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.correctness.harness import BUDGETS, run_diffcheck


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget", choices=sorted(BUDGETS), default="full",
        help="small: quick CI gate; full: the acceptance matrix",
    )
    parser.add_argument("--out", default="BENCH_diffcheck.json")
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimizing failing generated cases",
    )
    args = parser.parse_args(argv)

    report = run_diffcheck(
        seed=args.seed,
        budget=args.budget,
        max_workers=args.max_workers,
        shrink=not args.no_shrink,
        progress=print,
    )

    payload = report.to_dict()
    payload["host"] = {"python": platform.python_version()}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"checked {report.total_cells} cells "
        f"({report.paper_cells} paper, {report.generated_cells} generated "
        f"over {report.generated_cases} cases); "
        f"{len(report.mismatches)} mismatch(es); wrote {args.out}"
    )
    if not report.ok:
        for mismatch in report.mismatches:
            print(
                f"FAIL {mismatch.case} [{mismatch.config}/"
                f"{mismatch.backend}/{mismatch.projection}/"
                f"{mismatch.scan_mode}] "
                f"{mismatch.kind}: {mismatch.detail}",
                file=sys.stderr,
            )
            if mismatch.repro_query:
                print(f"  repro query: {mismatch.repro_query}",
                      file=sys.stderr)
                for partition in mismatch.repro_partitions or []:
                    print(f"  repro partition: {partition}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
