#!/usr/bin/env python
"""Chaos harness: crash/stall schedules across every execution backend.

Sweeps a battery of named fault schedules — worker kills (``os._exit``
under the process backend), stalled partitions, and combinations with
transient partition failures — across the paper-shaped query set on all
three backends, and asserts every disturbed run's result is
byte-identical to an undisturbed sequential baseline.  This is the CI
gate that worker-loss recovery, the degradation ladder, and straggler
speculation are semantics-preserving.

Writes ``BENCH_chaos.json`` and exits nonzero on any mismatch.

Usage::

    PYTHONPATH=src python tools/chaos.py \
        [--out BENCH_chaos.json] [--max-workers 2] \
        [--schedule NAME] [--backend NAME]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    RecoveryPolicy,
    ResilienceConfig,
    RetryPolicy,
)

PARTITIONS = 4
PER_PARTITION = 6

QUERIES = {
    "pipelined": 'for $r in collection("/events") return $r("v")',
    "count": 'count(for $r in collection("/events") return $r)',
    "group": (
        'for $r in collection("/events") '
        'group by $g := $r("g") return count($r("v"))'
    ),
    "join": (
        "avg( "
        'for $a in collection("/events") '
        'for $b in collection("/events") '
        'where $a("g") eq $b("g") and $a("side") eq "l" and $b("side") eq "r" '
        'return $b("v") - $a("v") )'
    ),
}

BACKEND_NAMES = ("sequential", "thread", "process")


def make_source() -> InMemorySource:
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps(
                        {
                            "v": p * 100 + i,
                            "g": i % 3,
                            "side": "l" if i % 2 else "r",
                        }
                    )
                    for i in range(PER_PARTITION)
                )
            ]
            for p in range(PARTITIONS)
        ]
    }
    return InMemorySource(collections)


# ---------------------------------------------------------------------------
# Fault schedules
#
# Each schedule builds a fresh (FaultPlan, ResilienceConfig) pair.  Kill
# and stall faults key on (partition, unit-level attempt), so a
# rescheduled unit sees attempt 2 and a kill registered for attempt 1
# fires exactly once regardless of backend.
# ---------------------------------------------------------------------------


def schedule_kill_first():
    """Kill the worker running the first partition on its first attempt."""
    return FaultPlan().kill_worker(0, attempt=1), ResilienceConfig()


def schedule_kill_mid():
    """Two mid-query kills on different partitions."""
    plan = FaultPlan().kill_worker(1, attempt=1).kill_worker(2, attempt=1)
    return plan, ResilienceConfig()


def schedule_kill_twice():
    """The same partition kills its worker twice, then succeeds."""
    plan = FaultPlan().kill_worker(1, attempt=1).kill_worker(1, attempt=2)
    return plan, ResilienceConfig()


def schedule_stall():
    """One straggling partition; speculation may duplicate it."""
    plan = FaultPlan().stall_partition(3, seconds=0.4)
    config = ResilienceConfig(
        recovery=RecoveryPolicy(
            speculative_floor_seconds=0.1,
            speculative_multiplier=2.0,
            watchdog_interval_seconds=0.02,
        )
    )
    return plan, config


def schedule_kill_and_stall():
    """A worker kill and an unrelated straggler in the same query."""
    plan = (
        FaultPlan()
        .kill_worker(0, attempt=1)
        .stall_partition(2, seconds=0.3)
    )
    config = ResilienceConfig(
        recovery=RecoveryPolicy(
            speculative_floor_seconds=0.1,
            speculative_multiplier=2.0,
            watchdog_interval_seconds=0.02,
        )
    )
    return plan, config


def schedule_cascade():
    """A worker kill plus a transient in-partition failure elsewhere.

    Exercises both recovery layers at once: the backend reschedules the
    killed unit while the partition retry policy absorbs the transient
    error on a different partition.
    """
    plan = FaultPlan(seed=7).kill_worker(1, attempt=1)
    plan.fail_partition(2, times=1)
    config = ResilienceConfig(
        partition_policy="retry", retry=RetryPolicy(max_attempts=3, seed=7)
    )
    return plan, config


def schedule_ladder():
    """Enough kills that the process backend steps down the ladder."""
    plan = (
        FaultPlan()
        .kill_worker(0, attempt=1)
        .kill_worker(1, attempt=1)
        .kill_worker(2, attempt=1)
    )
    config = ResilienceConfig(
        recovery=RecoveryPolicy(max_losses_per_tier=1, speculate=False)
    )
    return plan, config


SCHEDULES = {
    "kill-first": schedule_kill_first,
    "kill-mid": schedule_kill_mid,
    "kill-twice": schedule_kill_twice,
    "stall": schedule_stall,
    "kill+stall": schedule_kill_and_stall,
    "cascade": schedule_cascade,
    "ladder": schedule_ladder,
}


def canonical_items(result) -> str:
    return json.dumps(result.items, sort_keys=True)


def run_cell(query_text, backend, plan, config, max_workers):
    processor = JsonProcessor(
        source=make_source(),
        fault_plan=plan,
        resilience=config,
        backend=backend,
        max_workers=max_workers,
    )
    with processor:
        return processor.execute(query_text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_chaos.json")
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument(
        "--schedule", choices=sorted(SCHEDULES), default=None,
        help="run only this schedule (default: all)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="run only this backend (default: all)",
    )
    args = parser.parse_args(argv)

    schedules = (
        {args.schedule: SCHEDULES[args.schedule]}
        if args.schedule
        else SCHEDULES
    )
    backends = (args.backend,) if args.backend else BACKEND_NAMES

    # Undisturbed sequential baselines, one per query.
    baselines = {
        name: canonical_items(
            run_cell(text, "sequential", None, None, max_workers=1)
        )
        for name, text in QUERIES.items()
    }

    cells = []
    mismatches = []
    for schedule_name, factory in schedules.items():
        for query_name, query_text in QUERIES.items():
            for backend in backends:
                plan, config = factory()
                cell = {
                    "schedule": schedule_name,
                    "query": query_name,
                    "backend": backend,
                }
                try:
                    result = run_cell(
                        query_text, backend, plan, config, args.max_workers
                    )
                except Exception as error:  # noqa: BLE001 - report, don't die
                    cell.update(ok=False, error=f"{type(error).__name__}: {error}")
                    mismatches.append(cell)
                    cells.append(cell)
                    print(f"FAIL {schedule_name}/{query_name}/{backend}: "
                          f"{cell['error']}")
                    continue
                got = canonical_items(result)
                ok = got == baselines[query_name]
                cell.update(
                    ok=ok,
                    worker_crashes=result.stats.worker_crashes,
                    pool_rebuilds=result.stats.pool_rebuilds,
                    ladder_steps=result.stats.ladder_steps,
                    speculative_launched=result.stats.speculative_launched,
                    worker_losses=len(result.degradation.worker_losses),
                )
                if not ok:
                    cell["error"] = (
                        f"result diverged from undisturbed sequential "
                        f"baseline ({got[:120]!r} != "
                        f"{baselines[query_name][:120]!r})"
                    )
                    mismatches.append(cell)
                    print(f"FAIL {schedule_name}/{query_name}/{backend}: "
                          f"{cell['error']}")
                else:
                    print(
                        f"OK   {schedule_name}/{query_name}/{backend}: "
                        f"crashes={cell['worker_crashes']} "
                        f"ladder={cell['ladder_steps']} "
                        f"speculated={cell['speculative_launched']}"
                    )
                cells.append(cell)

    payload = {
        "schedules": sorted(schedules),
        "queries": sorted(QUERIES),
        "backends": list(backends),
        "max_workers": args.max_workers,
        "cells": cells,
        "cell_count": len(cells),
        "mismatch_count": len(mismatches),
        "ok": not mismatches,
        "host": {"python": platform.python_version()},
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"chaos sweep: {len(cells)} cells, {len(mismatches)} mismatch(es); "
        f"wrote {args.out}"
    )
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
