#!/usr/bin/env python
"""Benchmark the execution backends and the scan fast path.

Generates a synthetic partitioned sensor collection and writes two
reports:

``BENCH_parallel.json`` (default) — runs Q0 / Q1 / Q2 under each
backend (``sequential``, ``thread``, ``process``): measured parallel
wall seconds of the partition phases, scanned items per second, the
speedup relative to the sequential backend on the same query, and a
cold vs warm segment-cache column per backend.  Every backend's items
are checked identical to sequential's before timing is reported, so a
speedup can never come from computing less.  Host reporting records
``os.sched_getaffinity`` (the cores this process may actually use);
when only one usable core is available, ``speedup_vs_sequential`` is
refused (``null`` + reason) — a pool of workers time-slicing one core
cannot measure parallelism.

``BENCH_scan.json`` (``--scan``) — benchmarks the DATASCAN projection
itself on Q0/Q1/Q2's scan shape under every scan mode (``eager`` /
``text`` / ``ondemand``), uncached plus segment-cache cold and warm
passes, with items-per-second and the on-demand-vs-eager and
warm-vs-cold speedups.

Usage::

    PYTHONPATH=src python tools/bench.py \
        [--out BENCH_parallel.json] [--partitions 4] \
        [--mib-per-partition 4] [--repeat 3] [--backends process,thread]
    PYTHONPATH=src python tools/bench.py --scan [--scan-out BENCH_scan.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

from repro import JsonProcessor, SensorDataConfig, write_sensor_collection
from repro.cache.config import SCAN_MODES
from repro.data.catalog import CollectionCatalog
from repro.jsonlib.path import parse_path
from repro.bench.queries import q0, q1, q2

QUERIES = {"Q0": q0, "Q1": q1, "Q2": q2}

#: The projection every bench query's DATASCAN carries (Listing 6 shape).
SCAN_PROJECTION = '("root")()("results")()'


def usable_cores() -> int:
    """Cores this process may be scheduled on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def host_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "usable_cores": usable_cores(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


# ---------------------------------------------------------------------------
# Backend benchmark (BENCH_parallel.json)
# ---------------------------------------------------------------------------


def bench_one(base_dir: str, backend: str, query: str, repeat: int) -> dict:
    """Best-of-*repeat* timing for one (backend, query) pair."""
    with JsonProcessor.from_directory(base_dir, backend=backend) as processor:
        processor.execute(query)  # warm OS cache and worker pools
        best = None
        for _ in range(repeat):
            result = processor.execute(query)
            if best is None or (
                result.parallel_wall_seconds < best.parallel_wall_seconds
            ):
                best = result
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        with JsonProcessor.from_directory(
            base_dir, backend=backend, segment_cache_dir=cache_dir
        ) as processor:
            start = time.perf_counter()
            cold = processor.execute(query)
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = processor.execute(query)
            warm_seconds = time.perf_counter() - start
            if warm.items != best.items or cold.items != best.items:
                raise SystemExit(f"{backend}: cached items differ from uncached")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "items": best.items,
        "strategy": best.strategy,
        "parallel_wall_seconds": best.parallel_wall_seconds,
        "wall_seconds": best.wall_seconds,
        "items_scanned": best.stats.items_scanned,
        "items_per_second": (
            best.stats.items_scanned / best.parallel_wall_seconds
            if best.parallel_wall_seconds > 0
            else None
        ),
        "cache_cold_wall_seconds": cold_seconds,
        "cache_warm_wall_seconds": warm_seconds,
    }


def run(args: argparse.Namespace) -> dict:
    cores = usable_cores()
    report: dict = {
        "host": host_info(),
        "config": {
            "partitions": args.partitions,
            "bytes_per_partition": args.mib_per_partition << 20,
            "repeat": args.repeat,
            "backends": args.backends,
        },
        "queries": {},
    }
    if cores <= 1:
        report["speedup_note"] = (
            "speedup_vs_sequential withheld: only one usable core "
            "(os.sched_getaffinity) — parallel backends cannot beat "
            "sequential by running on the same core"
        )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as base_dir:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=args.mib_per_partition << 20,
            config=SensorDataConfig(seed=args.seed),
        )
        for name, make_query in QUERIES.items():
            query = make_query("/sensors")
            entries: dict = {}
            baseline = bench_one(base_dir, "sequential", query, args.repeat)
            entries["sequential"] = baseline
            for backend in args.backends:
                if backend == "sequential":
                    continue
                entry = bench_one(base_dir, backend, query, args.repeat)
                if entry.pop("items") != baseline["items"]:
                    raise SystemExit(
                        f"{name}: {backend} items differ from sequential"
                    )
                entries[backend] = entry
            baseline.pop("items")
            for backend, entry in entries.items():
                entry["speedup_vs_sequential"] = (
                    baseline["parallel_wall_seconds"]
                    / entry["parallel_wall_seconds"]
                    if cores > 1 and entry["parallel_wall_seconds"] > 0
                    else None
                )
            report["queries"][name] = entries
            summary = ", ".join(
                f"{backend} {entry['parallel_wall_seconds']:.3f}s"
                + (
                    f" ({entry['speedup_vs_sequential']:.2f}x)"
                    if entry["speedup_vs_sequential"] is not None
                    else ""
                )
                for backend, entry in entries.items()
            )
            print(f"{name}: {summary}")
    return report


# ---------------------------------------------------------------------------
# Scan benchmark (BENCH_scan.json)
# ---------------------------------------------------------------------------


def _timed_scan(catalog: CollectionCatalog, path) -> tuple[float, int]:
    start = time.perf_counter()
    count = sum(1 for _ in catalog.scan_collection("/sensors", path))
    return time.perf_counter() - start, count


def bench_scan_mode(
    base_dir: str, mode: str, path, repeat: int
) -> dict:
    """Uncached best-of-*repeat* plus cache cold/warm for one scan mode."""
    catalog = CollectionCatalog(base_dir, scan_mode=mode)
    _timed_scan(catalog, path)  # warm the OS page cache
    uncached = None
    items = None
    for _ in range(repeat):
        seconds, count = _timed_scan(catalog, path)
        items = count
        uncached = seconds if uncached is None else min(uncached, seconds)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cached = CollectionCatalog(
            base_dir, scan_mode=mode, segment_cache_dir=cache_dir
        )
        cold_seconds, cold_items = _timed_scan(cached, path)
        warm_seconds = None
        for _ in range(repeat):
            seconds, warm_items = _timed_scan(cached, path)
            if warm_items != items or cold_items != items:
                raise SystemExit(f"{mode}: cached scan items differ")
            warm_seconds = (
                seconds if warm_seconds is None else min(warm_seconds, seconds)
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "items": items,
        "uncached_seconds": uncached,
        "items_per_second": items / uncached if uncached > 0 else None,
        "cache_cold_seconds": cold_seconds,
        "cache_warm_seconds": warm_seconds,
        "warm_speedup_vs_cold": (
            cold_seconds / warm_seconds if warm_seconds > 0 else None
        ),
    }


def run_scan(args: argparse.Namespace) -> dict:
    report: dict = {
        "host": host_info(),
        "config": {
            "partitions": args.partitions,
            "bytes_per_partition": args.mib_per_partition << 20,
            "repeat": args.repeat,
            "projection": SCAN_PROJECTION,
        },
        "queries": {},
    }
    path = parse_path(SCAN_PROJECTION)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as base_dir:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=args.mib_per_partition << 20,
            config=SensorDataConfig(seed=args.seed),
        )
        # Q0/Q1/Q2 all scan the same Listing-6 projection; benchmark it
        # once and record it under each query name for the figure
        # generators.
        modes: dict = {}
        for mode in SCAN_MODES:
            modes[mode] = bench_scan_mode(base_dir, mode, path, args.repeat)
            entry = modes[mode]
            print(
                f"scan/{mode}: uncached {entry['uncached_seconds']:.3f}s "
                f"({entry['items_per_second']:.0f} items/s), "
                f"cold {entry['cache_cold_seconds']:.3f}s, "
                f"warm {entry['cache_warm_seconds']:.3f}s "
                f"({entry['warm_speedup_vs_cold']:.1f}x)"
            )
        eager = modes["eager"]["items_per_second"]
        for mode, entry in modes.items():
            entry["speedup_vs_eager"] = (
                entry["items_per_second"] / eager if eager else None
            )
        for name in QUERIES:
            report["queries"][name] = {
                "projection": SCAN_PROJECTION,
                "modes": modes,
            }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--scan-out", default="BENCH_scan.json")
    parser.add_argument(
        "--scan",
        action="store_true",
        help="benchmark scan modes / segment cache instead of backends",
    )
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mib-per-partition", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--backends",
        default="thread,process",
        help="comma-separated backends to compare against sequential",
    )
    args = parser.parse_args(argv)
    args.backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if args.scan:
        report = run_scan(args)
        out = args.scan_out
    else:
        report = run(args)
        out = args.out
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
