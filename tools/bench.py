#!/usr/bin/env python
"""Benchmark the execution backends on the paper's queries.

Generates a synthetic partitioned sensor collection, runs Q0 / Q1 / Q2
under each backend (``sequential``, ``thread``, ``process``), and writes
``BENCH_parallel.json``: per query and backend, the measured parallel
wall seconds of the partition phases, scanned items per second, and the
speedup relative to the sequential backend on the same query.  Every
backend's items are checked identical to sequential's before timing is
reported, so a speedup can never come from computing less.

Usage::

    PYTHONPATH=src python tools/bench.py \
        [--out BENCH_parallel.json] [--partitions 4] \
        [--mib-per-partition 4] [--repeat 3] [--backends process,thread]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro import JsonProcessor, SensorDataConfig, write_sensor_collection
from repro.bench.queries import q0, q1, q2

QUERIES = {"Q0": q0, "Q1": q1, "Q2": q2}


def bench_one(base_dir: str, backend: str, query: str, repeat: int) -> dict:
    """Best-of-*repeat* timing for one (backend, query) pair."""
    with JsonProcessor.from_directory(base_dir, backend=backend) as processor:
        processor.execute(query)  # warm OS cache and worker pools
        best = None
        for _ in range(repeat):
            result = processor.execute(query)
            if best is None or (
                result.parallel_wall_seconds < best.parallel_wall_seconds
            ):
                best = result
    return {
        "items": best.items,
        "strategy": best.strategy,
        "parallel_wall_seconds": best.parallel_wall_seconds,
        "wall_seconds": best.wall_seconds,
        "items_scanned": best.stats.items_scanned,
        "items_per_second": (
            best.stats.items_scanned / best.parallel_wall_seconds
            if best.parallel_wall_seconds > 0
            else None
        ),
    }


def run(args: argparse.Namespace) -> dict:
    report: dict = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "partitions": args.partitions,
            "bytes_per_partition": args.mib_per_partition << 20,
            "repeat": args.repeat,
            "backends": args.backends,
        },
        "queries": {},
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as base_dir:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=args.mib_per_partition << 20,
            config=SensorDataConfig(seed=args.seed),
        )
        for name, make_query in QUERIES.items():
            query = make_query("/sensors")
            entries: dict = {}
            baseline = bench_one(base_dir, "sequential", query, args.repeat)
            entries["sequential"] = baseline
            for backend in args.backends:
                if backend == "sequential":
                    continue
                entry = bench_one(base_dir, backend, query, args.repeat)
                if entry.pop("items") != baseline["items"]:
                    raise SystemExit(
                        f"{name}: {backend} items differ from sequential"
                    )
                entries[backend] = entry
            baseline.pop("items")
            for backend, entry in entries.items():
                entry["speedup_vs_sequential"] = (
                    baseline["parallel_wall_seconds"]
                    / entry["parallel_wall_seconds"]
                    if entry["parallel_wall_seconds"] > 0
                    else None
                )
            report["queries"][name] = entries
            summary = ", ".join(
                f"{backend} {entry['parallel_wall_seconds']:.3f}s "
                f"({entry['speedup_vs_sequential']:.2f}x)"
                for backend, entry in entries.items()
            )
            print(f"{name}: {summary}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mib-per-partition", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--backends",
        default="thread,process",
        help="comma-separated backends to compare against sequential",
    )
    args = parser.parse_args(argv)
    args.backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    report = run(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
