#!/usr/bin/env python
"""JSON-lines front end for the long-lived query service.

Reads one JSON request per line on stdin, writes one JSON response per
line on stdout (responses are written as queries *complete*, so they
can interleave across tenants — match them up by ``id``).  Protocol::

    {"op": "query", "id": 1, "tenant": "alice", "query": "1 + 1",
     "profile": "counter", "memory_budget_bytes": 1048576,
     "deadline_seconds": 5.0}
    {"op": "stats", "id": 2}
    {"op": "shutdown"}

Responses::

    {"id": 1, "ok": true, "items": [2], "telemetry": {...}}
    {"id": 3, "ok": false, "error": "AdmissionError", "reason":
     "tenant-quota", "message": "..."}

An admission rejection answers immediately (the query never queues);
other failures answer when the query unwinds.  EOF on stdin behaves
like ``shutdown``: the queue drains, then the process exits.

``SIGTERM`` and ``SIGINT`` shut down gracefully: the server stops
accepting new requests, drains in-flight queries for up to
``--drain-timeout`` seconds (cancelling whatever remains), and emits a
final structured shutdown line before exiting::

    {"id": null, "ok": true, "shutdown": true, "signal": "SIGTERM",
     "drained": true}

Usage::

    PYTHONPATH=src python tools/serve.py --data /path/to/collections \
        [--backend process] [--max-concurrent 4] [--result-cache 64] \
        [--max-running 2] [--max-queued 8] [--drain-timeout 30]
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro import AdmissionError, QueryService, TenantQuota
from repro.data.catalog import CollectionCatalog


def response_payload(response) -> dict:
    """The JSON-friendly telemetry subset of a ServiceResponse."""
    payload = {
        "id": response.request_id,
        "ok": True,
        "items": response.items,
        "telemetry": {
            "tenant": response.tenant,
            "backend": response.backend,
            "strategy": response.strategy,
            "wall_seconds": round(response.wall_seconds, 6),
            "queue_seconds": round(response.queue_seconds, 6),
            "plan_cache_hit": response.plan_cache_hit,
            "result_cache_hit": response.result_cache_hit,
            "is_partial": response.is_partial,
            "warnings": response.warnings,
        },
    }
    if response.deadline_slack_seconds is not None:
        payload["telemetry"]["deadline_slack_seconds"] = round(
            response.deadline_slack_seconds, 6
        )
    if response.degradation is not None:
        payload["telemetry"]["degradation"] = response.degradation.to_dict()
    if response.profile is not None:
        payload["telemetry"]["profile"] = response.profile.to_dict()
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--data", required=True, help="collection base dir")
    parser.add_argument("--backend", default=None)
    parser.add_argument("--max-concurrent", type=int, default=2)
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--plan-cache", type=int, default=128)
    parser.add_argument("--result-cache", type=int, default=0)
    parser.add_argument(
        "--max-running", type=int, default=2, help="per-tenant concurrency"
    )
    parser.add_argument(
        "--max-queued", type=int, default=8, help="per-tenant queue depth"
    )
    parser.add_argument("--memory-budget-bytes", type=int, default=None)
    parser.add_argument("--deadline-ceiling", type=float, default=None)
    parser.add_argument(
        "--on-malformed", default="fail",
        choices=("fail", "skip_record", "skip_file"),
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight queries on SIGTERM/SIGINT "
             "before cancelling them",
    )
    args = parser.parse_args(argv)

    service = QueryService(
        CollectionCatalog(args.data, on_malformed=args.on_malformed),
        backend=args.backend,
        max_concurrent_queries=args.max_concurrent,
        max_workers=args.max_workers,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        default_quota=TenantQuota(
            max_concurrent=args.max_running,
            max_queued=args.max_queued,
            memory_budget_bytes=args.memory_budget_bytes,
            deadline_ceiling_seconds=args.deadline_ceiling,
        ),
    )
    write_lock = threading.Lock()

    def emit(payload: dict) -> None:
        with write_lock:
            sys.stdout.write(json.dumps(payload) + "\n")
            sys.stdout.flush()

    def await_ticket(ticket, client_id) -> None:
        answer_id = client_id if client_id is not None else ticket.request_id
        try:
            payload = response_payload(ticket.result())
            payload["id"] = answer_id
            emit(payload)
        except Exception as error:  # noqa: BLE001 - protocol boundary
            payload = {
                "id": answer_id,
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
            reason = getattr(error, "reason", None)
            if reason:
                payload["reason"] = reason
            emit(payload)

    # Graceful termination: the handler raises out of the (possibly
    # blocked-on-stdin) request loop — signal handlers run on the main
    # thread, so the raise lands exactly there — and the tail below
    # drains + emits the structured shutdown line.
    class _ShutdownSignal(Exception):
        def __init__(self, name: str):
            super().__init__(name)
            self.name = name

    def request_shutdown(signum, frame):
        raise _ShutdownSignal(signal.Signals(signum).name)

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, request_shutdown)
        except ValueError:
            pass  # not the main thread (embedded use); no handlers

    stop_signal = None
    waiters = []
    try:
        lines = iter(sys.stdin)
        while True:
            try:
                line = next(lines)
            except StopIteration:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                emit({"id": None, "ok": False, "error": "ProtocolError",
                      "message": f"bad JSON: {error}"})
                continue
            op = request.get("op", "query")
            request_id = request.get("id")
            if op == "shutdown":
                emit({"id": request_id, "ok": True, "shutdown": True})
                break
            if op == "stats":
                emit({"id": request_id, "ok": True, "stats": service.stats()})
                continue
            if op != "query" or "query" not in request:
                emit({"id": request_id, "ok": False, "error": "ProtocolError",
                      "message": f"unsupported request: {op!r}"})
                continue
            try:
                ticket = service.submit(
                    request["query"],
                    tenant=request.get("tenant", "default"),
                    profile=request.get("profile"),
                    memory_budget_bytes=request.get("memory_budget_bytes"),
                    deadline_seconds=request.get("deadline_seconds"),
                )
            except AdmissionError as error:
                emit({
                    "id": request_id,
                    "ok": False,
                    "error": "AdmissionError",
                    "reason": error.reason,
                    "tenant": error.tenant,
                    "message": str(error),
                })
                continue
            waiter = threading.Thread(
                target=await_ticket, args=(ticket, request_id)
            )
            waiter.start()
            waiters.append(waiter)
    except _ShutdownSignal as sig:
        stop_signal = sig.name
    if stop_signal is not None:
        # Signal-initiated: stop accepting, drain bounded, cancel the
        # rest, and tell the client exactly how the shutdown went.
        drained = service.drain(timeout=args.drain_timeout)
        service.close(cancel_pending=not drained)
        for waiter in waiters:
            waiter.join()
        emit({
            "id": None,
            "ok": True,
            "shutdown": True,
            "signal": stop_signal,
            "drained": drained,
        })
        return 0
    for waiter in waiters:
        waiter.join()
    service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
