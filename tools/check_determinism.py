#!/usr/bin/env python
"""Check that fault-injected executions degrade deterministically.

Runs a battery of fault-injection scenarios twice each and diffs the
serialized degradation reports (and result items): under a fixed seed,
both runs must be byte-identical.  Exits non-zero on any mismatch.

``--chaos`` switches to the worker-crash battery: seeded kill/stall
schedules replayed twice with ``max_workers=1`` (serialized pool
execution makes crash batches — and therefore worker-loss event order —
deterministic), diffing items, the degradation report, and the
deterministic recovery counters.  Timing-dependent counters
(speculation, pool rebuilds) are excluded from the payload.

Usage::

    PYTHONPATH=src python tools/check_determinism.py [--chaos]
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    RecoveryPolicy,
    ResilienceConfig,
    RetryPolicy,
)

PARTITIONS = 4
RECORDS = 120
QUERY = 'for $r in collection("/events") return $r("v")'
COUNT_QUERY = 'count(for $r in collection("/events") return $r)'


def make_source(on_malformed: str) -> InMemorySource:
    collections = {
        "/events": [
            ["\n".join(json.dumps({"v": p * 1000 + i}) for i in range(RECORDS))]
            for p in range(PARTITIONS)
        ]
    }
    return InMemorySource(collections, on_malformed=on_malformed)


def scenario_retry_and_corruption(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(2, times=2)
    plan.corrupt_records(1, fraction=0.02)
    config = ResilienceConfig(
        partition_policy="retry", retry=RetryPolicy(max_attempts=3, seed=seed)
    )
    return make_source("skip_record"), plan, config, QUERY


def scenario_skip_partition(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(0, permanent=True)
    config = ResilienceConfig(partition_policy="skip_partition")
    return make_source("fail"), plan, config, COUNT_QUERY


def scenario_exhausted_degrades(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(3, times=10)
    plan.delay_partition(1, 0.25)
    config = ResilienceConfig(
        partition_policy="retry",
        retry=RetryPolicy(max_attempts=3, seed=seed),
        on_exhausted="skip",
    )
    return make_source("skip_record"), plan, config, QUERY


SCENARIOS = {
    "retry+corruption": scenario_retry_and_corruption,
    "skip_partition": scenario_skip_partition,
    "retry-exhausted+straggler": scenario_exhausted_degrades,
}


# ---------------------------------------------------------------------------
# Chaos scenarios (--chaos): worker kills and stalls.
#
# Kill/stall faults key on (partition, unit-level attempt) — pure
# functions of the schedule — and with max_workers=1 the pool runs one
# unit at a time, so crash attribution and worker-loss event order are
# fully deterministic even under the process backend's real os._exit.
# ---------------------------------------------------------------------------


def chaos_kill(seed: int):
    plan = FaultPlan(seed=seed)
    plan.kill_worker(0, attempt=1)
    plan.kill_worker(2, attempt=1).kill_worker(2, attempt=2)
    return make_source("fail"), plan, ResilienceConfig(), QUERY


def chaos_kill_and_stall(seed: int):
    plan = FaultPlan(seed=seed)
    plan.kill_worker(1, attempt=1)
    plan.stall_partition(3, seconds=0.2)
    config = ResilienceConfig(
        recovery=RecoveryPolicy(
            speculative_floor_seconds=0.05,
            speculative_multiplier=2.0,
            watchdog_interval_seconds=0.02,
        )
    )
    return make_source("fail"), plan, config, COUNT_QUERY


def chaos_kill_ladder(seed: int):
    plan = FaultPlan(seed=seed)
    for partition in (0, 1, 2):
        plan.kill_worker(partition, attempt=1)
    config = ResilienceConfig(
        recovery=RecoveryPolicy(max_losses_per_tier=1, speculate=False)
    )
    return make_source("fail"), plan, config, QUERY


CHAOS_SCENARIOS = {
    "kill-schedule": chaos_kill,
    "kill+stall": chaos_kill_and_stall,
    "kill-ladder": chaos_kill_ladder,
}


def run_once(factory, seed: int, chaos: bool = False) -> str:
    source, plan, config, query = factory(seed)
    kwargs = {"max_workers": 1} if chaos else {}
    processor = JsonProcessor(
        source=source, fault_plan=plan, resilience=config, **kwargs
    )
    with processor:
        result = processor.execute(query)
    payload = {
        "items": result.items,
        "strategy": result.strategy,
        "injected_seconds": result.injected_seconds,
        "degradation": result.degradation.to_dict(),
    }
    if chaos:
        # Speculation and pool-rebuild counters are timing-dependent;
        # only the serialized-execution-deterministic counters go in.
        payload["worker_crashes"] = result.stats.worker_crashes
        payload["ladder_steps"] = result.stats.ladder_steps
    return json.dumps(payload, sort_keys=True, indent=2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument(
        "--chaos", action="store_true",
        help="replay seeded worker kill/stall schedules instead of the "
             "data-fault battery",
    )
    args = parser.parse_args(argv)
    scenarios = CHAOS_SCENARIOS if args.chaos else SCENARIOS

    failures = 0
    for name, factory in scenarios.items():
        first = run_once(factory, seed=7, chaos=args.chaos)
        second = run_once(factory, seed=7, chaos=args.chaos)
        if first == second:
            print(f"OK   {name}: degradation report byte-identical")
            continue
        failures += 1
        print(f"FAIL {name}: reports differ between runs")
        diff = difflib.unified_diff(
            first.splitlines(), second.splitlines(), "run1", "run2", lineterm=""
        )
        for line in list(diff)[:40]:
            print(f"  {line}")
    if failures:
        print(f"{failures} scenario(s) were non-deterministic")
        return 1
    print("all scenarios deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
