#!/usr/bin/env python
"""Check that fault-injected executions degrade deterministically.

Runs a battery of fault-injection scenarios twice each and diffs the
serialized degradation reports (and result items): under a fixed seed,
both runs must be byte-identical.  Exits non-zero on any mismatch.

Usage::

    PYTHONPATH=src python tools/check_determinism.py
"""

from __future__ import annotations

import difflib
import json
import sys

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    ResilienceConfig,
    RetryPolicy,
)

PARTITIONS = 4
RECORDS = 120
QUERY = 'for $r in collection("/events") return $r("v")'
COUNT_QUERY = 'count(for $r in collection("/events") return $r)'


def make_source(on_malformed: str) -> InMemorySource:
    collections = {
        "/events": [
            ["\n".join(json.dumps({"v": p * 1000 + i}) for i in range(RECORDS))]
            for p in range(PARTITIONS)
        ]
    }
    return InMemorySource(collections, on_malformed=on_malformed)


def scenario_retry_and_corruption(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(2, times=2)
    plan.corrupt_records(1, fraction=0.02)
    config = ResilienceConfig(
        partition_policy="retry", retry=RetryPolicy(max_attempts=3, seed=seed)
    )
    return make_source("skip_record"), plan, config, QUERY


def scenario_skip_partition(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(0, permanent=True)
    config = ResilienceConfig(partition_policy="skip_partition")
    return make_source("fail"), plan, config, COUNT_QUERY


def scenario_exhausted_degrades(seed: int):
    plan = FaultPlan(seed=seed)
    plan.fail_partition(3, times=10)
    plan.delay_partition(1, 0.25)
    config = ResilienceConfig(
        partition_policy="retry",
        retry=RetryPolicy(max_attempts=3, seed=seed),
        on_exhausted="skip",
    )
    return make_source("skip_record"), plan, config, QUERY


SCENARIOS = {
    "retry+corruption": scenario_retry_and_corruption,
    "skip_partition": scenario_skip_partition,
    "retry-exhausted+straggler": scenario_exhausted_degrades,
}


def run_once(factory, seed: int) -> str:
    source, plan, config, query = factory(seed)
    processor = JsonProcessor(source=source, fault_plan=plan, resilience=config)
    result = processor.execute(query)
    payload = {
        "items": result.items,
        "strategy": result.strategy,
        "injected_seconds": result.injected_seconds,
        "degradation": result.degradation.to_dict(),
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def main() -> int:
    failures = 0
    for name, factory in SCENARIOS.items():
        first = run_once(factory, seed=7)
        second = run_once(factory, seed=7)
        if first == second:
            print(f"OK   {name}: degradation report byte-identical")
            continue
        failures += 1
        print(f"FAIL {name}: reports differ between runs")
        diff = difflib.unified_diff(
            first.splitlines(), second.splitlines(), "run1", "run2", lineterm=""
        )
        for line in list(diff)[:40]:
            print(f"  {line}")
    if failures:
        print(f"{failures} scenario(s) were non-deterministic")
        return 1
    print("all scenarios deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
