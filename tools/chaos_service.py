#!/usr/bin/env python
"""Service chaos harness: slot death, cache corruption, disk-full, storms.

Builds a small on-disk catalog in a tempdir, then sweeps disturbance
scenarios across all three execution backends through the long-lived
``QueryService`` — the *service-level* counterpart of ``tools/chaos.py``
(which disturbs a single ``JsonProcessor`` run):

* ``slot-death``    — an injected worker-slot death before every query;
  the supervisor must respawn the slot and the query must retry to an
  answer byte-identical to the undisturbed baseline, with zero
  abandoned slots.
* ``slot-storm``    — several deaths queued across the sweep on a
  two-slot service; queries bounce between slots and every slot must
  end the sweep live.
* ``cache-corrupt`` — prime the segment cache, bit-flip every stored
  segment, re-run; CRC32 validation must detect each corrupt segment,
  fall back to a rescan, and repair the cache, with structured
  ``corrupt`` events on the response.
* ``disk-full``     — every segment-cache I/O raises ``ENOSPC`` via
  ``FaultPlan.fail_cache_io``; the cache must degrade to cache-off
  (structured ``disabled`` event) without touching results.

Every disturbed cell's items must be byte-identical to the undisturbed
sequential baseline, and no slot may end a scenario abandoned.  Writes
``BENCH_servicechaos.json`` and exits nonzero on any divergence,
unrecovered slot, or missing recovery event.

Usage::

    PYTHONPATH=src python tools/chaos_service.py \
        [--budget small|full] [--out BENCH_servicechaos.json] \
        [--backend NAME] [--scenario NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile

from repro import FaultPlan, QueryService
from repro.data.catalog import CollectionCatalog

PARTITIONS = 4
PER_PARTITION = 6

QUERIES = {
    "pipelined": 'for $r in collection("/events") return $r("v")',
    "count": 'count(for $r in collection("/events") return $r)',
    "group": (
        'for $r in collection("/events") '
        'group by $g := $r("g") return count($r("v"))'
    ),
}

# Scan-shaped queries that actually exercise the segment cache.
CACHE_QUERIES = ("pipelined", "count")

BACKEND_NAMES = ("sequential", "thread", "process")


def build_data(root: str) -> str:
    """Lay out ``<root>/data/events/partition<i>/part.json`` and return it."""
    data_dir = os.path.join(root, "data")
    for p in range(PARTITIONS):
        pdir = os.path.join(data_dir, "events", f"partition{p}")
        os.makedirs(pdir)
        with open(os.path.join(pdir, "part.json"), "w", encoding="utf-8") as f:
            for i in range(PER_PARTITION):
                f.write(
                    json.dumps({"v": p * 100 + i, "g": i % 3}) + "\n"
                )
    return data_dir


def make_service(data_dir, backend, cache_dir=None, plan=None, **kwargs):
    source = CollectionCatalog(data_dir)
    if plan is not None:
        source = plan.wrap(source)
    kwargs.setdefault("max_concurrent_queries", 1)
    return QueryService(
        source,
        backend=backend,
        segment_cache_dir=cache_dir,
        result_cache_size=0,
        **kwargs,
    )


def canonical(items) -> str:
    return json.dumps(items, sort_keys=True)


def run_one(service, query_text):
    return service.submit(query_text).result()


def sequential_baselines(data_dir) -> dict:
    service = make_service(data_dir, "sequential")
    try:
        return {
            name: canonical(run_one(service, text).items)
            for name, text in QUERIES.items()
        }
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Scenarios.  Each yields cell dicts; a cell without ``ok: True`` is a
# failure.  ``check`` collects per-cell invariant violations so one bad
# invariant doesn't hide the rest of the sweep.
# ---------------------------------------------------------------------------


def _finish_cell(cell, items, baseline, problems):
    got = canonical(items)
    if got != baseline:
        problems.append(
            f"result diverged from baseline "
            f"({got[:100]!r} != {baseline[:100]!r})"
        )
    cell["ok"] = not problems
    if problems:
        cell["error"] = "; ".join(problems)
    return cell


def scenario_slot_death(data_dir, backend, baselines, budget):
    """One injected slot death immediately before every query."""
    service = make_service(data_dir, backend)
    cells = []
    try:
        for name, text in QUERIES.items():
            cell = {"scenario": "slot-death", "query": name, "backend": backend}
            problems = []
            service.inject_slot_failure(0)
            response = run_one(service, text)
            if response.retries < 1:
                problems.append("query did not record a retry")
            cell["retries"] = response.retries
            cells.append(
                _finish_cell(cell, response.items, baselines[name], problems)
            )
        stats = service.stats()
        summary = {
            "scenario": "slot-death",
            "query": "__slots__",
            "backend": backend,
            "slot_restarts": len(stats["slot_restarts"]),
            "query_retries": len(stats["query_retries"]),
            "slots": stats["slots"],
        }
        problems = []
        if stats["slots"]["abandoned"]:
            problems.append(
                f"{stats['slots']['abandoned']} slot(s) never recovered"
            )
        if len(stats["slot_restarts"]) < len(QUERIES):
            problems.append("missing slot-restart events")
        summary["ok"] = not problems
        if problems:
            summary["error"] = "; ".join(problems)
        cells.append(summary)
    finally:
        service.close()
    return cells


def scenario_slot_storm(data_dir, backend, baselines, budget):
    """Deaths queued on both slots of a two-slot service, twice over."""
    service = make_service(
        data_dir,
        backend,
        max_concurrent_queries=2,
        max_query_retries=2,
        max_slot_restarts=4,
    )
    cells = []
    try:
        rounds = 2 if budget == "full" else 1
        for round_index in range(rounds):
            for slot in (0, 1):
                service.inject_slot_failure(slot)
            for name, text in QUERIES.items():
                cell = {
                    "scenario": "slot-storm",
                    "query": f"{name}#r{round_index}",
                    "backend": backend,
                }
                response = run_one(service, text)
                cell["retries"] = response.retries
                cells.append(
                    _finish_cell(cell, response.items, baselines[name], [])
                )
        stats = service.stats()
        summary = {
            "scenario": "slot-storm",
            "query": "__slots__",
            "backend": backend,
            "slot_restarts": len(stats["slot_restarts"]),
            "slots": stats["slots"],
            "ok": not stats["slots"]["abandoned"],
        }
        if stats["slots"]["abandoned"]:
            summary["error"] = (
                f"{stats['slots']['abandoned']} slot(s) never recovered"
            )
        cells.append(summary)
    finally:
        service.close()
    return cells


def scenario_cache_corrupt(data_dir, backend, baselines, budget):
    """Prime the cache, bit-flip every segment, re-run, expect repair."""
    cells = []
    for name in CACHE_QUERIES:
        text = QUERIES[name]
        cache_dir = tempfile.mkdtemp(prefix="repro-servicechaos-cache-")
        try:
            primer = make_service(data_dir, backend, cache_dir=cache_dir)
            try:
                run_one(primer, text)
            finally:
                primer.close()
            segments = [
                entry
                for entry in os.listdir(cache_dir)
                if entry.endswith(".seg")
            ]
            cell = {
                "scenario": "cache-corrupt",
                "query": name,
                "backend": backend,
                "segments_corrupted": len(segments),
            }
            problems = []
            if not segments:
                problems.append("priming run stored no segments")
            for entry in segments:
                path = os.path.join(cache_dir, entry)
                with open(path, "rb") as handle:
                    raw = bytearray(handle.read())
                raw[-1] ^= 0xFF
                with open(path, "wb") as handle:
                    handle.write(bytes(raw))

            reader = make_service(data_dir, backend, cache_dir=cache_dir)
            try:
                response = run_one(reader, text)
            finally:
                reader.close()
            corrupt_events = [
                event
                for event in response.degradation.cache_events
                if event.kind == "corrupt"
            ]
            cell["corrupt_events"] = len(corrupt_events)
            if not corrupt_events:
                problems.append("no corrupt cache events surfaced")
            if response.is_partial:
                problems.append("response marked partial")
            litter = [
                entry
                for entry in os.listdir(cache_dir)
                if entry.endswith(".tmp")
            ]
            if litter:
                problems.append(f"temp-file litter left behind: {litter}")
            cells.append(
                _finish_cell(cell, response.items, baselines[name], problems)
            )
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    return cells


def scenario_disk_full(data_dir, backend, baselines, budget):
    """Every cache I/O fails with ENOSPC; results must be untouched."""
    cells = []
    cache_dir = tempfile.mkdtemp(prefix="repro-servicechaos-enospc-")
    plan = FaultPlan().fail_cache_io(permanent=True)
    service = make_service(data_dir, backend, cache_dir=cache_dir, plan=plan)
    try:
        for index, name in enumerate(CACHE_QUERIES):
            text = QUERIES[name]
            cell = {
                "scenario": "disk-full",
                "query": name,
                "backend": backend,
            }
            problems = []
            response = run_one(service, text)
            kinds = {
                event.kind for event in response.degradation.cache_events
            }
            cell["cache_event_kinds"] = sorted(kinds)
            # The first query must surface the degradation; later queries
            # on the same service may be silent — the cache is already
            # off, which is exactly the intended steady state.
            if index == 0 and not kinds:
                problems.append("no cache events surfaced")
            if not kinds <= {"io-error", "disabled"}:
                problems.append(f"unexpected cache event kinds: {kinds}")
            if response.is_partial:
                problems.append("response marked partial")
            cells.append(
                _finish_cell(cell, response.items, baselines[name], problems)
            )
        published = [
            entry
            for entry in os.listdir(cache_dir)
            if entry.endswith(".seg")
        ]
        if published:
            cells.append({
                "scenario": "disk-full",
                "query": "__cache_dir__",
                "backend": backend,
                "ok": False,
                "error": f"full disk still published segments: {published}",
            })
    finally:
        service.close()
        shutil.rmtree(cache_dir, ignore_errors=True)
    return cells


SCENARIOS = {
    "slot-death": scenario_slot_death,
    "slot-storm": scenario_slot_storm,
    "cache-corrupt": scenario_cache_corrupt,
    "disk-full": scenario_disk_full,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_servicechaos.json")
    parser.add_argument("--budget", choices=("small", "full"), default="small")
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help="run only this scenario (default: all)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="run only this backend (default: all)",
    )
    args = parser.parse_args(argv)

    scenarios = (
        {args.scenario: SCENARIOS[args.scenario]}
        if args.scenario
        else SCENARIOS
    )
    backends = (args.backend,) if args.backend else BACKEND_NAMES

    root = tempfile.mkdtemp(prefix="repro-servicechaos-")
    cells = []
    failures = []
    try:
        data_dir = build_data(root)
        baselines = sequential_baselines(data_dir)
        for scenario_name, scenario in scenarios.items():
            for backend in backends:
                try:
                    batch = scenario(data_dir, backend, baselines, args.budget)
                except Exception as error:  # noqa: BLE001 - report, don't die
                    batch = [{
                        "scenario": scenario_name,
                        "query": "__scenario__",
                        "backend": backend,
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }]
                for cell in batch:
                    cells.append(cell)
                    label = (
                        f"{cell['scenario']}/{cell['query']}/{cell['backend']}"
                    )
                    if cell["ok"]:
                        print(f"OK   {label}")
                    else:
                        failures.append(cell)
                        print(f"FAIL {label}: {cell['error']}")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    payload = {
        "scenarios": sorted(scenarios),
        "backends": list(backends),
        "budget": args.budget,
        "queries": sorted(QUERIES),
        "cells": cells,
        "cell_count": len(cells),
        "failure_count": len(failures),
        "ok": not failures,
        "host": {"python": platform.python_version()},
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"service chaos sweep: {len(cells)} cells, "
        f"{len(failures)} failure(s); wrote {args.out}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
