#!/usr/bin/env python
"""Benchmark bounded-memory (spill-to-disk) execution on the paper's queries.

Generates a synthetic partitioned sensor collection, runs every paper
query unlimited to measure its peak memory, then re-runs it under a
memory budget that is a fraction of that peak, forcing the blocking
operators (GROUP-BY, JOIN, ORDER-BY) through their spill paths.  Every
bounded run's items are checked identical to the unlimited run's before
anything is reported — spilling must never change an answer.  Writes
``BENCH_spill.json``: per query and backend, the unlimited peak, the
budget, the bounded peak/overhead, and the spill counters (events, run
files, bytes, recursion depth).

Usage::

    PYTHONPATH=src python tools/bench_spill.py \
        [--out BENCH_spill.json] [--partitions 4] [--mib-per-partition 2] \
        [--budget-fraction 0.125] [--backends sequential,process]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro import JsonProcessor, SensorDataConfig, write_sensor_collection
from repro.bench.queries import ALL_QUERIES

#: floor below which a fractional budget would sit under the irreducible
#: per-operator state (one group entry, one tuple) on tiny datasets
MIN_BUDGET_BYTES = 4096


def bench_query(
    base_dir: str,
    spill_dir: str,
    query: str,
    backends: list[str],
    budget_fraction: float,
) -> dict:
    """Unlimited vs bounded runs of one query across *backends*."""
    with JsonProcessor.from_directory(base_dir) as processor:
        unlimited = processor.execute(query)
    budget = max(
        MIN_BUDGET_BYTES, int(unlimited.peak_memory_bytes * budget_fraction)
    )
    entry: dict = {
        "unlimited_peak_bytes": unlimited.peak_memory_bytes,
        "budget_bytes": budget,
        "strategy": unlimited.strategy,
        "backends": {},
    }
    for backend in backends:
        with JsonProcessor.from_directory(
            base_dir,
            backend=backend,
            memory_budget_bytes=budget,
            spill_dir=spill_dir,
        ) as processor:
            bounded = processor.execute(query)
        if bounded.items != unlimited.items:
            raise SystemExit(
                f"bounded run ({backend}) items differ from unlimited"
            )
        leftovers = os.listdir(spill_dir)
        if leftovers:
            raise SystemExit(
                f"bounded run ({backend}) leaked spill files: {leftovers}"
            )
        entry["backends"][backend] = {
            "identical_items": True,
            "bounded_peak_bytes": bounded.peak_memory_bytes,
            "wall_seconds": bounded.wall_seconds,
            "spill_events": bounded.stats.spill_events,
            "spill_run_files": bounded.stats.spill_run_files,
            "spill_bytes": bounded.stats.spill_bytes,
            "spill_recursion_depth": bounded.stats.spill_recursion_depth,
        }
    return entry


def run(args: argparse.Namespace) -> dict:
    report: dict = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "partitions": args.partitions,
            "bytes_per_partition": args.mib_per_partition << 20,
            "budget_fraction": args.budget_fraction,
            "backends": args.backends,
        },
        "queries": {},
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as base_dir, \
            tempfile.TemporaryDirectory(prefix="repro-spill-") as spill_dir:
        write_sensor_collection(
            base_dir,
            "sensors",
            partitions=args.partitions,
            bytes_per_partition=args.mib_per_partition << 20,
            config=SensorDataConfig(seed=args.seed),
        )
        for name, make_query in ALL_QUERIES.items():
            query = make_query("/sensors")
            entry = bench_query(
                base_dir, spill_dir, query, args.backends,
                args.budget_fraction,
            )
            report["queries"][name] = entry
            counters = entry["backends"][args.backends[0]]
            print(
                f"{name}: unlimited peak {entry['unlimited_peak_bytes']}B, "
                f"budget {entry['budget_bytes']}B -> "
                f"bounded peak {counters['bounded_peak_bytes']}B, "
                f"{counters['spill_events']} spill events, "
                f"{counters['spill_run_files']} runs, "
                f"{counters['spill_bytes']}B spilled"
            )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--out", default="BENCH_spill.json")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mib-per-partition", type=int, default=2)
    parser.add_argument("--budget-fraction", type=float, default=0.125)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--backends",
        default="sequential,process",
        help="comma-separated backends to run bounded",
    )
    args = parser.parse_args(argv)
    args.backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    report = run(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
