"""Micro-benchmarks of the core components (proper pytest-benchmark
timing over repeated rounds): the streaming parser, the two projection
strategies, the compiler, and end-to-end query execution.
"""

import pytest

from repro.algebra.rules import RewriteConfig
from repro.bench import queries as Q
from repro.bench import workloads as W
from repro.compiler.pipeline import compile_query
from repro.jsonlib.parser import parse_many
from repro.jsonlib.path import parse_path
from repro.jsonlib.projection import project_text
from repro.jsonlib.textscan import scan_text
from repro.processor import JsonProcessor


@pytest.fixture(scope="module")
def sensor_text():
    workload = W.sensor_workload(partitions=1, bytes_per_partition=100_000)
    path = workload.catalog.files("/sensors")[0]
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def sensor_catalog():
    return W.sensor_workload(partitions=1, bytes_per_partition=100_000).catalog


DATE_PATH = parse_path('("root")()("results")()("date")')


def test_bench_streaming_parse(benchmark, sensor_text):
    benchmark(lambda: parse_many(sensor_text))


def test_bench_event_projection(benchmark, sensor_text):
    benchmark(lambda: list(project_text(sensor_text, DATE_PATH)))


def test_bench_text_projection(benchmark, sensor_text):
    benchmark(lambda: list(scan_text(sensor_text, DATE_PATH)))


def test_bench_compile_q2(benchmark):
    benchmark(lambda: compile_query(Q.q2()))


def test_bench_q0b_optimized(benchmark, sensor_catalog):
    processor = JsonProcessor(sensor_catalog)
    benchmark(lambda: processor.evaluate(Q.q0b()))


def test_bench_q1_optimized(benchmark, sensor_catalog):
    processor = JsonProcessor(sensor_catalog)
    benchmark(lambda: processor.evaluate(Q.q1()))


def test_bench_q1_naive(benchmark, sensor_catalog):
    processor = JsonProcessor(sensor_catalog, rewrite=RewriteConfig.none())
    benchmark(lambda: processor.evaluate(Q.q1()))
