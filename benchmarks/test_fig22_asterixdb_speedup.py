"""Figure 22: VXQuery vs AsterixDB (external), cluster speed-up.

Paper shape: both speed up with nodes; VXQuery is consistently faster —
the gap being exactly the missing pipelining rules.  In this substrate
the scan strategies converge on tiny one-measurement documents (our
Python tokenizer dominates both; EXPERIMENTS.md discusses magnitudes),
so the assertions are: both scale, VXQuery leads on the join Q2, and
Q0b stays comparable.
"""

from repro.bench.experiments import fig22


def _series(result, query, system):
    for row in result.rows:
        if row[0] == query and row[1] == system:
            return row[2:]
    raise KeyError((query, system))


def test_fig22_vs_asterixdb_speedup(run_once):
    result = run_once(fig22)
    for query in ("Q0b", "Q2"):
        vx = _series(result, query, "VXQuery")
        adm = _series(result, query, "AsterixDB")
        # Both systems speed up with more nodes (they share the runtime).
        assert vx[-1] < vx[0] / 3
        assert adm[-1] < adm[0] / 3
        # Same order of magnitude throughout (the paper's severalfold
        # VXQuery lead compresses to parity in this substrate).
        for a, b in zip(vx, adm):
            assert a <= b * 4 and b <= a * 4, f"{query} should be comparable"
