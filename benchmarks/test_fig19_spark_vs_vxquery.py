"""Figure 19 (+ Section 5.3): SparkSQL vs VXQuery on Q1 across sizes.

Paper shape: Spark's query-only time looks good on small inputs, but
counting its mandatory load phase VXQuery wins, and Spark cannot load
inputs beyond its memory at all.
"""

from repro.bench.experiments import fig19, spark_memory_failure


def test_fig19_crossover(run_once):
    result = run_once(fig19)
    vx = result.column("VXQuery total (s)")
    spark_total = result.column("SparkSQL query+load (s)")
    # With loading counted, VXQuery wins at every size (paper: "If one
    # counts also for the file loading time ... VXQuery is faster").
    assert vx[-1] <= spark_total[-1]
    # And the gap grows with the data size.
    assert (spark_total[-1] - vx[-1]) >= (spark_total[0] - vx[0]) * 0.5


def test_spark_cannot_load_beyond_memory():
    assert spark_memory_failure(), (
        "loading past the memory budget must fail like Spark did"
    )
