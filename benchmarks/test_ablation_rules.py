"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.experiments import (
    ablation_frame_size,
    ablation_group_cardinality,
    ablation_projection_depth,
    ablation_two_step_aggregation,
)


def test_ablation_projection_depth(run_once):
    """Section 5.3: the smaller the DATASCAN argument, the better —
    Q0b's scan forwards a fraction of Q0's bytes, at no time cost."""
    result = run_once(ablation_projection_depth)
    q0_bytes = result.cell("Q0", "scanned item bytes")
    q0b_bytes = result.cell("Q0b", "scanned item bytes")
    assert q0b_bytes * 5 <= q0_bytes, "Q0b should move far smaller tuples"
    q0_seconds = result.cell("Q0", "time (s)")
    q0b_seconds = result.cell("Q0b", "time (s)")
    assert q0b_seconds <= q0_seconds * 1.35  # never meaningfully slower


def test_ablation_two_step_aggregation(run_once):
    """Without two-step aggregation, raw tuples ship to the coordinator:
    the exchange volume explodes."""
    result = run_once(ablation_two_step_aggregation)
    # Q1 ships only per-group partials under two-step aggregation.
    q1_two_step = result.cell("Q1", "two-step exchange (B)")
    q1_raw = result.cell("Q1", "raw exchange (B)")
    assert q1_raw > q1_two_step * 5, (
        f"Q1: raw exchange should dwarf partials ({q1_two_step}B vs {q1_raw}B)"
    )
    # Q2's exchange is dominated by the join hash-partitioning, which
    # both configurations pay; the joined tuples shipped to the
    # coordinator are the remaining difference.
    q2_two_step = result.cell("Q2", "two-step exchange (B)")
    q2_raw = result.cell("Q2", "raw exchange (B)")
    assert q2_raw > q2_two_step * 1.3


def test_ablation_group_cardinality(run_once):
    """Section 4.3: the larger the groups, the better the group-by rule's
    improvement."""
    result = run_once(ablation_group_cardinality)
    small = result.cell("small groups", "speedup")
    large = result.cell("large groups", "speedup")
    assert large >= small * 0.8  # trend, with a generous noise margin


def test_ablation_frame_size(run_once):
    """Bigger frames hold more tuples; total tuples are conserved."""
    result = run_once(ablation_frame_size)
    frames = result.column("frames")
    assert frames[0] > frames[1] > frames[2], "bigger frames -> fewer frames"
