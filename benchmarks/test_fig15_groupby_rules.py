"""Figure 15: execution time before/after the Group-by Rules.

Paper shape: Q0/Q0b/Q2 unaffected (the rules don't apply); Q1 and Q1b
improve because the count is pushed into the GROUP-BY and no per-group
sequence is materialized.
"""

from repro.bench.experiments import fig15


def test_fig15_groupby_rules(run_once):
    result = run_once(fig15)
    # The grouped queries stop materializing group sequences entirely.
    for query in ("Q1", "Q1b"):
        before_mem = result.cell(query, "path+pipelining mem (B)")
        after_mem = result.cell(query, "+group-by mem (B)")
        assert before_mem > 0 and after_mem < before_mem / 10, (
            f"{query}: group sequences should disappear, got "
            f"{before_mem}B -> {after_mem}B"
        )
    # The unaffected queries stay put (generous noise margin).
    for query in ("Q0", "Q0b", "Q2"):
        before = result.cell(query, "path+pipelining (s)")
        after = result.cell(query, "+group-by (s)")
        assert after <= before * 2.0 and before <= after * 2.0, (
            f"{query} should be unaffected by group-by rules"
        )
