"""Figure 18: query time and space vs measurements/array (30 ... 1).

Paper shapes:

- (a) VXQuery's time is independent of the document structure; MongoDB
  is strong on selections (its compressed binary store pays off once the
  load is sunk); AsterixDB(load) queries faster than
  AsterixDB(external) because the data is already in its data model.
- (b) MongoDB's footprint grows as documents shrink (less compression);
  VXQuery (raw files) and AsterixDB(load) are flat.

Divergence note (EXPERIMENTS.md): in the paper MongoDB degrades steeply
at 1 measurement/document; our per-document overhead is smaller than
MongoDB's, so the time trend is flatter — the *space* trend (18b), which
drives it, reproduces fully.
"""

from repro.bench.experiments import fig18a, fig18b


def test_fig18a_query_times(run_once):
    result = run_once(fig18a)
    vx = result.column("VXQuery (s)")
    mongo = result.column("MongoDB (s)")
    adm_ext = result.column("AsterixDB (s)")
    adm_load = result.column("AsterixDB(load) (s)")
    # VXQuery independent of document structure.
    assert max(vx) <= min(vx) * 2.5, "VXQuery should be ~flat"
    # ADM-format queries beat re-parsing external JSON.
    for ext, loaded in zip(adm_ext, adm_load):
        assert loaded <= ext * 1.25
    # MongoDB stays within its own band across document sizes (its
    # degradation trend at small documents is too shallow to assert at
    # this scale — the deterministic space table 18b carries the
    # compression story).
    assert max(mongo) <= min(mongo) * 3


def test_fig18b_space(run_once):
    result = run_once(fig18b)
    raw = result.column("VXQuery/AsterixDB raw (B)")
    mongo = result.column("MongoDB stored (B)")
    adm = result.column("AsterixDB(load) stored (B)")
    # MongoDB compresses big documents well, small documents badly.
    assert mongo[0] < raw[0] * 0.5, "30 meas/doc should compress well"
    assert mongo[-1] >= mongo[0] * 2, "1 meas/doc should inflate the store"
    # The uncompressed representations are structure-independent.
    assert max(raw) <= min(raw) * 1.3
    assert max(adm) <= min(adm) * 1.3
