"""Table 2: SparkSQL loading time grows with the data size."""

from repro.bench.experiments import table2


def test_table2_spark_loading(run_once):
    result = run_once(table2)
    loads = result.column("loading (s)")
    assert all(value > 0 for value in loads)
    assert loads[-1] > loads[0], "loading a 2.5x input should take longer"
