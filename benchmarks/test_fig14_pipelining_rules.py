"""Figure 14: execution time before/after the Pipelining Rules.

Paper shape: the drastic one — about two orders of magnitude on the
authors' 8 GB-heap testbed, driven by no longer buffering whole
documents/collections.  At our MB scale the Python runtime absorbs small
materializations, so the reproduction asserts the *mechanism*:

- the join query Q2 (whose naive form copies unpruned collection-sized
  tuples into the join build side) speeds up by a large factor, and
- every query's materialized-memory footprint collapses (whole
  collection -> at most streaming state).
"""

from repro.bench.experiments import fig14


def test_fig14_pipelining_rules(run_once):
    result = run_once(fig14)
    q2_speedup = result.cell("Q2", "speedup")
    assert q2_speedup >= 3, f"Q2 pipelining speedup only {q2_speedup}"
    for row in result.rows:
        query, before, after = row[0], row[1], row[2]
        assert after <= before * 2.0, (
            f"{query}: pipelining regressed {before:.3f}s -> {after:.3f}s"
        )
        before_mem, after_mem = row[4], row[5]
        assert before_mem > after_mem * 2, (
            f"{query}: expected a big memory drop, got "
            f"{before_mem}B -> {after_mem}B"
        )
