"""Figure 13: execution time before/after the Path Expression Rules.

Paper shape: a clear-but-modest improvement for every query (the rules
remove the two-step keys-or-members evaluation and dead coercions; the
big wins come later from pipelining).  Assertion: no query regresses
beyond noise.
"""

from repro.bench.experiments import fig13


def test_fig13_path_rules(run_once):
    result = run_once(fig13)
    for row in result.rows:
        query, before, after = row[0], row[1], row[2]
        assert after <= before * 2.0, (
            f"{query}: path rules regressed {before:.3f}s -> {after:.3f}s"
        )
