"""Figure 16: Q1 vs collection size, before/after all rewrite rules.

Paper shape: both series grow roughly linearly with the data size, the
rewritten plan stays consistently faster, and (the part the log scale
emphasizes) the naive plan's footprint grows with the data while the
rewritten plan's does not.
"""

from repro.bench.experiments import fig16


def test_fig16_data_sizes(run_once):
    result = run_once(fig16)
    befores = result.column("before (s)")
    afters = result.column("after (s)")
    before_mems = result.column("before mem (B)")
    after_mems = result.column("after mem (B)")
    # Consistently faster after the rules.
    for before, after in zip(befores, afters):
        assert after <= before * 1.5
    # The naive plan's runtime scales with the data (4x data >= ~2x time).
    assert befores[-1] >= befores[0] * 2
    # Naive memory grows with data; rewritten memory does not.
    assert before_mems[-1] >= before_mems[0] * 2
    assert max(after_mems) <= max(before_mems) / 10
