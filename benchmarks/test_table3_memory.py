"""Table 3: memory — Spark holds the whole input, VXQuery streams.

Paper shape: Spark's footprint is a large multiple of the input and
grows with it; VXQuery's stays flat (only query-relevant state).
"""

from repro.bench.experiments import table3


def test_table3_memory(run_once):
    result = run_once(table3)
    spark = result.column("Spark memory (B)")
    vx = result.column("VXQuery memory (B)")
    for spark_mem, vx_mem in zip(spark, vx):
        assert spark_mem > max(vx_mem, 1) * 5, (
            f"Spark should hold much more: {spark_mem}B vs {vx_mem}B"
        )
    # Spark memory grows with input; VXQuery's stays flat.
    assert spark[-1] >= spark[0] * 2
    assert max(vx) <= max(spark) / 10
