"""Figure 23: VXQuery vs AsterixDB (external), cluster scale-up.

Paper shape: both roughly flat as data and nodes grow together, with
VXQuery ahead.  See fig22's module docstring for why, in this substrate,
the assertion is parity-shaped on Q0b.
"""

from repro.bench.experiments import fig23


def _series(result, query, system):
    for row in result.rows:
        if row[0] == query and row[1] == system:
            return row[2:]
    raise KeyError((query, system))


def test_fig23_vs_asterixdb_scaleup(run_once):
    result = run_once(fig23)
    for query in ("Q0b", "Q2"):
        vx = _series(result, query, "VXQuery")
        adm = _series(result, query, "AsterixDB")
        assert max(vx) <= min(vx) * 3.0 + 0.01, (
            f"{query}: VXQuery should scale up"
        )
        assert max(adm) <= min(adm) * 3.0 + 0.01, (
            f"{query}: AsterixDB should scale up"
        )
        for a, b in zip(vx, adm):
            assert a <= b * 4 and b <= a * 4, f"{query} should be comparable"
