"""Figure 20: cluster speed-up, 1-9 nodes, fixed 803 GB (scaled) total.

Paper shape: "cluster speed-up is proportional to the number of nodes
being used, without depending on the type of the query"; Q2 is the
slowest (self-join over twice the data).
"""

from repro.bench.experiments import fig20


def test_fig20_cluster_speedup(run_once):
    result = run_once(fig20)
    for row in result.rows:
        query = row[0]
        times = row[1:]
        one_node, nine_nodes = times[0], times[-1]
        # Grouped queries keep a small serial coordinator-combine tail,
        # which flattens their curve at MB scale; hence the lower bar.
        factor = 2.5 if query in ("Q1", "Q1b") else 3.5
        assert nine_nodes < one_node / factor, (
            f"{query}: 9 nodes should be several times faster "
            f"({one_node:.3f}s -> {nine_nodes:.3f}s)"
        )
        # Monotone-ish decrease; small absolute slack because the
        # per-partition work at 9 nodes is only milliseconds.
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.4 + 0.01
    # Q2 is the most expensive query at every cluster size.
    q2 = result.rows[-1]
    assert q2[0] == "Q2"
    for other in result.rows[:-1]:
        assert q2[1] >= other[1] * 0.9
