"""Table 4: MongoDB's loading time at the two dataset scales.

Paper shape: loading is a huge overhead (9000s for 88 GB, 81000s for
803 GB per node) and grows with the dataset; VXQuery pays none of it.
"""

from repro.bench.experiments import table4


def test_table4_mongodb_loading(run_once):
    result = run_once(table4)
    loads = result.column("loading (s)")
    assert all(value > 0 for value in loads)
    # ~9x the data takes substantially longer to load.
    assert loads[1] >= loads[0] * 4
