"""Figure 24: VXQuery vs MongoDB, cluster speed-up (Q0b and Q2).

Paper shape: MongoDB's compressed store makes it faster on the
selection Q0b (query time only — its load is Table 4); VXQuery wins the
self-join Q2 at the paper's scale.  In this substrate MongoDB's binary
scan keeps it competitive on Q2 too at MB scale (the central-join
bottleneck that costs it in the paper needs GB-scale joins to surface);
EXPERIMENTS.md records the divergence.  Asserted here: both systems
speed up, and the selection times stay comparable.
"""

from repro.bench.experiments import fig24


def _series(result, query, system):
    for row in result.rows:
        if row[0] == query and row[1] == system:
            return row[2:]
    raise KeyError((query, system))


def test_fig24_vs_mongodb_speedup(run_once):
    result = run_once(fig24)
    for query in ("Q0b", "Q2"):
        vx = _series(result, query, "VXQuery")
        mongo = _series(result, query, "MongoDB")
        # Both systems speed up with nodes.
        assert vx[-1] < vx[0] / 2.5, f"{query}: VXQuery should speed up"
        assert mongo[-1] < mongo[0] / 2.5, f"{query}: MongoDB should speed up"
        # Same order of magnitude throughout.
        for a, b in zip(vx, mongo):
            assert a <= b * 8 and b <= a * 8, f"{query} should be comparable"
