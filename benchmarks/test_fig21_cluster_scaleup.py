"""Figure 21: cluster scale-up, 1-9 nodes, 88 GB (scaled) per node.

Paper shape: "the query execution time remains roughly the same" as
nodes and data grow together — good scale-up.
"""

from repro.bench.experiments import fig21


def test_fig21_cluster_scaleup(run_once):
    result = run_once(fig21)
    for row in result.rows:
        query = row[0]
        times = row[1:]
        assert max(times) <= min(times) * 3.0 + 0.01, (
            f"{query}: scale-up should keep times roughly flat, got "
            f"{min(times):.3f}s..{max(times):.3f}s"
        )
