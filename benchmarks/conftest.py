"""Shared helpers for the benchmark suite.

Every experiment bench runs its driver exactly once under
pytest-benchmark (``pedantic`` mode — the drivers measure their interior
themselves), saves the paper-style table under ``results/``, and asserts
the paper's qualitative shape with generous noise margins.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import ExperimentResult

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def save_result(result: ExperimentResult) -> None:
    """Persist an experiment table under results/ and echo it."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{result.experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_table() + "\n")
    print()
    print(result.to_table())


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver once under the benchmark, save its table."""

    def runner(driver) -> ExperimentResult:
        result = benchmark.pedantic(driver, rounds=1, iterations=1)
        save_result(result)
        return result

    return runner
