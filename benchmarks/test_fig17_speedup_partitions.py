"""Figure 17: single-node speed-up over 1/2/4/8 partitions.

Paper shape: near-linear speed-up to 4 partitions (one per core), then a
plateau — or slight regression — at 8 hyperthreaded partitions, because
the workload is CPU-bound and two hyperthreads share one core.
"""

from repro.bench.experiments import fig17


def test_fig17_partition_speedup(run_once):
    result = run_once(fig17)
    for row in result.rows:
        query = row[0]
        t1, t2, t4, t8 = row[1], row[2], row[3], row[4]
        assert t2 < t1 * 0.8, f"{query}: no speed-up at 2 partitions"
        assert t4 < t1 * 0.5, f"{query}: no speed-up at 4 partitions"
        # Hyperthreads add no capacity: 8 partitions ~= 4 partitions.
        assert abs(t8 - t4) <= t4 * 0.6, (
            f"{query}: 8 HT partitions should plateau near 4 "
            f"({t4:.3f}s vs {t8:.3f}s)"
        )
