"""Table 1: loading time, MongoDB vs AsterixDB(load), per document size.

Paper shape: both pay a substantial load phase (VXQuery pays none);
MongoDB's load grows as documents shrink (more per-document compression
calls for less benefit), AsterixDB's stays roughly constant.
"""

from repro.bench.experiments import table1


def test_table1_loading_times(run_once):
    result = run_once(table1)
    mongo = result.column("MongoDB load (s)")
    adm = result.column("AsterixDB(load) load (s)")
    # The paper's core point vs VXQuery: both systems pay a real load
    # phase at every document size (VXQuery pays none).
    assert all(value > 0 for value in mongo + adm)
    # Both engines' conversion costs are bounded across structures.
    assert max(adm) <= min(adm) * 3
    assert max(mongo) <= min(mongo) * 3
