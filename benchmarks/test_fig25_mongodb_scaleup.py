"""Figure 25: VXQuery vs MongoDB, cluster scale-up (Q0b and Q2).

Paper shape: VXQuery's times stay roughly flat as nodes and data grow
together; so do MongoDB's for the selection.  (On Q2, the paper's
MongoDB suffers from its central join; at MB scale that join is too
small to hurt — see EXPERIMENTS.md.)
"""

from repro.bench.experiments import fig25


def _series(result, query, system):
    for row in result.rows:
        if row[0] == query and row[1] == system:
            return row[2:]
    raise KeyError((query, system))


def test_fig25_vs_mongodb_scaleup(run_once):
    result = run_once(fig25)
    for query in ("Q0b", "Q2"):
        vx = _series(result, query, "VXQuery")
        assert max(vx) <= min(vx) * 3.0 + 0.01, (
            f"{query}: VXQuery should scale up"
        )
    vx_q0b = _series(result, "Q0b", "VXQuery")
    mongo_q0b = _series(result, "Q0b", "MongoDB")
    for a, b in zip(vx_q0b, mongo_q0b):
        assert a <= b * 8 and b <= a * 8, "Q0b should stay comparable"
