"""End-to-end integration tests: every engine agrees with ground truth.

The reference implementations in :mod:`repro.bench.reference` compute
the paper's queries directly over materialized items; here every engine
— VXQuery under all four rule configurations, the document store, the
SQL engine, and both ADM modes — must produce the same answers on a
generated dataset.
"""

import pytest

from repro import CollectionCatalog, JsonProcessor, RewriteConfig
from repro import SensorDataConfig, write_sensor_collection
from repro.baselines import AdmEngine, DocumentStore, InMemorySQLEngine
from repro.bench import queries, workloads
from repro.bench.reference import (
    reference_q0,
    reference_q0b,
    reference_q1,
    reference_q2,
)

CONFIGS = {
    "none": RewriteConfig.none(),
    "path": RewriteConfig.path_only(),
    "path+pipelining": RewriteConfig.path_and_pipelining(),
    "all": RewriteConfig.all(),
    "all-no-two-step": RewriteConfig(True, True, True, False),
}


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    base_dir = str(tmp_path_factory.mktemp("sensors"))
    config = SensorDataConfig(
        seed=99, start_year=2003, year_span=2, target_file_bytes=8 * 1024
    )
    write_sensor_collection(
        base_dir, "sensors", partitions=3, bytes_per_partition=25_000,
        config=config,
    )
    catalog = CollectionCatalog(base_dir)
    documents = catalog.read_collection("/sensors")
    return catalog, documents


class TestVXQueryAgainstReference:
    @pytest.mark.parametrize("config_name", list(CONFIGS))
    def test_q0(self, dataset, config_name):
        catalog, documents = dataset
        processor = JsonProcessor(catalog, rewrite=CONFIGS[config_name])
        assert processor.evaluate(queries.q0()) == reference_q0(documents)

    @pytest.mark.parametrize("config_name", list(CONFIGS))
    def test_q0b(self, dataset, config_name):
        catalog, documents = dataset
        processor = JsonProcessor(catalog, rewrite=CONFIGS[config_name])
        assert processor.evaluate(queries.q0b()) == reference_q0b(documents)

    @pytest.mark.parametrize("config_name", list(CONFIGS))
    def test_q1(self, dataset, config_name):
        catalog, documents = dataset
        processor = JsonProcessor(catalog, rewrite=CONFIGS[config_name])
        expected = sorted(reference_q1(documents).values())
        assert sorted(processor.evaluate(queries.q1())) == expected

    @pytest.mark.parametrize("config_name", list(CONFIGS))
    def test_q1b(self, dataset, config_name):
        catalog, documents = dataset
        processor = JsonProcessor(catalog, rewrite=CONFIGS[config_name])
        expected = sorted(reference_q1(documents).values())
        assert sorted(processor.evaluate(queries.q1b())) == expected

    @pytest.mark.parametrize("config_name", list(CONFIGS))
    def test_q2(self, dataset, config_name):
        catalog, documents = dataset
        processor = JsonProcessor(catalog, rewrite=CONFIGS[config_name])
        expected = reference_q2(documents)
        (value,) = processor.evaluate(queries.q2())
        assert value == pytest.approx(expected)


class TestBaselinesAgainstReference:
    def test_document_store(self, dataset):
        catalog, documents = dataset
        store = DocumentStore()
        store.load_files("sensors", catalog.files("/sensors"))
        assert workloads.mongo_q0b(store, "sensors") == reference_q0b(documents)
        assert workloads.mongo_q1(store, "sensors") == reference_q1(documents)
        assert workloads.mongo_q2(store, "sensors") == pytest.approx(
            reference_q2(documents)
        )

    def test_document_store_rechunked(self, dataset):
        catalog, documents = dataset
        store = DocumentStore()
        store.load_files(
            "sensors", catalog.files("/sensors"), measurements_per_document=1
        )
        assert workloads.mongo_q1(store, "sensors") == reference_q1(documents)

    def test_sql_engine(self, dataset):
        catalog, documents = dataset
        engine = InMemorySQLEngine()
        engine.load_files("sensors", catalog.files("/sensors"))
        assert sorted(workloads.spark_q0b(engine, "sensors", True)) == sorted(
            reference_q0b(documents)
        )
        assert workloads.spark_q1(engine, "sensors", True) == reference_q1(
            documents
        )
        assert workloads.spark_q2(engine, "sensors", True) == pytest.approx(
            reference_q2(documents)
        )

    def test_adm_external(self, dataset):
        catalog, documents = dataset
        engine = AdmEngine(catalog, mode="external")
        expected = sorted(reference_q1(documents).values())
        assert sorted(engine.execute(queries.q1()).items) == expected

    def test_adm_load_mode(self, dataset, tmp_path):
        catalog, documents = dataset
        engine = AdmEngine(catalog, mode="load", storage_dir=str(tmp_path))
        report = engine.load("/sensors")
        assert report.documents > 0
        expected = sorted(reference_q1(documents).values())
        assert sorted(engine.execute(queries.q1()).items) == expected
        (q2_value,) = engine.execute(queries.q2()).items
        assert q2_value == pytest.approx(reference_q2(documents))


class TestUnwrappedStructure:
    def test_queries_on_unwrapped_files(self, tmp_path):
        config = SensorDataConfig(
            seed=5, start_year=2003, year_span=1, target_file_bytes=4 * 1024
        )
        write_sensor_collection(
            str(tmp_path), "sensors", partitions=2,
            bytes_per_partition=10_000, config=config, wrapped=False,
        )
        catalog = CollectionCatalog(str(tmp_path))
        documents = catalog.read_collection("/sensors")
        processor = JsonProcessor(catalog)
        assert processor.evaluate(
            queries.q0b(wrapped=False)
        ) == reference_q0b(documents)
        expected = sorted(reference_q1(documents).values())
        assert sorted(
            processor.evaluate(queries.q1(wrapped=False))
        ) == expected


class TestExplainOutput:
    def test_explain_shows_both_plans(self, dataset):
        catalog, _ = dataset
        processor = JsonProcessor(catalog)
        text = processor.explain(queries.q1(), show_trace=True)
        assert "naive plan" in text
        assert "rewritten plan" in text
        assert "DATASCAN" in text
        assert "rewrite trace" in text
