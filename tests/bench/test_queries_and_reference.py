"""Unit tests for the paper queries and the reference implementations."""

import pytest

from repro.bench import queries
from repro.bench.reference import (
    iter_measurements,
    reference_q0,
    reference_q0b,
    reference_q1,
    reference_q2,
)
from repro.jsoniq.parser import parse_query

WRAPPED_DOCS = [
    {
        "root": [
            {
                "metadata": {"count": 3},
                "results": [
                    {"date": "20031225T00:00", "dataType": "TMIN", "station": "S1", "value": 2},
                    {"date": "20031225T00:00", "dataType": "TMAX", "station": "S1", "value": 12},
                    {"date": "20020101T00:00", "dataType": "TMIN", "station": "S1", "value": 5},
                ],
            }
        ]
    }
]
UNWRAPPED_DOCS = WRAPPED_DOCS[0]["root"]


class TestQueryTexts:
    @pytest.mark.parametrize("name", list(queries.ALL_QUERIES))
    @pytest.mark.parametrize("wrapped", [True, False])
    def test_all_queries_parse(self, name, wrapped):
        parse_query(queries.ALL_QUERIES[name](wrapped=wrapped))

    def test_collection_name_substitution(self):
        text = queries.q0(collection="/other")
        assert 'collection("/other")' in text

    def test_wrapped_path_difference(self):
        assert '("root")()' in queries.q1(wrapped=True)
        assert '("root")()' not in queries.q1(wrapped=False)


class TestReference:
    def test_iter_measurements_wrapped(self):
        assert len(list(iter_measurements(WRAPPED_DOCS))) == 3

    def test_iter_measurements_unwrapped(self):
        assert len(list(iter_measurements(UNWRAPPED_DOCS))) == 3

    def test_q0_selects_dec25_from_2003(self):
        matched = reference_q0(WRAPPED_DOCS)
        assert len(matched) == 2
        assert all(m["date"].startswith("20031225") for m in matched)

    def test_q0b_projects_dates(self):
        assert reference_q0b(WRAPPED_DOCS) == [
            "20031225T00:00",
            "20031225T00:00",
        ]

    def test_q1_counts_tmin_per_date(self):
        assert reference_q1(WRAPPED_DOCS) == {
            "20031225T00:00": 1,
            "20020101T00:00": 1,
        }

    def test_q2_average_difference(self):
        assert reference_q2(WRAPPED_DOCS) == pytest.approx((12 - 2) / 10)

    def test_q2_empty_when_no_pairs(self):
        docs = [{"root": [{"metadata": {}, "results": [
            {"date": "d", "dataType": "TMIN", "station": "S", "value": 1}
        ]}]}]
        assert reference_q2(docs) is None

    def test_ignores_malformed_members(self):
        docs = [{"root": [42, {"no_results": True}]}, "stray"]
        assert list(iter_measurements(docs)) == []
