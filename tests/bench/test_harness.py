"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    format_bytes,
    format_seconds,
    time_call,
)


class TestFormatting:
    def test_seconds(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(0.01234) == "0.0123"

    def test_bytes(self):
        assert format_bytes(12) == "12B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"
        assert format_bytes(5 * 1024**3) == "5.0GB"


class TestTimeCall:
    def test_returns_elapsed_and_value(self):
        seconds, value = time_call(lambda x: x * 2, 21)
        assert value == 42
        assert seconds >= 0


class TestExperimentResult:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            experiment="figX",
            title="a test table",
            columns=["Query", "time (s)"],
            rows=[["Q0", 1.5], ["Q1", 0.25]],
            notes="a note",
        )

    def test_to_table(self, result):
        table = result.to_table()
        assert "figX" in table
        assert "a test table" in table
        assert "Q0" in table and "1.50" in table
        assert "note: a note" in table

    def test_column(self, result):
        assert result.column("time (s)") == [1.5, 0.25]

    def test_cell(self, result):
        assert result.cell("Q1", "time (s)") == 0.25

    def test_cell_missing(self, result):
        with pytest.raises(KeyError):
            result.cell("Q9", "time (s)")

    def test_alignment(self, result):
        lines = result.to_table().splitlines()
        header, separator = lines[1], lines[2]
        assert len(header) == len(separator)
