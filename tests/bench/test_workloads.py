"""Unit tests for the workload builders and predicates."""

import pytest

from repro.bench import workloads as W


class TestPredicate:
    @pytest.mark.parametrize(
        "date,expected",
        [
            ("20031225T00:00", True),
            ("20131225T00:00", True),
            ("20021225T00:00", False),  # year too early
            ("20031224T00:00", False),  # wrong day
            ("20031125T00:00", False),  # wrong month
            ("2003", False),  # malformed
        ],
    )
    def test_is_dec25_from_2003(self, date, expected):
        assert W.is_dec25_from_2003(date) is expected


class TestWorkloadBuilding:
    @pytest.fixture(scope="class")
    def workload(self):
        return W.sensor_workload(
            partitions=4, bytes_per_partition=8_000, file_bytes=2_000
        )

    def test_partitions_created(self, workload):
        assert workload.catalog.partition_count("/sensors") == 4
        assert workload.total_bytes >= 4 * 8_000

    def test_cache_returns_same_object(self, workload):
        again = W.sensor_workload(
            partitions=4, bytes_per_partition=8_000, file_bytes=2_000
        )
        assert again is workload

    def test_repartitioned_preserves_files(self, workload):
        original = sorted(workload.catalog.files("/sensors"))
        for count in (1, 2, 3, 8):
            catalog = workload.repartitioned(count)
            assert catalog.partition_count("/sensors") == count
            assert sorted(catalog.files("/sensors")) == original

    def test_repartitioned_balances(self, workload):
        catalog = workload.repartitioned(2)
        a = len(catalog.files("/sensors", 0))
        b = len(catalog.files("/sensors", 1))
        assert abs(a - b) <= 1

    def test_prefix_catalog_takes_prefix(self, workload):
        catalog = workload.prefix_catalog(2)
        assert catalog.partition_count("/sensors") == 2
        assert catalog.files("/sensors", 0) == workload.catalog.files(
            "/sensors", 0
        )

    def test_unwrapped_variant_differs(self):
        wrapped = W.sensor_workload(
            partitions=1, bytes_per_partition=4_000, file_bytes=2_000
        )
        unwrapped = W.sensor_workload(
            partitions=1,
            bytes_per_partition=4_000,
            file_bytes=2_000,
            wrapped=False,
        )
        assert wrapped.directory != unwrapped.directory
        text = open(unwrapped.catalog.files("/sensors")[0]).read()
        assert not text.lstrip().startswith('{"root"')

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert W.bench_scale() == 2.5
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert W.bench_scale() == 1.0
