"""Unit tests for the rewrite rules — plan-shape assertions per family.

Each test compiles a paper query under a rule configuration and checks
the structural property the corresponding figure shows.
"""

import pytest

from repro.algebra.expressions import (
    CollectionExpr,
    PathStepExpr,
    PromoteExpr,
    TreatExpr,
)
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    GroupBy,
    Join,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.rules import RewriteConfig, rule_pipeline
from repro.compiler.pipeline import compile_query
from repro.jsonlib.path import KeysOrMembers
from repro.jsoniq.parser import parse_query
from repro.jsoniq.translator import translate

BOOKSTORE = 'json-doc("books.json")("bookstore")("book")()'
Q0 = (
    'for $r in collection("/sensors")("root")()("results")() '
    'let $dt := dateTime(data($r("date"))) '
    "where year-from-dateTime($dt) ge 2003 "
    "return $r"
)
Q0B = 'for $r in collection("/s")("root")()("results")()("date") return $r'
Q1 = (
    'for $r in collection("/s")("root")()("results")() '
    'where $r("dataType") eq "TMIN" '
    'group by $date := $r("date") '
    'return count($r("station"))'
)
Q1B = (
    'for $r in collection("/s")("root")()("results")() '
    'where $r("dataType") eq "TMIN" '
    'group by $date := $r("date") '
    'return count(for $i in $r return $i("station"))'
)
Q2 = (
    "avg( "
    'for $a in collection("/s")("root")()("results")() '
    'for $b in collection("/s")("root")()("results")() '
    'where $a("station") eq $b("station") '
    'and $a("dataType") eq "TMIN" and $b("dataType") eq "TMAX" '
    'return $b("value") - $a("value") ) div 10'
)


def plan_for(query, config):
    return compile_query(query, config).plan


def has_expression(plan, predicate):
    for op in plan.iter_operators():
        for expr in op.used_expressions():
            if expr.contains(predicate):
                return True
    return False


class TestPathRules:
    def test_keys_or_members_merged_into_unnest(self):
        plan = plan_for(BOOKSTORE, RewriteConfig.path_only())
        unnests = plan.operators_of(Unnest)
        assert len(unnests) == 1
        expr = unnests[0].expression
        assert isinstance(expr, PathStepExpr)
        assert isinstance(expr.step, KeysOrMembers)

    def test_naive_plan_keeps_two_step_shape(self):
        naive = translate(parse_query(BOOKSTORE))
        # ASSIGN of keys-or-members feeding an UNNEST iterate.
        assigns = naive.operators_of(Assign)
        km_assigns = [
            a
            for a in assigns
            if isinstance(a.expression, PathStepExpr)
            and isinstance(a.expression.step, KeysOrMembers)
        ]
        assert km_assigns, "translator should produce the two-step shape"

    def test_promote_data_removed(self):
        plan = plan_for(BOOKSTORE, RewriteConfig.path_only())
        assert not has_expression(plan, lambda e: isinstance(e, PromoteExpr))

    def test_promote_data_kept_without_rules(self):
        plan = plan_for(BOOKSTORE, RewriteConfig.none())
        assert has_expression(plan, lambda e: isinstance(e, PromoteExpr))


class TestPipeliningRules:
    def test_datascan_introduced(self):
        plan = plan_for(Q0, RewriteConfig.path_and_pipelining())
        assert len(plan.operators_of(DataScan)) == 1
        assert not has_expression(
            plan, lambda e: isinstance(e, CollectionExpr)
        )

    def test_full_path_folded_into_datascan(self):
        plan = plan_for(Q0, RewriteConfig.path_and_pipelining())
        (scan,) = plan.operators_of(DataScan)
        assert str(scan.project_path) == '("root")()("results")()'

    def test_q0b_extends_projection_with_date(self):
        plan = plan_for(Q0B, RewriteConfig.path_and_pipelining())
        (scan,) = plan.operators_of(DataScan)
        assert str(scan.project_path) == '("root")()("results")()("date")'

    def test_no_datascan_without_pipelining(self):
        plan = plan_for(Q0, RewriteConfig.path_only())
        assert plan.operators_of(DataScan) == []
        assert has_expression(plan, lambda e: isinstance(e, CollectionExpr))

    def test_join_query_gets_two_datascans(self):
        plan = plan_for(Q2, RewriteConfig.path_and_pipelining())
        assert len(plan.operators_of(DataScan)) == 2


class TestGroupByRules:
    def test_treat_removed(self):
        plan = plan_for(Q1, RewriteConfig.all())
        assert not has_expression(plan, lambda e: isinstance(e, TreatExpr))

    def test_treat_kept_without_rules(self):
        plan = plan_for(Q1, RewriteConfig.path_and_pipelining())
        assert has_expression(plan, lambda e: isinstance(e, TreatExpr))

    def test_count_pushed_into_group_by(self):
        plan = plan_for(Q1, RewriteConfig.all())
        (group,) = plan.operators_of(GroupBy)
        nested = group.nested_root
        assert isinstance(nested, Aggregate)
        functions = {spec.function for spec in nested.specs}
        assert functions == {"count"}, "sequence aggregate should be gone"
        assert plan.operators_of(Subplan) == []

    def test_q1b_reaches_same_plan_as_q1(self):
        # Modulo generated variable names, both forms collapse to the
        # same shape (the paper: Q1b "is already written in an
        # optimized way").
        plan1 = plan_for(Q1, RewriteConfig.all())
        plan2 = plan_for(Q1B, RewriteConfig.all())
        (g1,) = plan1.operators_of(GroupBy)
        (g2,) = plan2.operators_of(GroupBy)
        assert [s.function for s in g1.nested_root.specs] == [
            s.function for s in g2.nested_root.specs
        ]
        assert len(list(plan1.iter_operators())) == len(
            list(plan2.iter_operators())
        )

    def test_without_rules_sequence_aggregate_remains(self):
        plan = plan_for(Q1, RewriteConfig.path_and_pipelining())
        (group,) = plan.operators_of(GroupBy)
        functions = {spec.function for spec in group.nested_root.specs}
        assert "sequence" in functions


class TestBuiltinRules:
    def test_select_predicates_folded_into_join(self):
        plan = plan_for(Q2, RewriteConfig.all())
        (join,) = plan.operators_of(Join)
        # The station equality became the join condition...
        assert "station" in join.condition.to_string()
        # ... and the single-side dataType filters moved into branches.
        selects = plan.operators_of(Select)
        assert len(selects) == 2
        for select in selects:
            assert "dataType" in select.condition.to_string()

    def test_cross_product_without_predicates(self):
        query = (
            'count(for $a in collection("/s")("root")() '
            'for $b in collection("/t")("root")() return 1)'
        )
        plan = plan_for(query, RewriteConfig.all())
        (join,) = plan.operators_of(Join)
        assert join.condition.to_string() == "true"

    def test_unused_assign_removed(self):
        query = (
            'for $r in collection("/s")("root")() '
            "let $unused := 1 "
            "return $r"
        )
        plan = plan_for(query, RewriteConfig.all())
        for op in plan.operators_of(Assign):
            assert op.variable != "unused"


class TestRuleEngine:
    def test_fixpoint_reached(self):
        engine = rule_pipeline(RewriteConfig.all())
        plan = translate(parse_query(Q1))
        once = engine.rewrite(plan)
        twice = engine.rewrite(once)
        assert once == twice

    def test_trace_records_applied_rules(self):
        trace = []
        engine = rule_pipeline(RewriteConfig.all())
        engine.rewrite(translate(parse_query(Q1)), trace=trace)
        applied = [name for name, _ in trace]
        assert "introduce-datascan" in applied
        assert "merge-path-into-datascan" in applied
        assert "push-subplan-aggregate-into-groupby" in applied

    def test_config_presets(self):
        assert RewriteConfig.none() == RewriteConfig(False, False, False, False)
        assert RewriteConfig.all().two_step_aggregation
        assert not RewriteConfig.path_only().pipelining
