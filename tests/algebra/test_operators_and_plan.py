"""Unit tests for logical operators, plans, and the plan printer."""

import pytest

from repro.errors import PlanError
from repro.algebra.expressions import (
    IterateExpr,
    Literal,
    VariableRef,
    keys_or_members,
    value_by_key,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateSpec,
    Assign,
    DataScan,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    NestedTupleSource,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan, VariableGenerator
from repro.jsonlib.path import parse_path


def small_plan() -> LogicalPlan:
    scan = DataScan("/sensors", "r", parse_path('("root")()'))
    select = Select(scan, value_by_key(VariableRef("r"), "ok"))
    assign = Assign(select, "v", value_by_key(VariableRef("r"), "value"))
    return LogicalPlan(DistributeResult(assign, [VariableRef("v")]))


class TestOperatorBasics:
    def test_leaf_has_no_inputs(self):
        assert EmptyTupleSource().inputs == ()
        assert DataScan("/c", "x").inputs == ()

    def test_leaf_rejects_inputs(self):
        with pytest.raises(PlanError):
            EmptyTupleSource().with_inputs([EmptyTupleSource()])

    def test_with_inputs_rebuilds(self):
        assign = Assign(EmptyTupleSource(), "x", Literal.of(1))
        other = DataScan("/c", "y")
        rebuilt = assign.with_inputs([other])
        assert rebuilt.inputs == (other,)
        assert rebuilt.variable == "x"

    def test_with_expressions_rebuilds(self):
        assign = Assign(EmptyTupleSource(), "x", Literal.of(1))
        rebuilt = assign.with_expressions([Literal.of(2)])
        assert rebuilt.expression == Literal.of(2)

    def test_produced_variables(self):
        scan = DataScan("/c", "f")
        assert scan.produced_variables() == ("f",)
        unnest = Unnest(scan, "x", IterateExpr(VariableRef("f")))
        assert unnest.produced_variables() == ("x",)

    def test_equality_is_structural(self):
        a = Assign(EmptyTupleSource(), "x", Literal.of(1))
        b = Assign(EmptyTupleSource(), "x", Literal.of(1))
        c = Assign(EmptyTupleSource(), "x", Literal.of(2))
        assert a == b
        assert a != c

    def test_datascan_with_project_path(self):
        scan = DataScan("/c", "f")
        extended = scan.with_project_path(parse_path('("a")()'))
        assert str(extended.project_path) == '("a")()'
        assert str(scan.project_path) == ""

    def test_aggregate_requires_specs(self):
        with pytest.raises(PlanError):
            Aggregate(EmptyTupleSource(), [])

    def test_aggregate_spec_validates_function(self):
        with pytest.raises(PlanError):
            AggregateSpec("x", "median", Literal.of(1))

    def test_group_by_requires_keys(self):
        nested = Aggregate(
            NestedTupleSource(), [AggregateSpec("s", "count", Literal.of(1))]
        )
        with pytest.raises(PlanError):
            GroupBy(EmptyTupleSource(), [], nested)

    def test_group_by_produces_keys_and_aggregates(self):
        nested = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("n", "count", VariableRef("x"))],
        )
        group = GroupBy(
            EmptyTupleSource(), [("k", VariableRef("k"))], nested
        )
        assert set(group.produced_variables()) == {"k", "n"}

    def test_subplan_produces_nested_variables(self):
        nested = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("c", "count", VariableRef("x"))],
        )
        subplan = Subplan(EmptyTupleSource(), nested)
        assert subplan.produced_variables() == ("c",)

    def test_join_inputs(self):
        left, right = DataScan("/a", "l"), DataScan("/b", "r")
        join = Join(left, right, Literal.of(True))
        assert join.inputs == (left, right)


class TestPlanTraversal:
    def test_iter_operators_visits_all(self):
        plan = small_plan()
        names = [op.name for op in plan.iter_operators()]
        assert names.count("DATASCAN") == 1
        assert len(names) == 4

    def test_iter_includes_nested_plans(self):
        nested = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("c", "count", VariableRef("x"))],
        )
        plan = LogicalPlan(
            DistributeResult(
                Subplan(EmptyTupleSource(), nested), [VariableRef("c")]
            )
        )
        names = [op.name for op in plan.iter_operators()]
        assert "NESTED-TUPLE-SOURCE" in names
        assert "AGGREGATE" in names

    def test_operators_of(self):
        plan = small_plan()
        assert len(plan.operators_of(DataScan)) == 1
        assert len(plan.operators_of(Join)) == 0

    def test_transform_bottom_up(self):
        plan = small_plan()

        def rename_scan(op):
            if isinstance(op, DataScan):
                return DataScan(op.collection, "renamed", op.project_path)
            return op

        rewritten = plan.transform_bottom_up(rename_scan)
        (scan,) = rewritten.operators_of(DataScan)
        assert scan.variable == "renamed"
        # Original untouched.
        assert small_plan().operators_of(DataScan)[0].variable == "r"

    def test_plan_equality(self):
        assert small_plan() == small_plan()


class TestExplain:
    def test_paper_style_lines(self):
        text = small_plan().explain()
        lines = text.splitlines()
        assert lines[0].startswith("DISTRIBUTE-RESULT")
        assert lines[-1].strip().startswith("DATASCAN")
        # Indentation grows down the chain.
        assert lines[1].startswith("  ASSIGN")

    def test_nested_plan_braces(self):
        nested = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("c", "count", VariableRef("x"))],
        )
        group = GroupBy(
            EmptyTupleSource(), [("k", VariableRef("k"))], nested
        )
        text = LogicalPlan(group).explain()
        assert "{" in text and "}" in text
        assert "AGGREGATE( $c : count($x) )" in text

    def test_datascan_signature_shows_path(self):
        scan = DataScan("/sensors", "r", parse_path('("root")()'))
        assert scan.signature() == (
            'DATASCAN( $r : collection("/sensors"), ("root")() )'
        )


class TestVariableGenerator:
    def test_fresh_names_unique(self):
        gen = VariableGenerator()
        names = {gen.fresh("v") for _ in range(100)}
        assert len(names) == 100

    def test_respects_existing(self):
        gen = VariableGenerator({"v#0", "v#1"})
        assert gen.fresh("v") == "v#2"

    def test_for_plan_collects_produced(self):
        gen = VariableGenerator.for_plan(small_plan())
        fresh = gen.fresh("r")
        assert fresh != "r"
