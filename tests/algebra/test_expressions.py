"""Unit tests for logical expression evaluation."""

import datetime

import pytest

from repro.errors import (
    ItemTypeError,
    TranslationError,
    TypeCheckError,
    UnboundVariableError,
    UnknownFunctionError,
)
from repro.algebra.context import EvaluationContext
from repro.algebra.expressions import (
    AndExpr,
    ArithmeticExpr,
    ArrayConstructorExpr,
    ComparisonExpr,
    DataExpr,
    FunctionCallExpr,
    IfExpr,
    IterateExpr,
    Literal,
    NotExpr,
    ObjectConstructorExpr,
    OrExpr,
    PathStepExpr,
    PromoteExpr,
    SequenceExpr,
    TreatExpr,
    VariableRef,
    effective_boolean_value,
    keys_or_members,
    value_by_key,
)
from repro.jsonlib.path import KeysOrMembers, Path, ValueByKey

CTX = EvaluationContext()


def ev(expr, tup=None):
    return expr.evaluate(tup or {}, CTX)


class TestLeaves:
    def test_literal(self):
        assert ev(Literal.of(42)) == [42]

    def test_literal_sequence(self):
        assert ev(Literal([1, 2, 3])) == [1, 2, 3]

    def test_variable(self):
        assert ev(VariableRef("x"), {"x": [7]}) == [7]

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            ev(VariableRef("nope"))


class TestPathSteps:
    def test_value_by_key(self):
        expr = value_by_key(VariableRef("x"), "a")
        assert ev(expr, {"x": [{"a": 1}]}) == [1]

    def test_maps_over_sequences(self):
        expr = value_by_key(VariableRef("x"), "a")
        assert ev(expr, {"x": [{"a": 1}, {"b": 2}, {"a": 3}]}) == [1, 3]

    def test_keys_or_members(self):
        expr = keys_or_members(VariableRef("x"))
        assert ev(expr, {"x": [[1, 2], {"k": 3}]}) == [1, 2, "k"]

    def test_chain_builder(self):
        expr = PathStepExpr.chain(
            VariableRef("x"), Path([ValueByKey("a"), KeysOrMembers()])
        )
        assert ev(expr, {"x": [{"a": [1, 2]}]}) == [1, 2]

    def test_leading_path_decomposition(self):
        expr = PathStepExpr.chain(
            VariableRef("x"), Path([ValueByKey("a"), KeysOrMembers()])
        )
        base, path = expr.leading_path()
        assert base == VariableRef("x")
        assert str(path) == '("a")()'


class TestCoercions:
    def test_promote_accepts_conforming(self):
        assert ev(PromoteExpr(Literal.of("s"), "string")) == ["s"]

    def test_promote_rejects_wrong_type(self):
        with pytest.raises(TypeCheckError):
            ev(PromoteExpr(Literal.of(1), "string"))

    def test_data_atomizes(self):
        assert ev(DataExpr(Literal.of("x"))) == ["x"]

    def test_data_rejects_containers(self):
        with pytest.raises(ItemTypeError):
            ev(DataExpr(Literal([[1]])))

    def test_treat_item_is_identity(self):
        assert ev(TreatExpr(Literal([1, "a", {}]), "item")) == [1, "a", {}]

    def test_treat_checks_type(self):
        with pytest.raises(TypeCheckError):
            ev(TreatExpr(Literal.of(1), "string"))

    def test_iterate_is_identity(self):
        assert ev(IterateExpr(Literal([1, 2]))) == [1, 2]


class TestFunctions:
    def test_builtin_call(self):
        assert ev(FunctionCallExpr("count", [Literal([1, 2, 3])])) == [3]

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            ev(FunctionCallExpr("no-such-fn", [Literal.of(1)]))


class TestEffectiveBooleanValue:
    @pytest.mark.parametrize(
        "sequence,expected",
        [
            ([], False),
            ([True], True),
            ([False], False),
            ([0], False),
            ([0.0], False),
            ([3], True),
            ([""], False),
            (["x"], True),
            ([None], False),
            ([{}], True),
            ([[]], True),
            ([{"a": 1}, {"b": 2}], True),
        ],
    )
    def test_ebv(self, sequence, expected):
        assert effective_boolean_value(sequence) is expected

    def test_multi_atomic_is_error(self):
        with pytest.raises(ItemTypeError):
            effective_boolean_value([1, 2])


class TestComparisons:
    def test_eq(self):
        assert ev(ComparisonExpr("eq", Literal.of(1), Literal.of(1))) == [True]

    def test_numeric_cross_type(self):
        assert ev(ComparisonExpr("eq", Literal.of(1), Literal.of(1.0))) == [True]

    def test_string_ordering(self):
        assert ev(ComparisonExpr("lt", Literal.of("a"), Literal.of("b"))) == [True]

    def test_datetime_ordering(self):
        early = Literal.of(datetime.datetime(2003, 1, 1))
        late = Literal.of(datetime.datetime(2013, 1, 1))
        assert ev(ComparisonExpr("ge", late, early)) == [True]

    def test_empty_operand_yields_empty(self):
        assert ev(ComparisonExpr("eq", Literal([]), Literal.of(1))) == []

    def test_multi_item_operand_is_error(self):
        with pytest.raises(ItemTypeError):
            ev(ComparisonExpr("eq", Literal([1, 2]), Literal.of(1)))

    def test_incomparable_types(self):
        with pytest.raises(ItemTypeError):
            ev(ComparisonExpr("lt", Literal.of("a"), Literal.of(1)))

    def test_null_comparisons(self):
        assert ev(ComparisonExpr("eq", Literal.of(None), Literal.of(1))) == [False]
        assert ev(ComparisonExpr("ne", Literal.of(None), Literal.of(1))) == [True]

    def test_unknown_operator_rejected(self):
        with pytest.raises(TranslationError):
            ComparisonExpr("===", Literal.of(1), Literal.of(1))


class TestBooleanOperators:
    def test_and_or_not(self):
        t, f = Literal.of(True), Literal.of(False)
        assert ev(AndExpr([t, t])) == [True]
        assert ev(AndExpr([t, f])) == [False]
        assert ev(OrExpr([f, t])) == [True]
        assert ev(NotExpr(f)) == [True]

    def test_and_short_circuits(self):
        poison = FunctionCallExpr("no-such-fn", [])
        assert ev(AndExpr([Literal.of(False), poison])) == [False]

    def test_conjunct_flattening(self):
        a, b, c = Literal.of(True), Literal.of(False), Literal.of(True)
        nested = AndExpr([AndExpr([a, b]), c])
        assert len(nested.conjuncts()) == 3


class TestArithmetic:
    def test_operations(self):
        two, three = Literal.of(2), Literal.of(3)
        assert ev(ArithmeticExpr("+", two, three)) == [5]
        assert ev(ArithmeticExpr("-", two, three)) == [-1]
        assert ev(ArithmeticExpr("*", two, three)) == [6]
        assert ev(ArithmeticExpr("div", three, two)) == [1.5]
        assert ev(ArithmeticExpr("idiv", three, two)) == [1]
        assert ev(ArithmeticExpr("mod", three, two)) == [1]

    def test_empty_propagates(self):
        assert ev(ArithmeticExpr("+", Literal([]), Literal.of(1))) == []

    def test_division_by_zero(self):
        with pytest.raises(ItemTypeError):
            ev(ArithmeticExpr("div", Literal.of(1), Literal.of(0)))

    def test_non_numeric_rejected(self):
        with pytest.raises(ItemTypeError):
            ev(ArithmeticExpr("+", Literal.of("a"), Literal.of(1)))

    def test_boolean_not_a_number(self):
        with pytest.raises(ItemTypeError):
            ev(ArithmeticExpr("+", Literal.of(True), Literal.of(1)))


class TestConstructors:
    def test_object(self):
        expr = ObjectConstructorExpr([("a", Literal.of(1)), ("b", Literal.of("x"))])
        assert ev(expr) == [{"a": 1, "b": "x"}]

    def test_object_requires_singletons(self):
        with pytest.raises(ItemTypeError):
            ev(ObjectConstructorExpr([("a", Literal([1, 2]))]))

    def test_array_flattens_sequences(self):
        expr = ArrayConstructorExpr([Literal([1, 2]), Literal.of(3)])
        assert ev(expr) == [[1, 2, 3]]

    def test_sequence_concatenates(self):
        expr = SequenceExpr([Literal([1]), Literal([2, 3])])
        assert ev(expr) == [1, 2, 3]

    def test_if(self):
        expr = IfExpr(Literal.of(True), Literal.of(1), Literal.of(2))
        assert ev(expr) == [1]
        expr = IfExpr(Literal([]), Literal.of(1), Literal.of(2))
        assert ev(expr) == [2]


class TestStructure:
    def test_equality(self):
        a = value_by_key(VariableRef("x"), "k")
        b = value_by_key(VariableRef("x"), "k")
        c = value_by_key(VariableRef("y"), "k")
        assert a == b
        assert a != c

    def test_free_variables(self):
        expr = AndExpr(
            [
                ComparisonExpr("eq", VariableRef("a"), Literal.of(1)),
                value_by_key(VariableRef("b"), "k"),
            ]
        )
        assert expr.free_variables() == {"a", "b"}

    def test_with_child_expressions_rebuilds(self):
        expr = value_by_key(VariableRef("x"), "k")
        rebuilt = expr.with_child_expressions([VariableRef("y")])
        assert rebuilt == value_by_key(VariableRef("y"), "k")
        assert expr == value_by_key(VariableRef("x"), "k")  # original intact

    def test_to_string_is_paper_style(self):
        expr = keys_or_members(value_by_key(VariableRef("x"), "book"))
        assert expr.to_string() == '$x("book")()'
