"""Property-based tests (hypothesis) for the JSON substrate invariants.

Invariants:

1. ``parse`` agrees with the stdlib ``json`` module on anything the
   stdlib can produce.
2. Parsing is chunking-invariant: feeding the text in arbitrary pieces
   yields the same event stream as one big feed.
3. ``parse(dumps(item)) == item`` (serializer round-trip).
4. The projecting parser agrees with ``navigate`` over materialized items
   for arbitrary documents and arbitrary paths.
5. ``sizeof_item`` is monotone under structural growth.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsonlib.items import sizeof_item
from repro.jsonlib.parser import StreamingJsonParser, iter_events, parse
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
    navigate,
)
from repro.jsonlib.projection import project_text
from repro.jsonlib.serializer import dumps

# Finite floats only: JSON has no NaN/Infinity.
json_atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**15), max_value=10**15),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

json_values = st.recursive(
    json_atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)

path_steps = st.one_of(
    st.builds(ValueByKey, st.sampled_from(["a", "b", "k", "results", ""])),
    st.builds(ValueByIndex, st.integers(min_value=1, max_value=4)),
    st.just(KeysOrMembers()),
)

paths = st.builds(Path, st.lists(path_steps, max_size=4))


@given(json_values)
def test_parse_agrees_with_stdlib(value):
    text = json.dumps(value)
    assert parse(text) == json.loads(text)


@given(json_values, st.data())
@settings(max_examples=60)
def test_chunking_invariance(value, data):
    text = json.dumps(value)
    reference = list(iter_events(text))
    # Split the text at random cut points.
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(text)), max_size=6
            )
        )
    )
    parser = StreamingJsonParser()
    events = []
    previous = 0
    for cut in cuts + [len(text)]:
        events.extend(parser.feed(text[previous:cut]))
        previous = cut
    events.extend(parser.finish())
    assert events == reference


@given(json_values)
def test_serializer_roundtrip(value):
    assert parse(dumps(value)) == value


@given(json_values)
@settings(max_examples=60)
def test_indented_serializer_roundtrip(value):
    assert parse(dumps(value, indent=2)) == value


# Strings drawn from the hostile end of Unicode: C0/C1 controls (which
# must be \u-escaped), astral-plane characters (surrogate pairs in the
# \uXXXX escape form), and the BOM/quote/backslash specials.
hostile_text = st.text(
    alphabet=st.one_of(
        st.characters(min_codepoint=0x00, max_codepoint=0x1F),
        st.characters(min_codepoint=0x7F, max_codepoint=0x9F),
        st.characters(min_codepoint=0x10000, max_codepoint=0x10FFFF),
        st.sampled_from(['"', "\\", "/", "﻿", " ", " "]),
        st.characters(),
    ),
    max_size=20,
)

hostile_values = st.recursive(
    st.one_of(json_atoms, hostile_text),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(hostile_text, children, max_size=4),
    ),
    max_leaves=20,
)


@given(hostile_values)
@settings(max_examples=150)
def test_serializer_roundtrip_hostile_strings(value):
    assert parse(dumps(value)) == value


@given(hostile_values)
@settings(max_examples=60)
def test_hostile_output_agrees_with_stdlib(value):
    # Our serializer's output must also be valid for the stdlib parser.
    assert json.loads(dumps(value)) == value


@given(st.integers(min_value=1, max_value=300), st.sampled_from(["arr", "obj"]))
@settings(max_examples=30)
def test_serializer_roundtrip_deep_nesting(depth, kind):
    value = 7
    for _ in range(depth):
        value = [value] if kind == "arr" else {"k": value}
    assert parse(dumps(value)) == value


def test_roundtrip_control_character_corpus():
    # Every C0 control plus the documented escapes, deterministically.
    corpus = [chr(i) for i in range(0x20)] + ["\b\f\n\r\t", '\\"', "\x7f"]
    assert parse(dumps(corpus)) == corpus
    assert json.loads(dumps(corpus)) == corpus


def test_roundtrip_surrogate_pair_corpus():
    corpus = ["𝄞", "😀🎉", "a𝕊b", "\U0010FFFF"]
    assert parse(dumps(corpus)) == corpus
    # The stdlib escapes astral characters as surrogate pairs; our
    # parser must decode those pair escapes back to one code point.
    assert parse(json.dumps(corpus)) == corpus


@given(json_values, paths)
@settings(max_examples=120)
def test_projection_equals_navigate(value, path):
    text = json.dumps(value)
    assert list(project_text(text, path)) == navigate(parse(text), path)


@given(json_values, st.text(max_size=6), json_values)
def test_sizeof_monotone_object_growth(value, key, extra):
    base = {"seed": value}
    grown = dict(base)
    grown[key + "!"] = extra  # guaranteed new key
    assert sizeof_item(grown) > sizeof_item(base)


@given(st.lists(json_values, max_size=5))
def test_sizeof_array_at_least_members(members):
    assert sizeof_item(members) >= sum(sizeof_item(m) for m in members)
