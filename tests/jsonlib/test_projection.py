"""Unit tests for the path-projecting streaming parser."""

import pytest

from repro.errors import JsonSyntaxError
from repro.jsonlib.parser import parse
from repro.jsonlib.path import Path, navigate, parse_path
from repro.jsonlib.projection import project_events, project_file, project_text

SENSOR_FILE = """
{
  "root": [
    {
      "metadata": {"count": 2},
      "results": [
        {"date": "20131225T00:00", "dataType": "TMIN", "station": "S1", "value": 4},
        {"date": "20131225T00:00", "dataType": "TMAX", "station": "S1", "value": 10}
      ]
    },
    {
      "metadata": {"count": 1},
      "results": [
        {"date": "20141225T00:00", "dataType": "WIND", "station": "S2", "value": 30}
      ]
    }
  ]
}
"""


class TestProjectText:
    def test_whole_value_with_empty_path(self):
        items = list(project_text("[1, 2]", Path()))
        assert items == [[1, 2]]

    def test_value_by_key(self):
        items = list(project_text('{"a": 1, "b": 2}', parse_path('("b")')))
        assert items == [2]

    def test_missing_key(self):
        assert list(project_text('{"a": 1}', parse_path('("z")'))) == []

    def test_members_of_array(self):
        assert list(project_text("[1, 2, 3]", parse_path("()"))) == [1, 2, 3]

    def test_keys_of_object(self):
        assert list(project_text('{"a": 1, "b": 2}', parse_path("()"))) == ["a", "b"]

    def test_keys_then_step_yields_nothing(self):
        # Keys are strings; a further value step over them is empty.
        assert list(project_text('{"a": {"b": 1}}', parse_path('()("b")'))) == []

    def test_index_step(self):
        assert list(project_text("[10, 20, 30]", parse_path("(2)"))) == [20]

    def test_index_out_of_range(self):
        assert list(project_text("[10]", parse_path("(5)"))) == []

    def test_nested_sensor_path(self):
        path = parse_path('("root")()("results")()')
        results = list(project_text(SENSOR_FILE, path))
        assert len(results) == 3
        assert results[0]["dataType"] == "TMIN"
        assert results[2]["station"] == "S2"

    def test_projection_to_leaf_field(self):
        path = parse_path('("root")()("results")()("date")')
        dates = list(project_text(SENSOR_FILE, path))
        assert dates == ["20131225T00:00", "20131225T00:00", "20141225T00:00"]

    def test_wrong_type_on_path_is_skipped(self):
        text = '[{"a": 1}, 5, {"a": 2}, [7]]'
        assert list(project_text(text, parse_path('()("a")'))) == [1, 2]

    def test_multiple_top_level_values(self):
        text = '{"x": 1} {"x": 2} {"y": 3}'
        assert list(project_text(text, parse_path('("x")'))) == [1, 2]

    def test_duplicate_keys_last_occurrence_wins(self):
        # The event stream sees both pairs, but the parser's dict keeps
        # only the last — projection must emit the same winner.
        text = '{"a": 1, "a": 2}'
        assert list(project_text(text, parse_path('("a")'))) == [2]


class TestEquivalenceWithNavigate:
    """The projecting parser must agree with navigate() over parsed items."""

    CASES = [
        ('{"a": {"b": [1, 2]}}', '("a")("b")()'),
        ('{"a": [{"b": 1}, {"c": 2}]}', '("a")()("b")'),
        ("[[1], [2, 3], []]", "()()"),
        ('{"a": 1}', "()"),
        ("[{}, {}]", "()()"),
        (SENSOR_FILE, '("root")()("results")()("value")'),
        (SENSOR_FILE, '("root")()("metadata")("count")'),
        (SENSOR_FILE, '("root")(1)("results")(2)'),
    ]

    @pytest.mark.parametrize("text,path_text", CASES)
    def test_matches_navigate(self, text, path_text):
        path = parse_path(path_text)
        assert list(project_text(text, path)) == navigate(parse(text), path)


class TestProjectFile:
    def test_small_chunks(self, tmp_path):
        target = tmp_path / "sensor.json"
        target.write_text(SENSOR_FILE, encoding="utf-8")
        path = parse_path('("root")()("results")()("station")')
        stations = list(project_file(str(target), path, chunk_size=7))
        assert stations == ["S1", "S1", "S2"]

    def test_multi_document_file(self, tmp_path):
        target = tmp_path / "docs.json"
        target.write_text('{"v": 1}\n{"v": 2}\n{"v": 3}\n', encoding="utf-8")
        values = list(project_file(str(target), parse_path('("v")')))
        assert values == [1, 2, 3]


class TestErrors:
    def test_truncated_stream(self):
        from repro.jsonlib.parser import iter_events

        def broken_events():
            events = list(iter_events('{"a": [1, 2]}'))
            yield from events[:3]  # cut inside the array

        with pytest.raises(JsonSyntaxError):
            list(project_events(broken_events(), parse_path('("a")')))
