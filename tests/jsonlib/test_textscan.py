"""Unit and property tests for the raw-text projecting scanner."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JsonSyntaxError
from repro.jsonlib.parser import parse, parse_many
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
    navigate,
    parse_path,
)
from repro.jsonlib.textscan import scan_file, scan_text


def reference(text, path):
    out = []
    for value in parse_many(text):
        out.extend(navigate(value, path))
    return out


class TestScanText:
    def test_whole_value(self):
        assert list(scan_text('{"a": 1}', Path())) == [{"a": 1}]

    def test_value_by_key(self):
        assert list(scan_text('{"a": 1, "b": 2}', parse_path('("b")'))) == [2]

    def test_skips_non_matching_values(self):
        text = '{"skip": {"deep": [1, [2, {"x": 3}]]}, "take": true}'
        assert list(scan_text(text, parse_path('("take")'))) == [True]

    def test_members(self):
        assert list(scan_text("[1, 2, 3]", parse_path("()"))) == [1, 2, 3]

    def test_object_keys(self):
        assert list(scan_text('{"a": 1, "b": 2}', parse_path("()"))) == ["a", "b"]

    def test_index(self):
        assert list(scan_text("[10, 20, 30]", parse_path("(2)"))) == [20]

    def test_index_out_of_range(self):
        assert list(scan_text("[10]", parse_path("(9)"))) == []

    def test_nested_path(self):
        text = '{"root": [{"results": [{"v": 1}, {"v": 2}]}]}'
        path = parse_path('("root")()("results")()("v")')
        assert list(scan_text(text, path)) == [1, 2]

    def test_multiple_top_level_values(self):
        assert list(scan_text('{"v": 1} {"v": 2}', parse_path('("v")'))) == [1, 2]

    def test_wrong_type_skipped(self):
        text = '[5, {"a": 1}, "s", [2], {"a": 3}]'
        assert list(scan_text(text, parse_path('()("a")'))) == [1, 3]

    def test_duplicate_keys_all_match(self):
        assert list(scan_text('{"a": 1, "a": 2}', parse_path('("a")'))) == [1, 2]

    def test_escaped_strings_in_skipped_values(self):
        text = r'{"skip": "quote \" brace } bracket ]", "take": 1}'
        assert list(scan_text(text, parse_path('("take")'))) == [1]

    def test_escaped_backslash_before_quote(self):
        text = r'{"skip": "ends with backslash \\", "take": 1}'
        assert list(scan_text(text, parse_path('("take")'))) == [1]

    def test_builds_exact_values(self):
        text = '{"take": {"n": -1.5e2, "b": false, "s": "x", "nul": null}}'
        (value,) = scan_text(text, parse_path('("take")'))
        assert value == {"n": -150.0, "b": False, "s": "x", "nul": None}

    def test_whitespace_everywhere(self):
        text = ' { "a" :\n [ 1 ,\t2 ] } '
        assert list(scan_text(text, parse_path('("a")()'))) == [1, 2]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["{", "[1,", '{"a" 1}', '{"a": }', '"unterminated', "@"],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(JsonSyntaxError):
            list(scan_text(text, parse_path('("a")')))

    def test_skipped_regions_are_not_validated(self):
        # Like other structural skippers, the scanner only tracks nesting
        # and strings inside regions the path never touches — "[1 2]" is
        # skipped without noticing the missing comma.
        assert list(scan_text('{"skip": [1 2], "a": 3}', parse_path('("a")'))) == [3]

    def test_malformed_matched_value(self):
        with pytest.raises(JsonSyntaxError):
            list(scan_text('{"a": [1,]}', parse_path('("a")')))


class TestScanFile:
    def test_reads_from_disk(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text('{"v": [1, 2]}', encoding="utf-8")
        assert list(scan_file(str(target), parse_path('("v")()'))) == [1, 2]


# -- property: equivalence with the navigate reference -----------------------

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=12),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)

path_steps = st.one_of(
    st.builds(ValueByKey, st.sampled_from(["a", "b", "results", ""])),
    st.builds(ValueByIndex, st.integers(min_value=1, max_value=3)),
    st.just(KeysOrMembers()),
)
paths = st.builds(Path, st.lists(path_steps, max_size=4))


@given(json_values, paths)
@settings(max_examples=150)
def test_property_matches_navigate(value, path):
    text = json.dumps(value)
    assert list(scan_text(text, path)) == navigate(parse(text), path)


@given(st.lists(json_values, min_size=1, max_size=3), paths)
@settings(max_examples=60)
def test_property_multi_value_stream(values, path):
    text = " ".join(json.dumps(v) for v in values)
    assert list(scan_text(text, path)) == reference(text, path)
