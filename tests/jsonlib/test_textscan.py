"""Unit and property tests for the raw-text projecting scanner."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JsonSyntaxError
from repro.jsonlib.parser import parse, parse_many
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
    navigate,
    parse_path,
)
from repro.jsonlib.textscan import ScanCounters, scan_file, scan_text


def reference(text, path):
    out = []
    for value in parse_many(text):
        out.extend(navigate(value, path))
    return out


class TestScanText:
    def test_whole_value(self):
        assert list(scan_text('{"a": 1}', Path())) == [{"a": 1}]

    def test_value_by_key(self):
        assert list(scan_text('{"a": 1, "b": 2}', parse_path('("b")'))) == [2]

    def test_skips_non_matching_values(self):
        text = '{"skip": {"deep": [1, [2, {"x": 3}]]}, "take": true}'
        assert list(scan_text(text, parse_path('("take")'))) == [True]

    def test_members(self):
        assert list(scan_text("[1, 2, 3]", parse_path("()"))) == [1, 2, 3]

    def test_object_keys(self):
        assert list(scan_text('{"a": 1, "b": 2}', parse_path("()"))) == ["a", "b"]

    def test_index(self):
        assert list(scan_text("[10, 20, 30]", parse_path("(2)"))) == [20]

    def test_index_out_of_range(self):
        assert list(scan_text("[10]", parse_path("(9)"))) == []

    def test_nested_path(self):
        text = '{"root": [{"results": [{"v": 1}, {"v": 2}]}]}'
        path = parse_path('("root")()("results")()("v")')
        assert list(scan_text(text, path)) == [1, 2]

    def test_multiple_top_level_values(self):
        assert list(scan_text('{"v": 1} {"v": 2}', parse_path('("v")'))) == [1, 2]

    def test_wrong_type_skipped(self):
        text = '[5, {"a": 1}, "s", [2], {"a": 3}]'
        assert list(scan_text(text, parse_path('()("a")'))) == [1, 3]

    def test_duplicate_keys_last_occurrence_wins(self):
        # Must agree with parse-then-navigate, where the dict keeps the
        # last occurrence of a repeated key.
        assert list(scan_text('{"a": 1, "a": 2}', parse_path('("a")'))) == [2]

    def test_escaped_strings_in_skipped_values(self):
        text = r'{"skip": "quote \" brace } bracket ]", "take": 1}'
        assert list(scan_text(text, parse_path('("take")'))) == [1]

    def test_escaped_backslash_before_quote(self):
        text = r'{"skip": "ends with backslash \\", "take": 1}'
        assert list(scan_text(text, parse_path('("take")'))) == [1]

    def test_builds_exact_values(self):
        text = '{"take": {"n": -1.5e2, "b": false, "s": "x", "nul": null}}'
        (value,) = scan_text(text, parse_path('("take")'))
        assert value == {"n": -150.0, "b": False, "s": "x", "nul": None}

    def test_whitespace_everywhere(self):
        text = ' { "a" :\n [ 1 ,\t2 ] } '
        assert list(scan_text(text, parse_path('("a")()'))) == [1, 2]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["{", "[1,", '{"a" 1}', '{"a": }', '"unterminated', "@"],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(JsonSyntaxError):
            list(scan_text(text, parse_path('("a")')))

    def test_skipped_regions_are_not_validated(self):
        # Like other structural skippers, the scanner only tracks nesting
        # and strings inside regions the path never touches — "[1 2]" is
        # skipped without noticing the missing comma.
        assert list(scan_text('{"skip": [1 2], "a": 3}', parse_path('("a")'))) == [3]

    def test_malformed_matched_value(self):
        with pytest.raises(JsonSyntaxError):
            list(scan_text('{"a": [1,]}', parse_path('("a")')))


class TestScanFile:
    def test_reads_from_disk(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text('{"v": [1, 2]}', encoding="utf-8")
        assert list(scan_file(str(target), parse_path('("v")()'))) == [1, 2]


class TestChunkedScanFile:
    """scan_file streams in chunks; behaviour must match scan_text."""

    TEXT = "\n".join(
        json.dumps(
            {"v": {"k": [i, i + 0.5, f's"{i}', True, None]}, "pad": "y" * 23}
        )
        for i in range(40)
    ) + '\n[1, 2, 3]\n12345\n"tail"\n'

    def write(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text(self.TEXT, encoding="utf-8")
        return str(target)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 1000, 1 << 20])
    @pytest.mark.parametrize("path_text", ['("v")("k")()', "()", '("v")("k")(2)'])
    def test_equivalent_to_scan_text_at_any_chunk_size(
        self, tmp_path, chunk_size, path_text
    ):
        name = self.write(tmp_path)
        path = parse_path(path_text)
        expected = list(scan_text(self.TEXT, path))
        assert list(scan_file(name, path, chunk_size=chunk_size)) == expected

    def test_token_split_across_chunk_boundary(self, tmp_path):
        # A number whose digits straddle the read boundary must not be
        # truncated into a shorter valid prefix.
        target = tmp_path / "data.json"
        target.write_text("1234567 8901", encoding="utf-8")
        path = parse_path("")
        assert list(scan_file(str(target), path, chunk_size=4)) == [
            1234567,
            8901,
        ]

    def test_skip_record_offsets_are_absolute(self, tmp_path):
        bad = self.TEXT[:150] + '{"broken": \n' + self.TEXT[150:]
        target = tmp_path / "data.json"
        target.write_text(bad, encoding="utf-8")
        path = parse_path('("v")("k")()')
        expected_events: list = []
        expected = list(
            scan_text(
                bad,
                path,
                on_malformed="skip_record",
                recorder=lambda o, m: expected_events.append((o, m)),
            )
        )
        for chunk_size in (5, 37, 1 << 20):
            events: list = []
            items = list(
                scan_file(
                    str(target),
                    path,
                    on_malformed="skip_record",
                    recorder=lambda o, m: events.append((o, m)),
                    chunk_size=chunk_size,
                )
            )
            assert items == expected
            assert events == expected_events

    def test_fail_mode_error_offset_is_absolute(self, tmp_path):
        # A stray top-level '}' right after the first record.
        bad = self.TEXT.replace("\n", "\n} ", 1)
        target = tmp_path / "data.json"
        target.write_text(bad, encoding="utf-8")
        path = parse_path('("v")("k")()')
        with pytest.raises(JsonSyntaxError) as reference:
            list(scan_text(bad, path))
        with pytest.raises(JsonSyntaxError) as chunked:
            list(scan_file(str(target), path, chunk_size=7))
        assert chunked.value.offset == reference.value.offset
        assert str(chunked.value) == str(reference.value)

    def test_rejects_nonpositive_chunk_size(self, tmp_path):
        name = self.write(tmp_path)
        with pytest.raises(ValueError, match="chunk_size"):
            list(scan_file(name, parse_path(""), chunk_size=0))

    def test_multibyte_char_straddles_chunk_boundary(self, tmp_path):
        # "é" is 2 bytes, "日" 3, "𝄞" 4 (a surrogate pair in UTF-16);
        # byte-sized chunks force every one of them across a read
        # boundary.  The text-mode reader must never hand back half a
        # code point.
        value = {"take": "héllo 日本 𝄞 clef", "skip": "é𝄞" * 7}
        text = json.dumps(value, ensure_ascii=False)
        target = tmp_path / "data.json"
        target.write_text(text, encoding="utf-8")
        path = parse_path('("take")')
        for chunk_size in (1, 2, 3, 5):
            assert list(scan_file(str(target), path, chunk_size=chunk_size)) == [
                value["take"]
            ]

    def test_escaped_quote_straddles_chunk_boundary(self, tmp_path):
        # The two characters of '\"' (and of '\\\\') must not be split by
        # rescanning: the backslash state has to survive the boundary.
        text = r'{"skip": "a\"b\\", "take": "x\"y"}'
        target = tmp_path / "data.json"
        target.write_text(text, encoding="utf-8")
        path = parse_path('("take")')
        expected = list(scan_text(text, path))
        assert expected == ['x"y']
        for chunk_size in range(1, 8):
            assert (
                list(scan_file(str(target), path, chunk_size=chunk_size))
                == expected
            )

    def test_memory_stays_buffer_bounded(self, tmp_path):
        # The consumed prefix must be compacted away: scanning with a
        # tiny chunk must never hold the whole file in the buffer.
        import tracemalloc

        big = "\n".join(
            json.dumps({"v": i, "pad": "z" * 64}) for i in range(2000)
        )
        target = tmp_path / "big.json"
        target.write_text(big, encoding="utf-8")
        path = parse_path('("v")')
        tracemalloc.start()
        count = sum(1 for _ in scan_file(str(target), path, chunk_size=512))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 2000
        # Whole file is ~160 KiB; the sliding buffer should stay well
        # under half of it even with allocator overhead.
        assert peak < len(big) // 2


class TestByteOrderMark:
    """RFC 8259 §8.1: a leading BOM may be present and must be ignored."""

    def test_scan_text_skips_leading_bom(self):
        assert list(scan_text('﻿{"a": 1}', parse_path('("a")'))) == [1]

    def test_scan_file_skips_leading_bom(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_bytes(b'\xef\xbb\xbf{"a": [1, 2]}')
        path = parse_path('("a")()')
        for chunk_size in (1, 2, 7, 1 << 20):
            assert list(scan_file(str(target), path, chunk_size=chunk_size)) == [
                1,
                2,
            ]

    def test_interior_bom_is_not_stripped(self):
        # Only a *leading* BOM is special; U+FEFF inside a string is data.
        assert list(scan_text('{"a": "﻿x"}', parse_path('("a")'))) == [
            "﻿x"
        ]


class TestScanCounters:
    def test_counts_matches_and_skips(self):
        text = '{"skip": {"deep": [1, 2]}, "take": 5, "also": 6}'
        counters = ScanCounters()
        assert list(scan_text(text, parse_path('("take")'), counters=counters)) == [5]
        assert counters.matched == 1
        assert counters.skipped == 2  # "skip" subtree + "also"

    def test_keys_or_members_counts_each_match(self):
        counters = ScanCounters()
        assert list(scan_text("[1, 2, 3]", parse_path("()"), counters=counters)) == [
            1,
            2,
            3,
        ]
        assert counters.matched == 3
        assert counters.skipped == 0

    def test_index_skip_counts_remaining_members_once(self):
        counters = ScanCounters()
        assert list(scan_text("[10, 20, 30]", parse_path("(2)"), counters=counters)) == [
            20
        ]
        assert counters.matched == 1
        # One leading member skipped element-wise, the tail in bulk.
        assert counters.skipped == 2

    def test_chunked_retry_does_not_double_count(self, tmp_path):
        # With a tiny chunk_size the scanner repeatedly hits the end of
        # the buffer mid-value, grows it, and rescans the same value.
        # Counters must reflect the logical scan, not the retries.
        text = '{"skip": [1, 2, 3], "take": {"x": "yyyyyyyy"}} {"take": 1}'
        target = tmp_path / "data.json"
        target.write_text(text, encoding="utf-8")
        path = parse_path('("take")')
        reference_counters = ScanCounters()
        expected = list(scan_text(text, path, counters=reference_counters))
        for chunk_size in (1, 3, 1 << 20):
            counters = ScanCounters()
            items = list(
                scan_file(str(target), path, counters=counters, chunk_size=chunk_size)
            )
            assert items == expected
            assert counters.matched == reference_counters.matched
            assert counters.skipped == reference_counters.skipped


# -- property: equivalence with the navigate reference -----------------------

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=12),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)

path_steps = st.one_of(
    st.builds(ValueByKey, st.sampled_from(["a", "b", "results", ""])),
    st.builds(ValueByIndex, st.integers(min_value=1, max_value=3)),
    st.just(KeysOrMembers()),
)
paths = st.builds(Path, st.lists(path_steps, max_size=4))


@given(json_values, paths)
@settings(max_examples=150)
def test_property_matches_navigate(value, path):
    text = json.dumps(value)
    assert list(scan_text(text, path)) == navigate(parse(text), path)


@given(st.lists(json_values, min_size=1, max_size=3), paths)
@settings(max_examples=60)
def test_property_multi_value_stream(values, path):
    text = " ".join(json.dumps(v) for v in values)
    assert list(scan_text(text, path)) == reference(text, path)
