"""Unit, equivalence and counter-parity tests for the on-demand tape.

The tape scanner's contract is *byte-identity* with the raw-text
skipper (:mod:`repro.jsonlib.textscan`): same items, same counters,
same errors (message and offset), same recorder events — on well-formed
input, hostile Unicode, duplicate keys, BOM-prefixed texts, and records
split across ``scan_file``'s sliding chunk buffer.
"""

import json

import pytest

from repro.errors import JsonSyntaxError
from repro.jsonlib import tape, textscan
from repro.jsonlib.parser import parse_many
from repro.jsonlib.path import Path, navigate, parse_path
from repro.jsonlib.tape import (
    _ATOM,
    _OPEN_OBJECT,
    _STRING,
    _SUBTREE,
    build_tape,
    build_value,
)
from repro.jsonlib.textscan import ScanCounters


def reference(text, path):
    out = []
    for value in parse_many(text):
        out.extend(navigate(value, path))
    return out


def both_scans(text, path, **kwargs):
    """(tape items, skipper items) with their counters for one text."""
    tape_counters, text_counters = ScanCounters(), ScanCounters()
    tape_items = list(
        tape.scan_text(text, path, counters=tape_counters, **kwargs)
    )
    text_items = list(
        textscan.scan_text(text, path, counters=text_counters, **kwargs)
    )
    return (tape_items, tape_counters), (text_items, text_counters)


def assert_parity(text, path_text, expect_tape=True):
    """Tape == skipper == parse-then-navigate, items and counters."""
    path = parse_path(path_text)
    (tape_items, tape_c), (text_items, text_c) = both_scans(text, path)
    assert tape_items == text_items == reference(text, path)
    assert tape_c.matched == text_c.matched
    assert tape_c.skipped == text_c.skipped
    if expect_tape:
        assert tape_c.tape_records > 0
    assert text_c.tape_records == 0


class TestBuildTape:
    def test_tokens_and_close_table(self):
        text = '{"a": [1, 2]}'
        record, end = build_tape(text, 0, 99)
        assert end == len(text)
        # { "a" : [ 1 , 2 ] }
        assert len(record) == 9
        assert record.kinds[0] == _OPEN_OBJECT
        assert record.kinds[1] == _STRING
        assert record.kinds[4] == _ATOM
        # Openers point at their matching closers; everything else -1.
        assert record.close[0] == 8
        assert record.close[3] == 7
        assert record.close[1] == -1

    def test_depth_pruning_records_subtree_spans(self):
        text = '{"a": {"x": [1, 2, 3]}, "b": [4, {"y": 5}]}'
        record, _ = build_tape(text, 0, 1)
        # Both nested containers open at depth 1 == limit: single spans,
        # interiors untokenized.
        assert record.kinds.count(_SUBTREE) == 2
        spans = [
            text[record.starts[i] : record.ends[i]]
            for i, kind in enumerate(record.kinds)
            if kind == _SUBTREE
        ]
        assert spans == ['{"x": [1, 2, 3]}', '[4, {"y": 5}]']

    def test_depth_zero_is_one_span(self):
        text = '{"deep": {"deeper": [1]}}'
        record, end = build_tape(text, 0, 0)
        assert end == len(text)
        assert list(record.kinds) == [_SUBTREE]
        value, nxt = build_value(text, record, 0)
        assert value == {"deep": {"deeper": [1]}}
        assert nxt == 1

    def test_gap_validation_rejects_stray_characters(self):
        with pytest.raises(JsonSyntaxError) as info:
            build_tape('{"a": 1 x }', 0, 99)
        assert "'x'" in str(info.value)

    def test_unbalanced_quote_fails_the_build(self):
        # An unclosed string would make the tokenizer pair quotes
        # differently from the skipper — the gap check must catch it.
        with pytest.raises(JsonSyntaxError):
            build_tape('{"a": "unclosed}', 0, 99)

    def test_unterminated_container(self):
        with pytest.raises(JsonSyntaxError) as info:
            build_tape('{"a": [1, 2]', 0, 99)
        assert "unterminated" in str(info.value)

    def test_mismatched_brackets(self):
        with pytest.raises(JsonSyntaxError):
            build_tape('{"a": 1]', 0, 99)


class TestEquivalence:
    @pytest.mark.parametrize(
        "text, path_text",
        [
            ('{"root": [{"results": [{"v": 1}, {"v": 2}]}]}',
             '("root")()("results")()'),
            ('{"root": [{"results": [{"v": 1}]}]} '
             '{"root": [{"results": [{"v": 2}, {"v": 3}]}]}',
             '("root")()("results")()("v")'),
            ('[5, {"a": 1}, "s", [2], {"a": 3}]', '()("a")'),
            ("[10, 20, 30]", "(2)"),
            ("[10]", "(9)"),
            ('{"a": 1, "b": 2}', "()"),
            ('{"skip": {"deep": [1, [2, {"x": 3}]]}, "take": true}',
             '("take")'),
            ('{"take": {"n": -1.5e2, "b": false, "s": "x", "nul": null}}',
             '("take")'),
            (' { "a" :\n [ 1 ,\t2 ] } ', '("a")()'),
            ("17", "()"),  # scalar record: skipper path, no tape
        ],
    )
    def test_items_and_counters_match_skipper(self, text, path_text):
        assert_parity(text, path_text, expect_tape=text.strip() != "17")

    def test_empty_containers(self):
        assert_parity('{"a": {}, "b": []}', '("b")()')
        assert_parity("[]", "()")
        assert_parity("{}", "()")


class TestDuplicateKeys:
    """Last occurrence wins, exactly like dict semantics — and the
    discarded earlier match must recount as skipped, like the skipper."""

    @pytest.mark.parametrize(
        "text, path_text",
        [
            ('{"a": 1, "a": 2}', '("a")'),
            ('{"a": {"k": 1}, "b": 9, "a": {"k": 2}}', '("a")("k")'),
            ('{"a": [1, 2], "a": [3]}', '("a")()'),
            ('{"a": 1, "b": 2, "a": 3}', "()"),  # keys dedup like dict.keys()
            ('{"a": {"x": 1, "x": 2}}', '("a")("x")'),
        ],
    )
    def test_last_wins_with_identical_counters(self, text, path_text):
        assert_parity(text, path_text)

    def test_lazy_navigator_buffers_only_final_occurrence(self):
        path = parse_path('("a")')
        items = list(tape.scan_text('{"a": 1, "a": 2, "a": 3}', path))
        assert items == [3]


class TestHostileUnicode:
    ASTRAL = '{"t": "\U0001f600 é́ ‮ reversed", "p": 1}'
    ESCAPES = (
        r'{"skip": "q \" brace } bracket ] \\ 😀",'
        r' "take": "é"}'
    )

    def test_astral_and_combining_characters(self):
        assert_parity(self.ASTRAL, '("t")')

    def test_escaped_quotes_braces_and_surrogate_pairs(self):
        assert_parity(self.ESCAPES, '("take")')

    def test_bom_prefixed_text(self):
        text = '{"v": [1, 2]}'
        path = parse_path('("v")()')
        assert list(tape.scan_text("\ufeff" + text, path)) == [1, 2]
        (tape_items, tape_c), (text_items, text_c) = both_scans(
            "\ufeff" + text, path
        )
        assert tape_items == text_items == [1, 2]
        assert (tape_c.matched, tape_c.skipped) == (
            text_c.matched, text_c.skipped,
        )

    def test_bom_file(self, tmp_path):
        target = tmp_path / "bom.json"
        target.write_bytes(
            b"\xef\xbb\xbf" + '{"v": ["é", 2]}'.encode("utf-8")
        )
        path = parse_path('("v")()')
        assert list(tape.scan_file(str(target), path)) == ["é", 2]

    def test_unicode_in_skipped_subtrees(self):
        text = '{"skip": {"deep": ["\U0001f600", "‮"]}, "take": 1}'
        assert_parity(text, '("take")')


class TestChunkBoundaries:
    """scan_file slides a bounded buffer; records split across chunk
    boundaries (mid-string, mid-escape, mid-number) must behave exactly
    like scan_text — and exactly like the skipper at the same chunk size."""

    TEXT = "\n".join(
        json.dumps(
            {"v": {"k": [i, i + 0.5, f's"{i}', True, None]}, "pad": "y" * 23}
        )
        for i in range(7)
    )
    PATH = parse_path('("v")("k")()')

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 29, 64, 1 << 16])
    def test_chunked_equals_text_and_skipper(self, chunk_size, tmp_path):
        target = tmp_path / "data.json"
        target.write_text(self.TEXT, encoding="utf-8")
        tape_c, text_c = ScanCounters(), ScanCounters()
        tape_items = list(
            tape.scan_file(
                str(target), self.PATH, chunk_size=chunk_size,
                counters=tape_c,
            )
        )
        text_items = list(
            textscan.scan_file(
                str(target), self.PATH, chunk_size=chunk_size,
                counters=text_c,
            )
        )
        assert tape_items == text_items
        assert tape_items == list(tape.scan_text(self.TEXT, self.PATH))
        assert (tape_c.matched, tape_c.skipped) == (
            text_c.matched, text_c.skipped,
        )

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_skip_record_events_identical_across_scanners(
        self, chunk_size, tmp_path
    ):
        lines = self.TEXT.split("\n")
        lines.insert(3, '{"v": {"k": [1, ]}}')  # malformed mid-file
        text = "\n".join(lines)
        target = tmp_path / "dirty.json"
        target.write_text(text, encoding="utf-8")
        results = {}
        for name, scanner in (("tape", tape), ("text", textscan)):
            events = []
            counters = ScanCounters()
            items = list(
                scanner.scan_file(
                    str(target), self.PATH, on_malformed="skip_record",
                    recorder=lambda o, m: events.append((o, m)),
                    chunk_size=chunk_size, counters=counters,
                )
            )
            results[name] = (items, events, counters.matched,
                             counters.skipped)
        assert results["tape"] == results["text"]
        assert len(results["tape"][1]) == 1  # exactly the injected record


class TestFallbackIdentity:
    """Malformed records must raise exactly what the skipper raises —
    message, offset, and the partial counters left behind."""

    @pytest.mark.parametrize(
        "text",
        [
            "{",
            "[1,",
            '{"a" 1}',
            '{"a": }',
            '"unterminated',
            "@",
            '{"a": [1,]}',
            '{"a": 01}',
            '{"v": 1} {"v": ]}',  # second record malformed: partial counts
        ],
    )
    def test_same_error_and_partial_counters(self, text):
        path = parse_path('("a")')
        outcomes = {}
        for name, scanner in (("tape", tape), ("text", textscan)):
            counters = ScanCounters()
            try:
                items = list(
                    scanner.scan_text(text, path, counters=counters)
                )
                outcome = ("ok", items)
            except JsonSyntaxError as error:
                outcome = (
                    "err", str(error), getattr(error, "offset", None)
                )
            outcomes[name] = (
                outcome, counters.matched, counters.skipped,
            )
        assert outcomes["tape"] == outcomes["text"]

    @pytest.mark.parametrize(
        "text, path_text",
        [
            # The bulk json.loads paths must not quietly accept the
            # stdlib's NaN/Infinity extensions (json.dumps emits NaN
            # for float('nan') by default, so these occur in practice):
            ('{"a": [1, NaN]}', '("a")'),  # _SUBTREE span materialize
            ('{"a": [[1, -Infinity]]}', '("a")()'),  # trailing * bulk decode
            ('{"a": Infinity}', '("a")'),  # atom position: tokenizer gap
            ("[NaN]", "()"),
        ],
    )
    def test_nonstandard_constants_rejected_like_skipper(
        self, text, path_text
    ):
        path = parse_path(path_text)
        outcomes = {}
        for name, scanner in (("tape", tape), ("text", textscan)):
            counters = ScanCounters()
            try:
                items = list(
                    scanner.scan_text(text, path, counters=counters)
                )
                outcome = ("ok", items)
            except JsonSyntaxError as error:
                outcome = (
                    "err", str(error), getattr(error, "offset", None)
                )
            outcomes[name] = (
                outcome, counters.matched, counters.skipped,
            )
        assert outcomes["tape"] == outcomes["text"]
        assert outcomes["tape"][0][0] == "err"

    def test_skipped_regions_stay_lenient(self):
        # The skipper never validates skipped regions; the pruned tape
        # jumps subtrees with the same bracket hop, so "[1 2]" inside a
        # never-walked subtree passes both (the full parser rejects it,
        # so no parse-then-navigate reference here).
        text = '{"skip": [1 2], "a": 3}'
        path = parse_path('("a")')
        (tape_items, tape_c), (text_items, text_c) = both_scans(text, path)
        assert tape_items == text_items == [3]
        assert (tape_c.matched, tape_c.skipped) == (
            text_c.matched, text_c.skipped,
        )
