"""Duplicate object keys: every scanner must agree with the parser.

RFC 8259 leaves duplicate-key behaviour to implementations; this one
follows the common last-occurrence-wins convention (``ItemBuilder``
assigns ``container[key] = value`` per occurrence, so the last write
survives).  The projecting scanners — the event projector and the
raw-text skipper — must emit the *same winner* as parsing the whole
document and navigating, or DATASCAN projection silently changes query
results on such documents.
"""

import pytest

from repro.jsonlib.parser import parse, parse_many
from repro.jsonlib.path import navigate, parse_path
from repro.jsonlib.projection import project_file, project_text
from repro.jsonlib.textscan import ScanCounters, scan_file, scan_text

DUP = '{"a": 1, "b": {"x": 10}, "a": 2, "c": null, "a": 3}'
NESTED_DUP = '{"r": {"v": "first", "v": "second"}, "r": {"v": "third", "v": "last"}}'
DUP_ARRAY = '{"results": [1], "results": [2, 3]}'


def reference(text, path_text):
    path = parse_path(path_text)
    out = []
    for value in parse_many(text):
        out.extend(navigate(value, path))
    return out


class TestParserReference:
    def test_last_occurrence_wins(self):
        assert parse(DUP) == {"a": 3, "b": {"x": 10}, "c": None}

    def test_keys_deduplicated_first_insertion_order(self):
        assert list(parse(DUP).keys()) == ["a", "b", "c"]


class TestEventProjector:
    @pytest.mark.parametrize(
        "text,path_text",
        [
            (DUP, '("a")'),
            (DUP, "()"),
            (NESTED_DUP, '("r")("v")'),
            (DUP_ARRAY, '("results")()'),
        ],
    )
    def test_matches_parse_then_navigate(self, text, path_text):
        assert list(project_text(text, parse_path(path_text))) == reference(
            text, path_text
        )

    def test_duplicate_key_yields_last_value_once(self):
        assert list(project_text(DUP, parse_path('("a")'))) == [3]

    def test_keys_or_members_deduplicates(self):
        assert list(project_text(DUP, parse_path("()"))) == ["a", "b", "c"]


class TestRawTextScanner:
    @pytest.mark.parametrize(
        "text,path_text",
        [
            (DUP, '("a")'),
            (DUP, "()"),
            (NESTED_DUP, '("r")("v")'),
            (DUP_ARRAY, '("results")()'),
        ],
    )
    def test_matches_parse_then_navigate(self, text, path_text):
        assert list(scan_text(text, parse_path(path_text))) == reference(
            text, path_text
        )

    def test_duplicate_key_yields_last_value_once(self):
        assert list(scan_text(DUP, parse_path('("a")'))) == [3]

    def test_keys_or_members_deduplicates(self):
        assert list(scan_text(DUP, parse_path("()"))) == ["a", "b", "c"]

    def test_counters_count_discarded_occurrences_as_skipped(self):
        counters = ScanCounters()
        assert list(scan_text(DUP, parse_path('("a")'), counters=counters)) == [3]
        # One value materialized; two discarded "a" occurrences plus the
        # non-matching "b" and "c" values were skipped.
        assert counters.matched == 1
        assert counters.skipped == 4


class TestChunkBoundaries:
    """A duplicate key split across sliding-buffer refills must not
    change the winner: the grow-and-retry path re-scans whole top-level
    values, so every chunk size agrees with the whole-text scan."""

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 7, 64])
    def test_scan_file_any_chunk_size(self, tmp_path, chunk_size):
        target = tmp_path / "dup.json"
        target.write_text(DUP + "\n" + NESTED_DUP, encoding="utf-8")
        expected = reference(DUP, '("a")') + reference(NESTED_DUP, '("a")')
        got = list(scan_file(str(target), parse_path('("a")'), chunk_size=chunk_size))
        assert got == expected == [3]

    @pytest.mark.parametrize("chunk_size", [1, 3, 64])
    def test_project_file_any_chunk_size(self, tmp_path, chunk_size):
        target = tmp_path / "dup.json"
        target.write_text(NESTED_DUP, encoding="utf-8")
        got = list(
            project_file(
                str(target), parse_path('("r")("v")'), chunk_size=chunk_size
            )
        )
        assert got == reference(NESTED_DUP, '("r")("v")') == ["last"]
