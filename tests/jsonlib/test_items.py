"""Unit tests for the item model: predicates, sizing, equality, building."""

import datetime

import pytest

from repro.errors import ItemTypeError, JsonSyntaxError
from repro.jsonlib.events import (
    END_ARRAY,
    END_OBJECT,
    START_ARRAY,
    START_OBJECT,
    atomic_event,
    key_event,
)
from repro.jsonlib.items import (
    ItemBuilder,
    build_items,
    canonical_atomic,
    canonical_item,
    canonical_key,
    deep_equals,
    is_array,
    is_atomic,
    is_object,
    item_type_name,
    sizeof_item,
    sizeof_sequence,
)


class TestPredicates:
    def test_object(self):
        assert is_object({}) and not is_array({}) and not is_atomic({})

    def test_array(self):
        assert is_array([]) and not is_object([]) and not is_atomic([])

    @pytest.mark.parametrize("value", ["s", 1, 1.5, True, None])
    def test_atomics(self, value):
        assert is_atomic(value)
        assert not is_object(value)
        assert not is_array(value)

    def test_datetime_is_atomic(self):
        assert is_atomic(datetime.datetime(2013, 12, 25))


class TestTypeNames:
    @pytest.mark.parametrize(
        "value,name",
        [
            ({}, "object"),
            ([], "array"),
            ("x", "string"),
            (1, "number"),
            (1.5, "number"),
            (True, "boolean"),
            (None, "null"),
            (datetime.datetime(2000, 1, 1), "dateTime"),
        ],
    )
    def test_names(self, value, name):
        assert item_type_name(value) == name

    def test_non_item_rejected(self):
        with pytest.raises(ItemTypeError):
            item_type_name(object())


class TestSizeof:
    def test_bigger_structures_cost_more(self):
        assert sizeof_item({"a": 1, "b": 2}) > sizeof_item({"a": 1})
        assert sizeof_item([1, 2, 3]) > sizeof_item([1])
        assert sizeof_item("longer string") > sizeof_item("s")

    def test_nested_size_includes_children(self):
        inner = {"k": [1, 2, 3]}
        assert sizeof_item({"outer": inner}) > sizeof_item(inner)

    def test_deep_nesting_does_not_recurse(self):
        # 100k-deep nesting would overflow a recursive implementation.
        deep = []
        for _ in range(100_000):
            deep = [deep]
        assert sizeof_item(deep) > 100_000

    def test_sequence_size(self):
        items = [{"a": 1}, {"b": 2}]
        assert sizeof_sequence(items) > sizeof_item(items[0]) + sizeof_item(items[1])

    def test_non_item_rejected(self):
        with pytest.raises(ItemTypeError):
            sizeof_item({"a": object()})


class TestDeepEquals:
    def test_scalars(self):
        assert deep_equals(1, 1)
        assert deep_equals(1, 1.0)
        assert not deep_equals(1, 2)

    def test_bool_is_not_number(self):
        assert not deep_equals(True, 1)
        assert not deep_equals(0, False)
        assert deep_equals(True, True)

    def test_containers(self):
        assert deep_equals({"a": [1, {"b": None}]}, {"a": [1, {"b": None}]})
        assert not deep_equals({"a": 1}, {"a": 1, "b": 2})
        assert not deep_equals([1, 2], [2, 1])

    def test_object_key_order_irrelevant(self):
        assert deep_equals({"a": 1, "b": 2}, {"b": 2, "a": 1})

    def test_cross_type(self):
        assert not deep_equals([], {})
        assert not deep_equals("1", 1)
        assert not deep_equals(None, 0)


class TestCanonicalKeys:
    """One canonical key per XQuery-equal value class.

    distinct-values, group-by, and join bucketing all key on these, so
    the invariants here are the invariants of every keyed operator.
    """

    def test_int_and_float_collapse(self):
        assert canonical_atomic(1) == canonical_atomic(1.0)
        assert canonical_atomic(-3) == canonical_atomic(-3.0)

    def test_bool_stays_distinct_from_number(self):
        assert canonical_atomic(True) != canonical_atomic(1)
        assert canonical_atomic(False) != canonical_atomic(0)

    def test_zero_spellings_collapse(self):
        assert canonical_atomic(0) == canonical_atomic(-0.0) == canonical_atomic(0.0)

    def test_nan_is_self_equal(self):
        nan = float("nan")
        assert canonical_atomic(nan) == canonical_atomic(float("nan"))
        assert canonical_atomic(nan) != canonical_atomic(0.0)

    def test_string_never_collides_with_number(self):
        assert canonical_atomic("1") != canonical_atomic(1)
        assert canonical_atomic("true") != canonical_atomic(True)

    def test_huge_int_not_conflated_by_float_rounding(self):
        # 2**53 and 2**53 + 1 round to the same float; the canonical
        # key must keep exact ints exact.
        assert canonical_atomic(2**53) != canonical_atomic(2**53 + 1)
        assert canonical_atomic(2**53) == canonical_atomic(float(2**53))

    def test_canonical_item_handles_containers(self):
        assert canonical_item({"a": [1]}) == canonical_item({"a": [1.0]})
        assert canonical_item({"a": 1}) != canonical_item({"a": 2})

    def test_canonical_key_is_hashable_and_positional(self):
        assert isinstance(hash(canonical_key([1, "x"])), int)
        assert canonical_key([1, 2]) != canonical_key([2, 1])
        assert canonical_key([1]) == canonical_key([1.0])


class TestItemBuilder:
    def test_build_scalar(self):
        builder = ItemBuilder()
        builder.push(atomic_event(7))
        assert builder.take_finished() == [7]

    def test_build_object(self):
        events = [START_OBJECT, key_event("a"), atomic_event(1), END_OBJECT]
        assert list(build_items(events)) == [{"a": 1}]

    def test_build_nested(self):
        events = [
            START_ARRAY,
            START_OBJECT,
            key_event("xs"),
            START_ARRAY,
            atomic_event(1),
            atomic_event(2),
            END_ARRAY,
            END_OBJECT,
            END_ARRAY,
        ]
        assert list(build_items(events)) == [[{"xs": [1, 2]}]]

    def test_multiple_top_level(self):
        events = [atomic_event(1), atomic_event("two")]
        assert list(build_items(events)) == [1, "two"]

    def test_depth_tracking(self):
        builder = ItemBuilder()
        builder.push(START_ARRAY)
        builder.push(START_OBJECT)
        assert builder.depth == 2
        builder.push(END_OBJECT)
        builder.push(END_ARRAY)
        assert builder.depth == 0

    def test_key_outside_object_rejected(self):
        builder = ItemBuilder()
        with pytest.raises(JsonSyntaxError):
            builder.push(key_event("k"))

    def test_unbalanced_end_rejected(self):
        builder = ItemBuilder()
        with pytest.raises(JsonSyntaxError):
            builder.push(END_ARRAY)

    def test_mismatched_end_rejected(self):
        builder = ItemBuilder()
        builder.push(START_OBJECT)
        with pytest.raises(JsonSyntaxError):
            builder.push(END_ARRAY)

    def test_truncated_stream_rejected(self):
        with pytest.raises(JsonSyntaxError):
            list(build_items([START_ARRAY, atomic_event(1)]))

    def test_value_without_key_rejected(self):
        builder = ItemBuilder()
        builder.push(START_OBJECT)
        with pytest.raises(JsonSyntaxError):
            builder.push(atomic_event(1))
