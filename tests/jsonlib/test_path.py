"""Unit tests for navigation paths."""

import pytest

from repro.errors import JsonError
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
    navigate,
    navigate_sequence,
    parse_path,
)

BOOKSTORE = {
    "bookstore": {
        "book": [
            {"title": "Everyday Italian", "author": "Giada", "price": 30.0},
            {"title": "Harry Potter", "author": "Rowling", "price": 29.99},
        ]
    }
}


class TestParsePath:
    def test_empty(self):
        assert parse_path("") == Path()

    def test_value_by_key(self):
        assert parse_path('("bookstore")') == Path([ValueByKey("bookstore")])

    def test_keys_or_members(self):
        assert parse_path("()") == Path([KeysOrMembers()])

    def test_value_by_index(self):
        assert parse_path("(2)") == Path([ValueByIndex(2)])

    def test_mixed(self):
        path = parse_path('("root")()("results")()')
        assert path == Path(
            [
                ValueByKey("root"),
                KeysOrMembers(),
                ValueByKey("results"),
                KeysOrMembers(),
            ]
        )

    def test_whitespace_tolerated(self):
        assert parse_path('( "a" ) ( )') == Path([ValueByKey("a"), KeysOrMembers()])

    def test_invalid_rejected(self):
        with pytest.raises(JsonError):
            parse_path("(unquoted)")

    def test_roundtrip_str(self):
        path = parse_path('("a")(3)()')
        assert parse_path(str(path)) == path


class TestNavigate:
    def test_value_by_key(self):
        assert navigate(BOOKSTORE, parse_path('("bookstore")')) == [
            BOOKSTORE["bookstore"]
        ]

    def test_missing_key_is_empty(self):
        assert navigate(BOOKSTORE, parse_path('("nope")')) == []

    def test_chained_values(self):
        path = parse_path('("bookstore")("book")')
        assert navigate(BOOKSTORE, path) == [BOOKSTORE["bookstore"]["book"]]

    def test_keys_or_members_on_array(self):
        path = parse_path('("bookstore")("book")()')
        books = navigate(BOOKSTORE, path)
        assert [b["title"] for b in books] == ["Everyday Italian", "Harry Potter"]

    def test_keys_or_members_on_object(self):
        assert navigate({"a": 1, "b": 2}, parse_path("()")) == ["a", "b"]

    def test_value_by_index_is_one_based(self):
        assert navigate([10, 20, 30], parse_path("(1)")) == [10]
        assert navigate([10, 20, 30], parse_path("(3)")) == [30]

    def test_out_of_range_index_is_empty(self):
        assert navigate([10], parse_path("(2)")) == []
        assert navigate([10], parse_path("(0)")) == []

    def test_wrong_type_yields_empty(self):
        assert navigate(42, parse_path('("k")')) == []
        assert navigate("s", parse_path("()")) == []
        assert navigate({"a": 1}, parse_path("(1)")) == []

    def test_fanout_across_members(self):
        path = parse_path('("bookstore")("book")()("author")')
        assert navigate(BOOKSTORE, path) == ["Giada", "Rowling"]

    def test_empty_path_is_identity(self):
        assert navigate(BOOKSTORE, Path()) == [BOOKSTORE]

    def test_navigate_sequence_concatenates(self):
        items = [{"x": 1}, {"y": 2}, {"x": 3}]
        assert navigate_sequence(items, parse_path('("x")')) == [1, 3]


class TestPathObject:
    def test_extended_is_persistent(self):
        base = parse_path('("a")')
        extended = base.extended(KeysOrMembers())
        assert len(base) == 1
        assert len(extended) == 2

    def test_hashable(self):
        assert hash(parse_path('("a")()')) == hash(parse_path('("a")()'))

    def test_iteration_and_indexing(self):
        path = parse_path('("a")(2)')
        assert list(path) == [ValueByKey("a"), ValueByIndex(2)]
        assert path[1] == ValueByIndex(2)

    def test_str_forms(self):
        assert str(parse_path('("a")(2)()')) == '("a")(2)()'
