"""Unit tests for JSON serialization."""

import datetime
import io
import json
import math

import pytest

from repro.errors import ItemTypeError
from repro.jsonlib.parser import parse
from repro.jsonlib.serializer import dump, dumps


class TestScalars:
    @pytest.mark.parametrize(
        "item,text",
        [
            (1, "1"),
            (-7, "-7"),
            (1.5, "1.5"),
            (True, "true"),
            (False, "false"),
            (None, "null"),
            ("hi", '"hi"'),
            ("", '""'),
        ],
    )
    def test_compact(self, item, text):
        assert dumps(item) == text

    def test_string_escapes(self):
        assert dumps('a"b\\c\n') == '"a\\"b\\\\c\\n"'

    def test_control_characters_escaped(self):
        assert dumps("\x01") == '"\\u0001"'

    def test_datetime_serialized_as_iso_string(self):
        dt = datetime.datetime(2013, 12, 25, 0, 0)
        assert dumps(dt) == '"2013-12-25T00:00:00"'

    def test_nan_rejected(self):
        with pytest.raises(ItemTypeError):
            dumps(math.nan)

    def test_infinity_rejected(self):
        with pytest.raises(ItemTypeError):
            dumps(math.inf)

    def test_non_item_rejected(self):
        with pytest.raises(ItemTypeError):
            dumps({"k": object()})


class TestContainers:
    def test_empty(self):
        assert dumps({}) == "{}"
        assert dumps([]) == "[]"

    def test_object_compact(self):
        assert dumps({"a": 1, "b": [2, 3]}) == '{"a": 1, "b": [2, 3]}'

    def test_indented(self):
        text = dumps({"a": [1, 2]}, indent=2)
        assert text == '{\n  "a": [\n    1,\n    2\n  ]\n}'

    def test_key_escaping(self):
        assert dumps({'a"b': 1}) == '{"a\\"b": 1}'


class TestRoundTrip:
    @pytest.mark.parametrize(
        "item",
        [
            {"a": [1, 2.5, True, None, "s"], "b": {"c": []}},
            [[], {}, [{}], {"": [0]}],
            "unicode: café \U0001f600",
            -1.25e-10,
        ],
    )
    def test_parse_dumps_roundtrip(self, item):
        assert parse(dumps(item)) == item

    def test_stdlib_can_read_our_output(self):
        item = {"k": [1, "two", {"three": 3.0}], "uni": "é水"}
        assert json.loads(dumps(item)) == item

    def test_indent_roundtrip(self):
        item = {"a": [1, {"b": None}]}
        assert parse(dumps(item, indent=4)) == item


class TestDump:
    def test_dump_to_handle(self):
        buffer = io.StringIO()
        dump([1, 2], buffer)
        assert buffer.getvalue() == "[1, 2]"
