"""Unit tests for the incremental streaming JSON parser."""

import json

import pytest

from repro.errors import JsonIncompleteError, JsonSyntaxError
from repro.jsonlib.events import EventKind
from repro.jsonlib.parser import (
    StreamingJsonParser,
    iter_events,
    parse,
    parse_many,
)


def events_of(text):
    return list(iter_events(text))


class TestScalars:
    def test_integer(self):
        assert parse("42") == 42

    def test_negative_integer(self):
        assert parse("-7") == -7

    def test_zero(self):
        assert parse("0") == 0

    def test_float(self):
        assert parse("3.25") == 3.25

    def test_exponent(self):
        assert parse("1e3") == 1000.0

    def test_negative_exponent(self):
        assert parse("25E-2") == 0.25

    def test_int_stays_int(self):
        assert isinstance(parse("5"), int)

    def test_float_stays_float(self):
        assert isinstance(parse("5.0"), float)

    def test_true(self):
        assert parse("true") is True

    def test_false(self):
        assert parse("false") is False

    def test_null(self):
        assert parse("null") is None

    def test_simple_string(self):
        assert parse('"hello"') == "hello"

    def test_empty_string(self):
        assert parse('""') == ""

    def test_escapes(self):
        assert parse(r'"a\"b\\c\/d\b\f\n\r\t"') == 'a"b\\c/d\b\f\n\r\t'

    def test_unicode_escape(self):
        assert parse(r'"café"') == "café"

    def test_surrogate_pair(self):
        assert parse(r'"😀"') == "\U0001f600"

    def test_whitespace_around_value(self):
        assert parse("  \n\t 1 \r\n") == 1


class TestContainers:
    def test_empty_object(self):
        assert parse("{}") == {}

    def test_empty_array(self):
        assert parse("[]") == []

    def test_nested(self):
        assert parse('[{"a": [1, {"b": []}]}]') == [{"a": [1, {"b": []}]}]

    def test_object_preserves_all_pairs(self):
        assert parse('{"x": 1, "y": 2, "z": 3}') == {"x": 1, "y": 2, "z": 3}

    def test_array_order(self):
        assert parse("[3, 1, 2]") == [3, 1, 2]

    def test_deeply_nested_array(self):
        depth = 500
        text = "[" * depth + "]" * depth
        value = parse(text)
        for _ in range(depth - 1):
            assert isinstance(value, list) and len(value) == 1
            value = value[0]
        assert value == []

    def test_max_depth_guard(self):
        parser = StreamingJsonParser(max_depth=10)
        with pytest.raises(JsonSyntaxError):
            parser.feed("[" * 11)


class TestEventStream:
    def test_event_kinds(self):
        kinds = [e.kind for e in events_of('{"a": [1]}')]
        assert kinds == [
            EventKind.START_OBJECT,
            EventKind.KEY,
            EventKind.START_ARRAY,
            EventKind.ATOMIC,
            EventKind.END_ARRAY,
            EventKind.END_OBJECT,
        ]

    def test_key_values(self):
        keys = [e.value for e in events_of('{"a": 1, "b": 2}') if e.kind is EventKind.KEY]
        assert keys == ["a", "b"]


class TestIncrementalFeeding:
    def test_char_by_char_equals_single_feed(self):
        text = '{"n": [-0.5, 1e-2, 123], "s": "q\\"t", "b": false, "e": []}'
        single = events_of(text)
        parser = StreamingJsonParser()
        chunked = []
        for ch in text:
            chunked.extend(parser.feed(ch))
        chunked.extend(parser.finish())
        assert chunked == single

    def test_number_split_at_exponent(self):
        parser = StreamingJsonParser()
        events = parser.feed("[1.5e")
        events += parser.feed("3]")
        events += parser.finish()
        values = [e.value for e in events if e.kind is EventKind.ATOMIC]
        assert values == [1500.0]

    def test_literal_split(self):
        parser = StreamingJsonParser()
        events = parser.feed("[fal")
        events += parser.feed("se]")
        events += parser.finish()
        values = [e.value for e in events if e.kind is EventKind.ATOMIC]
        assert values == [False]

    def test_string_split_inside_escape(self):
        parser = StreamingJsonParser()
        events = parser.feed('["ab\\')
        events += parser.feed('n cd"]')
        events += parser.finish()
        values = [e.value for e in events if e.kind is EventKind.ATOMIC]
        assert values == ["ab\n cd"]

    def test_lone_minus_then_digits(self):
        parser = StreamingJsonParser()
        events = parser.feed("[-")
        events += parser.feed("12]")
        events += parser.finish()
        values = [e.value for e in events if e.kind is EventKind.ATOMIC]
        assert values == [-12]

    def test_feed_after_finish_rejected(self):
        parser = StreamingJsonParser()
        parser.feed("1 ")
        parser.finish()
        with pytest.raises(JsonSyntaxError):
            parser.feed("2")


class TestMultipleTopLevelValues:
    def test_parse_many(self):
        assert parse_many('1 "two" [3] {"four": 4}') == [1, "two", [3], {"four": 4}]

    def test_multiple_values_rejected_when_strict(self):
        parser = StreamingJsonParser(allow_multiple_values=False)
        with pytest.raises(JsonSyntaxError):
            parser.feed("1 2")
            parser.finish()

    def test_parse_rejects_trailing_value(self):
        with pytest.raises(JsonSyntaxError):
            parse("1 2")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "{",
            "[",
            '{"a"',
            '{"a":',
            '{"a": 1',
            "[1,",
            '"abc',
            "tru",
            "-",
            "12.",
        ],
    )
    def test_incomplete_inputs(self, text):
        parser = StreamingJsonParser()
        with pytest.raises(JsonSyntaxError):
            parser.feed(text)
            parser.finish()

    @pytest.mark.parametrize(
        "text",
        [
            "{]",
            "[}",
            "[1 2]",
            '{"a" 1}',
            '{"a": 1,}',
            "[1,]",
            "{1: 2}",
            "nul1",
            "+1",
            '"a\tb"',  # raw control character inside a string
            "[1]]",
        ],
    )
    def test_invalid_inputs(self, text):
        parser = StreamingJsonParser()
        with pytest.raises(JsonSyntaxError):
            parser.feed(text)
            parser.finish()

    def test_leading_zero_number_splits_into_two_values(self):
        # In multi-value mode "01" reads as the two values 0 and 1 (like
        # concatenated-JSON readers); strict mode rejects the second one.
        assert parse_many("01") == [0, 1]
        with pytest.raises(JsonSyntaxError):
            parse("01")

    def test_incomplete_error_is_distinguished(self):
        parser = StreamingJsonParser()
        parser.feed('{"a": ')
        with pytest.raises(JsonIncompleteError):
            parser.finish()

    def test_error_offset_spans_chunks(self):
        parser = StreamingJsonParser()
        parser.feed("[1, 2, ")
        with pytest.raises(JsonSyntaxError) as excinfo:
            parser.feed("x]")
        assert excinfo.value.offset == 7

    def test_stdlib_rejects_what_we_reject(self):
        # Sanity: our invalid inputs are also invalid for the stdlib.
        for text in ["{]", "[1,]", "+1", "01"]:
            with pytest.raises(json.JSONDecodeError):
                json.loads(text)


class TestStdlibAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "[]",
            "{}",
            '{"a": 1, "b": [true, false, null], "c": {"d": "e"}}',
            "[1.5, -2e10, 0.001, 1e-20]",
            '"\\u0041\\u00df\\u6c34\\ud83c\\udf09"',
            '[{"deep": [[[["x"]]]]}]',
        ],
    )
    def test_agrees_with_json_module(self, text):
        assert parse(text) == json.loads(text)
