"""Unit tests for the synthetic sensor data generator."""

import random

from repro.data.generator import (
    SensorDataConfig,
    generate_bookstore_document,
    generate_file_text,
    generate_record,
    write_sensor_collection,
)
from repro.jsonlib.parser import parse, parse_many


class TestRecordGeneration:
    def config(self, **kwargs):
        return SensorDataConfig(seed=1, **kwargs)

    def test_schema(self):
        record = generate_record(random.Random(1), self.config())
        assert set(record) == {"metadata", "results"}
        assert record["metadata"]["count"] == len(record["results"])
        measurement = record["results"][0]
        assert set(measurement) == {"date", "dataType", "station", "value"}

    def test_measurements_per_array(self):
        for count in (1, 7, 30):
            record = generate_record(
                random.Random(1), self.config(measurements_per_array=count)
            )
            assert len(record["results"]) == count

    def test_single_station_per_record(self):
        record = generate_record(random.Random(2), self.config())
        stations = {m["station"] for m in record["results"]}
        assert len(stations) == 1

    def test_all_types_per_day(self):
        config = self.config(measurements_per_array=8)
        record = generate_record(random.Random(3), config)
        first_day = record["results"][:4]
        assert [m["dataType"] for m in first_day] == list(config.data_types)
        dates = {m["date"] for m in first_day}
        assert len(dates) == 1  # all four types share the day

    def test_tmin_tmax_join_partners_exist(self):
        config = self.config(measurements_per_array=30)
        record = generate_record(random.Random(4), config)
        tmin_keys = {
            (m["station"], m["date"])
            for m in record["results"]
            if m["dataType"] == "TMIN"
        }
        tmax_keys = {
            (m["station"], m["date"])
            for m in record["results"]
            if m["dataType"] == "TMAX"
        }
        assert tmin_keys & tmax_keys

    def test_date_format(self):
        record = generate_record(random.Random(5), self.config())
        date = record["results"][0]["date"]
        assert len(date) == 14 and date[8] == "T"

    def test_determinism(self):
        a = generate_record(random.Random(7), self.config())
        b = generate_record(random.Random(7), self.config())
        assert a == b


class TestFileGeneration:
    def test_wrapped_structure(self):
        text = generate_file_text(
            random.Random(1), SensorDataConfig(target_file_bytes=4000)
        )
        value = parse(text)
        assert isinstance(value["root"], list)
        assert len(text) >= 4000

    def test_unwrapped_structure(self):
        text = generate_file_text(
            random.Random(1),
            SensorDataConfig(target_file_bytes=4000),
            wrapped=False,
        )
        values = parse_many(text)
        assert len(values) > 1
        assert all("results" in v for v in values)

    def test_with_measurements_helper(self):
        config = SensorDataConfig().with_measurements(7)
        assert config.measurements_per_array == 7


class TestCollectionWriting:
    def test_layout_and_sizes(self, tmp_path):
        directory = write_sensor_collection(
            str(tmp_path),
            "sensors",
            partitions=3,
            bytes_per_partition=10_000,
            config=SensorDataConfig(target_file_bytes=3_000),
        )
        from repro.data.catalog import CollectionCatalog

        catalog = CollectionCatalog(str(tmp_path))
        assert catalog.partition_count("/sensors") == 3
        for partition in range(3):
            assert catalog.total_bytes("/sensors", partition) >= 10_000
        assert directory.endswith("sensors")

    def test_partitions_differ(self, tmp_path):
        write_sensor_collection(
            str(tmp_path), "sensors", partitions=2, bytes_per_partition=5_000,
            config=SensorDataConfig(target_file_bytes=2_000),
        )
        from repro.data.catalog import CollectionCatalog

        catalog = CollectionCatalog(str(tmp_path))
        a = catalog.read_collection("/sensors", 0)
        b = catalog.read_collection("/sensors", 1)
        assert a != b

    def test_deterministic_across_runs(self, tmp_path):
        config = SensorDataConfig(seed=33, target_file_bytes=2_000)
        write_sensor_collection(
            str(tmp_path / "a"), "s", 1, 4_000, config=config
        )
        write_sensor_collection(
            str(tmp_path / "b"), "s", 1, 4_000, config=config
        )
        from repro.data.catalog import CollectionCatalog

        a = CollectionCatalog(str(tmp_path / "a")).read_collection("/s")
        b = CollectionCatalog(str(tmp_path / "b")).read_collection("/s")
        assert a == b


class TestBookstore:
    def test_shape_matches_listing_1(self):
        doc = generate_bookstore_document()
        books = doc["bookstore"]["book"]
        assert len(books) == 4
        assert books[0]["title"] == "Everyday Italian"
