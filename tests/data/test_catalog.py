"""Unit tests for collection catalogs."""

import pytest

from repro.errors import ReproError
from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.jsonlib.path import Path, parse_path


@pytest.fixture
def disk_catalog(tmp_path):
    base = tmp_path / "data"
    for collection, partitions in (("alpha", 2), ("beta", 1)):
        for partition in range(partitions):
            directory = base / collection / f"partition{partition}"
            directory.mkdir(parents=True)
            for index in range(2):
                (directory / f"f{index}.json").write_text(
                    f'{{"p": {partition}, "i": {index}}}', encoding="utf-8"
                )
    return CollectionCatalog(str(base))


class TestDiscovery:
    def test_discovers_collections(self, disk_catalog):
        assert disk_catalog.partition_count("/alpha") == 2
        assert disk_catalog.partition_count("/beta") == 1

    def test_name_normalization(self, disk_catalog):
        assert disk_catalog.partition_count("alpha") == 2
        assert disk_catalog.partition_count("/alpha/") == 2

    def test_unknown_collection(self, disk_catalog):
        with pytest.raises(ReproError):
            disk_catalog.partition_count("/gamma")

    def test_flat_directory_is_one_partition(self, tmp_path):
        flat = tmp_path / "flat"
        flat.mkdir()
        (flat / "a.json").write_text("1", encoding="utf-8")
        catalog = CollectionCatalog()
        catalog.register_directory("/flat", str(flat))
        assert catalog.partition_count("/flat") == 1

    def test_non_json_files_ignored(self, tmp_path):
        directory = tmp_path / "c" / "partition0"
        directory.mkdir(parents=True)
        (directory / "data.json").write_text("1", encoding="utf-8")
        (directory / "README.txt").write_text("not data", encoding="utf-8")
        catalog = CollectionCatalog(str(tmp_path))
        assert len(catalog.files("/c")) == 1


class TestReading:
    def test_read_collection_all(self, disk_catalog):
        items = disk_catalog.read_collection("/alpha")
        assert len(items) == 4

    def test_read_collection_partition(self, disk_catalog):
        items = disk_catalog.read_collection("/alpha", partition=1)
        assert all(item["p"] == 1 for item in items)

    def test_scan_with_path(self, disk_catalog):
        values = list(
            disk_catalog.scan_collection("/alpha", parse_path('("i")'))
        )
        assert sorted(values) == [0, 0, 1, 1]

    def test_stream_matches_scan(self, disk_catalog):
        path = parse_path('("i")')
        fast = list(disk_catalog.scan_collection("/alpha", path))
        chunked = list(disk_catalog.stream_collection("/alpha", path))
        assert fast == chunked

    def test_read_document(self, disk_catalog):
        uri = disk_catalog.files("/beta")[0]
        assert disk_catalog.read_document(uri) == {"p": 0, "i": 0}

    def test_total_bytes(self, disk_catalog):
        assert disk_catalog.total_bytes("/alpha") > 0
        per_partition = disk_catalog.total_bytes("/alpha", 0)
        assert per_partition < disk_catalog.total_bytes("/alpha")


class TestInMemorySource:
    def test_partitions(self):
        source = InMemorySource(collections={"/c": [["1", "2"], ["3"]]})
        assert source.partition_count("/c") == 2
        assert source.read_collection("/c") == [1, 2, 3]
        assert source.read_collection("/c", partition=1) == [3]

    def test_scan(self):
        source = InMemorySource(collections={"/c": [['{"a": [1, 2]}']]})
        assert list(source.scan_collection("/c", parse_path('("a")()'))) == [1, 2]

    def test_documents(self):
        source = InMemorySource(documents={"d.json": '{"x": 1}'})
        assert source.read_document("d.json") == {"x": 1}
        source.add_document("e.json", "2")
        assert source.read_document("e.json") == 2

    def test_unknown_names(self):
        source = InMemorySource()
        with pytest.raises(ReproError):
            source.read_collection("/nope")
        with pytest.raises(ReproError):
            source.read_document("nope.json")

    def test_add_collection(self):
        source = InMemorySource()
        source.add_collection("/c", [["true"]])
        assert source.read_collection("/c") == [True]
