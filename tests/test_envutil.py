"""The one REPRO_* resolution rule: unset → default, "" → explicitly off."""

import pytest

from repro.cache.config import (
    resolve_fingerprint_mode,
    resolve_scan_mode,
    resolve_segment_cache,
)
from repro.envutil import env_setting
from repro.errors import ReproError
from repro.hyracks.backends import resolve_backend
from repro.hyracks.limits import resolve_deadline_seconds
from repro.hyracks.spill import SpillConfig
from repro.observability.profile import resolve_profile_config


class TestEnvSetting:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_setting("REPRO_X") is None
        assert env_setting("REPRO_X", "fallback") == "fallback"

    def test_set_returns_stripped_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "  value  ")
        assert env_setting("REPRO_X") == "value"

    def test_empty_is_explicitly_off_not_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "")
        assert env_setting("REPRO_X", "fallback") == ""
        monkeypatch.setenv("REPRO_X", "   ")
        assert env_setting("REPRO_X", "fallback") == ""


class TestConsumersHonourTheRule:
    """Every REPRO_* consumer distinguishes unset from set-but-empty."""

    def test_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None).name == "sequential"
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert resolve_backend(None).name == "sequential"
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        backend = resolve_backend(None)
        assert backend.name == "thread"
        backend.close()
        # explicit argument beats the environment
        assert resolve_backend("sequential").name == "sequential"

    def test_spill_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        default_root = SpillConfig().root_directory()
        assert default_root  # system temp dir
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        assert SpillConfig().root_directory() == str(tmp_path)
        # "" pins the built-in default rather than erroring out
        monkeypatch.setenv("REPRO_SPILL_DIR", "")
        assert SpillConfig().root_directory() == default_root
        # explicit directory beats the environment
        assert SpillConfig(directory="/x").root_directory() == "/x"

    def test_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "")
        assert resolve_deadline_seconds(None) is None
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        assert resolve_deadline_seconds(None) == 2.5
        assert resolve_deadline_seconds(9.0) == 9.0

    def test_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "")
        assert resolve_profile_config(None) is None
        monkeypatch.setenv("REPRO_PROFILE", "counter")
        assert resolve_profile_config(None) is not None
        assert resolve_profile_config(False) is None

    def test_scan_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_MODE", "")
        default = resolve_scan_mode(None)
        monkeypatch.delenv("REPRO_SCAN_MODE")
        assert resolve_scan_mode(None) == default
        monkeypatch.setenv("REPRO_SCAN_MODE", "eager")
        assert resolve_scan_mode(None) == "eager"
        assert resolve_scan_mode("text") == "text"

    def test_segment_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SEGMENT_CACHE", "")
        assert resolve_segment_cache(None) is None
        monkeypatch.setenv("REPRO_SEGMENT_CACHE", str(tmp_path))
        assert resolve_segment_cache(None) is not None
        # explicit "" disables even when the environment enables
        assert resolve_segment_cache("") is None

    def test_cache_fingerprint(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_FINGERPRINT", raising=False)
        assert resolve_fingerprint_mode(None) == "stat"
        monkeypatch.setenv("REPRO_CACHE_FINGERPRINT", "")
        assert resolve_fingerprint_mode(None) == "stat"
        monkeypatch.setenv("REPRO_CACHE_FINGERPRINT", "content")
        assert resolve_fingerprint_mode(None) == "content"
        assert resolve_fingerprint_mode("stat") == "stat"
        with pytest.raises(ReproError):
            resolve_fingerprint_mode("mtime")
