"""Plan invariant validator: catches deliberately broken plans and
accepts every plan the default pipeline produces."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Literal, VariableRef
from repro.algebra.operators import (
    Aggregate,
    AggregateSpec,
    Assign,
    DataScan,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    NestedTupleSource,
    Select,
    Subplan,
)
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules import TOGGLE_CONFIGS, RewriteConfig, rule_pipeline
from repro.bench.queries import ALL_QUERIES
from repro.compiler.pipeline import compile_query
from repro.correctness.validator import PlanInvariantError, validate_plan
from repro.errors import RewriteError
from repro.jsoniq.parser import parse_query
from repro.jsoniq.translator import translate
from repro.jsonlib.path import Path


def _scan(variable: str = "x") -> DataScan:
    return DataScan("/c", variable)


def _valid_plan() -> LogicalPlan:
    return LogicalPlan(
        DistributeResult(_scan(), [VariableRef("x")])
    )


class TestAccepts:
    def test_minimal_plan(self):
        validate_plan(_valid_plan())

    @pytest.mark.parametrize("query_name", sorted(ALL_QUERIES))
    @pytest.mark.parametrize("toggle", sorted(TOGGLE_CONFIGS))
    def test_every_paper_query_under_every_toggle(self, query_name, toggle):
        query = ALL_QUERIES[query_name](collection="/sensors", wrapped=True)
        compiled = compile_query(query, TOGGLE_CONFIGS[toggle])
        validate_plan(compiled.naive_plan)
        validate_plan(compiled.plan)

    def test_rebinding_across_scopes_is_fine(self):
        # Figure 9 rebinds grouped variables via ASSIGN treat; the same
        # name may be bound again downstream of an AGGREGATE boundary.
        inner = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("agg", "sequence", VariableRef("x"))],
        )
        group = GroupBy(_scan(), [("k", VariableRef("x"))], inner)
        rebind = Assign(group, "x", VariableRef("agg"))
        validate_plan(
            LogicalPlan(DistributeResult(rebind, [VariableRef("x")]))
        )


class TestRejects:
    def test_root_must_be_distribute_result(self):
        with pytest.raises(PlanInvariantError, match="root"):
            validate_plan(LogicalPlan(_scan()))

    def test_distribute_result_below_root(self):
        nested = DistributeResult(_scan(), [VariableRef("x")])
        plan = LogicalPlan(DistributeResult(nested, [VariableRef("x")]))
        with pytest.raises(PlanInvariantError, match="below the plan root"):
            validate_plan(plan)

    def test_dangling_variable(self):
        plan = LogicalPlan(
            DistributeResult(_scan("x"), [VariableRef("gone")])
        )
        with pytest.raises(PlanInvariantError, match=r"\$gone"):
            validate_plan(plan)

    def test_variable_not_visible_through_aggregate(self):
        # AGGREGATE emits a fresh tuple of its spec variables only; the
        # input variable $x must not leak through.
        agg = Aggregate(
            _scan("x"), [AggregateSpec("n", "count", VariableRef("x"))]
        )
        plan = LogicalPlan(DistributeResult(agg, [VariableRef("x")]))
        with pytest.raises(PlanInvariantError, match=r"\$x"):
            validate_plan(plan)

    def test_nested_tuple_source_in_main_tree(self):
        plan = LogicalPlan(
            DistributeResult(NestedTupleSource(), [Literal([1])])
        )
        with pytest.raises(PlanInvariantError, match="outside a nested"):
            validate_plan(plan)

    def test_nested_plan_root_must_be_aggregate(self):
        nested = Select(NestedTupleSource(), Literal([True]))
        plan = LogicalPlan(
            DistributeResult(Subplan(_scan(), nested), [VariableRef("x")])
        )
        with pytest.raises(PlanInvariantError, match="must be AGGREGATE"):
            validate_plan(plan)

    def test_nested_plan_leaf_must_be_nested_tuple_source(self):
        nested = Aggregate(
            EmptyTupleSource(),
            [AggregateSpec("n", "count", Literal([1]))],
        )
        plan = LogicalPlan(
            DistributeResult(Subplan(_scan(), nested), [VariableRef("n")])
        )
        with pytest.raises(PlanInvariantError, match="NESTED-TUPLE-SOURCE"):
            validate_plan(plan)

    def test_duplicate_group_by_keys(self):
        inner = Aggregate(
            NestedTupleSource(),
            [AggregateSpec("n", "count", VariableRef("x"))],
        )
        group = GroupBy(
            _scan(),
            [("k", VariableRef("x")), ("k", VariableRef("x"))],
            inner,
        )
        plan = LogicalPlan(DistributeResult(group, [VariableRef("n")]))
        with pytest.raises(PlanInvariantError, match="twice"):
            validate_plan(plan)

    def test_duplicate_aggregate_specs(self):
        agg = Aggregate(
            _scan("x"),
            [
                AggregateSpec("n", "count", VariableRef("x")),
                AggregateSpec("n", "sum", VariableRef("x")),
            ],
        )
        plan = LogicalPlan(DistributeResult(agg, [VariableRef("n")]))
        with pytest.raises(PlanInvariantError, match="twice"):
            validate_plan(plan)

    def test_malformed_projection_path(self):
        scan = DataScan("/c", "x", Path(("not-a-step",)))
        plan = LogicalPlan(DistributeResult(scan, [VariableRef("x")]))
        with pytest.raises(PlanInvariantError, match="non-step"):
            validate_plan(plan)


class TestEngineIntegration:
    def test_engine_validates_after_every_fire(self):
        """A rule that breaks the plan is caught and named."""
        from repro.algebra.rules.base import RewriteRule, RuleEngine

        class BreakPlan(RewriteRule):
            name = "BreakPlanRule"

            def apply(self, plan):
                return LogicalPlan(
                    DistributeResult(
                        plan.root.input_op, [VariableRef("nope")]
                    )
                )

        engine = RuleEngine([BreakPlan()], validator=validate_plan)
        with pytest.raises(RewriteError, match="BreakPlanRule"):
            engine.rewrite(translate(parse_query("1 + 1")))

    def test_engine_validates_translated_plan(self):
        from repro.algebra.rules.base import RuleEngine

        engine = RuleEngine([], validator=validate_plan)
        broken = LogicalPlan(
            DistributeResult(EmptyTupleSource(), [VariableRef("ghost")])
        )
        with pytest.raises(RewriteError, match="translated plan"):
            engine.rewrite(broken)

    def test_validate_flag_disables_the_hook(self):
        config = RewriteConfig(validate=False)
        assert rule_pipeline(config).validator is None
        assert rule_pipeline(RewriteConfig.all()).validator is not None

    def test_default_pipeline_compiles_with_validator(self):
        query = 'for $x in collection("/c")() where $x gt 1 return $x'
        compiled = compile_query(query)
        validate_plan(compiled.plan)
