"""Differential harness: canonical comparison, matrix execution, the
projection-off source, and the shrinker."""

from __future__ import annotations

import pytest

from repro.correctness.generator import GeneratedCase
from repro.correctness.harness import (
    BUDGETS,
    DiffCheckReport,
    EagerNavigationSource,
    Mismatch,
    canonical_result,
    run_diffcheck,
    shrink_case,
)
from repro.data.catalog import InMemorySource
from repro.jsonlib.path import Path, ValueByKey


class TestCanonicalResult:
    def test_order_insensitive(self):
        assert canonical_result([1, 2]) == canonical_result([2, 1])

    def test_value_based_numeric_equality(self):
        assert canonical_result([1]) == canonical_result([1.0])

    def test_distinguishes_values(self):
        assert canonical_result([1]) != canonical_result([2])
        assert canonical_result([None]) != canonical_result([0])
        assert canonical_result(["1"]) != canonical_result([1])

    def test_multiset_not_set(self):
        assert canonical_result([1, 1]) != canonical_result([1])

    def test_last_ulp_float_noise_folds(self):
        # Summation-order noise (two-step aggregation vs document
        # order) must not count as a mismatch.
        assert canonical_result([2.260416666666666]) == canonical_result(
            [2.260416666666667]
        )
        assert canonical_result([2.26]) != canonical_result([2.27])

    def test_nested_structures(self):
        left = [{"a": [1.0, {"b": 2}]}]
        right = [{"a": [1, {"b": 2.0}]}]
        assert canonical_result(left) == canonical_result(right)


class TestEagerNavigationSource:
    def test_scan_equals_parse_then_navigate(self):
        text = '{"results": [{"v": 1}, {"v": 2, "v": 3}]}'
        inner = InMemorySource(collections={"/c": [[text]]})
        eager = EagerNavigationSource(inner)
        path = Path([ValueByKey("results")])
        # The duplicate-key record parses last-occurrence-wins.
        assert eager.scan_collection("/c", path, 0) == [
            [{"v": 1}, {"v": 3}]
        ]
        assert eager.partition_count("/c") == inner.partition_count("/c")
        assert eager.read_collection("/c", 0) == inner.read_collection(
            "/c", 0
        )


class TestRunDiffcheck:
    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError, match="unknown budget"):
            run_diffcheck(budget="huge")

    def test_budgets_table(self):
        assert set(BUDGETS) == {"small", "full"}
        assert BUDGETS["full"][0] >= 200

    def test_report_serializes(self):
        report = DiffCheckReport(seed=0, budget="small")
        report.mismatches.append(
            Mismatch(
                case="c", config="all", backend="sequential",
                projection="projected", kind="mismatch", detail="d",
            )
        )
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["mismatch_count"] == 1
        assert payload["mismatches"][0]["case"] == "c"


class TestShrinker:
    def _case(self, partitions):
        def oracle(documents):
            return []

        return GeneratedCase(
            name="shrink-me",
            query_text="()",
            partitions=tuple(tuple(p) for p in partitions),
            oracle=oracle,
        )

    def test_drops_irrelevant_partitions_and_lines(self):
        bad = '{"results": [{"station": "BAD"}]}'
        noise = '{"results": [{"station": "OK"}, {"station": "ALSO-OK"}]}'
        case = self._case(
            [[noise], ["\n".join([noise, bad, noise])], [noise]]
        )

        def still_fails(candidate):
            return any(
                "BAD" in text
                for partition in candidate.partitions
                for text in partition
            )

        shrunk = shrink_case(case, still_fails)
        texts = [t for p in shrunk.partitions for t in p]
        assert len(shrunk.partitions) == 1
        assert all("BAD" in t for t in texts)
        # Record-level shrinking trimmed the co-resident OK records too.
        assert "OK" not in "".join(texts)

    def test_keeps_load_bearing_context(self):
        # The failure needs BOTH records; the shrinker must not drop
        # either even though each single drop still parses.
        text = '{"results": [{"station": "A"}, {"station": "B"}]}'
        case = self._case([[text]])

        def still_fails(candidate):
            joined = "".join(t for p in candidate.partitions for t in p)
            return '"A"' in joined and '"B"' in joined

        shrunk = shrink_case(case, still_fails)
        joined = "".join(t for p in shrunk.partitions for t in p)
        assert '"A"' in joined and '"B"' in joined

    def test_fixed_point_when_nothing_shrinks(self):
        case = self._case([['{"results": [{"v": 1}]}']])
        shrunk = shrink_case(case, lambda candidate: True)
        # One partition, one line, one record: only the record drop is
        # attempted, and it still "fails", so results become empty.
        assert shrunk.partitions == (('{"results": []}',),)


class TestSmallMatrix:
    """One end-to-end run over a tiny generated population.

    The full acceptance run (seed 0, full budget) happens in
    ``tools/diffcheck.py`` / CI; here a smoke-sized slice keeps the
    tier-1 suite fast while exercising the whole code path, including
    the process backend.
    """

    def test_runs_clean(self, tmp_path):
        report = run_diffcheck(seed=0, budget="small")
        assert report.ok, [m.to_dict() for m in report.mismatches]
        # 5 queries x (6 toggles x 3 backends x 2 projections + 3
        # forced-spill cells + 3 crash-injected cells + 5 cost-off
        # cells), with every projected cell swept across the 3-mode
        # scan axis: (18*3 + 18) + 3*3 + 3*3 + 5*3 = 105 runs per query.
        assert report.paper_cells == 525
        assert report.generated_cases == BUDGETS["small"][0]
        # 6 toggles (projected -> x3 scan modes) + 3 rotating cells
        # (scan-mode, crash, cost-off); consecutive rotation offsets
        # alternate projected (x3) and eager (x1), so across the even-
        # sized population each case averages 18 + 3 + 1 + 2 = 24 runs.
        assert report.generated_cells == report.generated_cases * 24
