"""Group-by on absent and null grouping keys, pinned across engines.

A record whose grouping key navigates to the empty sequence forms its
own group (the ``()`` canonical key), records with a ``null`` key group
together, and value-equal int/float keys share a group — identically in
the sequential path, the hash-exchange parallel paths, and with
two-step aggregation on or off.
"""

from __future__ import annotations

import pytest

from repro.algebra.rules import RewriteConfig
from repro.processor import JsonProcessor

RECORDS = [
    '{"results": [{"g": "a", "v": 1}, {"g": "a", "v": 2}]}',
    '{"results": [{"g": null, "v": 3}, {"v": 4}]}',
    '{"results": [{"g": null, "v": 5}, {"v": 6}, {"g": 1, "v": 7}]}',
    '{"results": [{"g": 1.0, "v": 8}]}',
]

QUERY = (
    'for $m in collection("/c")("results")() '
    'group by $g := $m("g") '
    "return count($m)"
)

# Groups: "a" -> {1,2}; null -> {3,5}; missing -> {4,6}; 1 == 1.0 -> {7,8}.
EXPECTED_COUNTS = sorted([2, 2, 2, 2])

SUM_QUERY = (
    'for $m in collection("/c")("results")() '
    'group by $g := $m("g") '
    'return sum($m("v"))'
)

EXPECTED_SUMS = sorted([3, 8, 10, 15])


def _partitions():
    # Two partitions so the hash exchange actually redistributes
    # same-key records across partition boundaries.
    return [[f"{RECORDS[0]}\n{RECORDS[1]}"], [f"{RECORDS[2]}\n{RECORDS[3]}"]]


@pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
@pytest.mark.parametrize("two_step", [True, False], ids=["2step", "1step"])
@pytest.mark.parametrize(
    "query, expected",
    [(QUERY, EXPECTED_COUNTS), (SUM_QUERY, EXPECTED_SUMS)],
    ids=["count", "sum"],
)
def test_absent_and_null_keys_group_consistently(
    backend, two_step, query, expected
):
    rewrite = RewriteConfig(two_step_aggregation=two_step)
    with JsonProcessor.in_memory(
        collections={"/c": _partitions()},
        rewrite=rewrite,
        backend=backend,
        max_workers=2,
    ) as processor:
        result = processor.evaluate(query)
    assert sorted(result) == expected


@pytest.mark.parametrize("backend", ["sequential", "process"])
def test_missing_key_group_distinct_from_null_group(backend):
    """count($m("g")) separates them: the null group counts its null
    values, the missing group counts nothing."""
    query = (
        'for $m in collection("/c")("results")() '
        'group by $g := $m("g") '
        'return count($m("g"))'
    )
    with JsonProcessor.in_memory(
        collections={"/c": _partitions()},
        backend=backend,
        max_workers=2,
    ) as processor:
        result = processor.evaluate(query)
    # "a" group: 2 values; null group: 2 nulls (counted); missing
    # group: 0; numeric group: 2.
    assert sorted(result) == [0, 2, 2, 2]


def test_groups_match_between_all_rules_and_no_rules():
    with JsonProcessor.in_memory(
        collections={"/c": _partitions()}
    ) as processor:
        with_rules = processor.evaluate(QUERY)
    with JsonProcessor.in_memory(
        collections={"/c": _partitions()}, rewrite=RewriteConfig.none()
    ) as processor:
        without_rules = processor.evaluate(QUERY)
    assert sorted(with_rules) == sorted(without_rules) == EXPECTED_COUNTS
