"""Generator: deterministic, parseable, and anomaly-bearing output."""

from __future__ import annotations

from repro.correctness.generator import (
    GeneratedCase,
    generate_case,
    generate_cases,
)
from repro.errors import ItemTypeError, ReproError


def test_deterministic_for_a_seed():
    first = generate_cases(7, 30)
    second = generate_cases(7, 30)
    assert [c.name for c in first] == [c.name for c in second]
    assert [c.partitions for c in first] == [c.partitions for c in second]
    assert [c.query_text for c in first] == [c.query_text for c in second]


def test_seeds_differ():
    assert [c.partitions for c in generate_cases(1, 10)] != [
        c.partitions for c in generate_cases(2, 10)
    ]


def test_every_partition_text_parses():
    errors = 0
    for case in generate_cases(0, 60):
        documents = case.documents()
        assert isinstance(documents, list)
        # The oracle must accept whatever the generator produced —
        # either a value or a pinned semantics error (a join keyed on a
        # multi-item sequence raises the comparison's ItemTypeError).
        try:
            assert isinstance(case.expected(), list)
        except ReproError as error:
            assert "multi-item sequence" in str(error)
            errors += 1
    # The error oracle is part of the population, not a fluke.
    assert errors > 0


def test_join_seq_template_produces_both_oracles():
    """Across seeds the join-seq template yields both value cases
    (singleton/empty attribute sequences) and pinned-error cases."""
    kinds = set()
    for seed in range(20):
        for case in generate_cases(seed, 14):
            if "join-seq" not in case.name:
                continue
            try:
                case.expected()
                kinds.add("value")
            except ItemTypeError:
                kinds.add("error")
    assert kinds == {"value", "error"}


def test_covers_every_template():
    names = [c.name for c in generate_cases(0, 12)]
    for marker in ("path-", "keys", "select-", "group-count-", "join-"):
        assert any(marker in name for name in names), marker


def test_anomalies_present_in_population():
    """Across a modest population the interesting shapes all occur:
    duplicate keys, nulls, missing keys, and both file shapes."""
    cases = generate_cases(3, 40)
    texts = "\n".join(
        text for c in cases for p in c.partitions for text in p
    )
    assert '"station": null' in texts or '"dataType": null' in texts
    assert '"root"' in texts  # wrapped shape
    assert any("-flat" in c.name for c in cases)
    assert any("-wrapped" in c.name for c in cases)
    # Duplicate keys survive serialization: some object repeats a key.
    import re

    duplicated = False
    for obj in re.findall(r"\{[^{}]*\}", texts):
        keys = re.findall(r'"(\w+)":', obj)
        if len(keys) != len(set(keys)):
            duplicated = True
            break
    assert duplicated


def test_with_partitions_rebuilds_case():
    case = generate_cases(0, 1)[0]
    reduced = case.with_partitions([["{}"]])
    assert isinstance(reduced, GeneratedCase)
    assert reduced.partitions == (("{}",),)
    assert reduced.query_text == case.query_text
    assert case.partitions != reduced.partitions  # original untouched


def test_generate_case_uses_index_for_template_rotation():
    import random

    a = generate_case(random.Random(0), 0)
    b = generate_case(random.Random(0), 1)
    assert a.name.split("-", 1)[1] != b.name.split("-", 1)[1]
