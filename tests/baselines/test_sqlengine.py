"""Unit tests for the SparkSQL-like in-memory engine."""

import pytest

from repro.errors import LoadError, MemoryBudgetExceededError
from repro.baselines.sqlengine import InMemorySQLEngine, flatten_record

SENSOR_FILE = """
{"root": [
  {"metadata": {"count": 2}, "results": [
    {"date": "d1", "dataType": "TMIN", "station": "S1", "value": 1},
    {"date": "d1", "dataType": "TMAX", "station": "S1", "value": 9}
  ]}
]}
"""


class TestFlattening:
    def test_scalar_record(self):
        assert list(flatten_record({"a": 1, "b": "x"})) == [{"a": 1, "b": "x"}]

    def test_nested_object_gets_dotted_columns(self):
        rows = list(flatten_record({"a": {"b": {"c": 1}}}))
        assert rows == [{"a.b.c": 1}]

    def test_array_of_objects_explodes(self):
        rows = list(flatten_record({"k": 1, "xs": [{"v": 1}, {"v": 2}]}))
        assert rows == [{"k": 1, "xs.v": 1}, {"k": 1, "xs.v": 2}]

    def test_nested_explosion(self):
        rows = list(
            flatten_record(
                {"root": [{"results": [{"v": 1}, {"v": 2}]}, {"results": [{"v": 3}]}]}
            )
        )
        assert [r["root.results.v"] for r in rows] == [1, 2, 3]

    def test_scalar_arrays_stay_columns(self):
        rows = list(flatten_record({"xs": [1, 2, 3]}))
        assert rows == [{"xs": [1, 2, 3]}]

    def test_top_level_scalar(self):
        assert list(flatten_record(42)) == [{"value": 42}]

    def test_top_level_array(self):
        rows = list(flatten_record([{"a": 1}, {"a": 2}]))
        assert rows == [{"a": 1}, {"a": 2}]


class TestLoading:
    def test_load_counts_rows(self):
        engine = InMemorySQLEngine()
        report = engine.load_texts("t", [SENSOR_FILE])
        assert report.rows == 2
        assert engine.row_count("t") == 2
        assert report.memory_bytes > 0

    def test_memory_budget_failure_cleans_up(self):
        engine = InMemorySQLEngine(memory_budget_bytes=100)
        with pytest.raises(MemoryBudgetExceededError):
            engine.load_texts("t", [SENSOR_FILE])
        # The failed table is gone and its memory returned.
        assert engine.memory.used == 0
        with pytest.raises(LoadError):
            engine.row_count("t")

    def test_drop_releases_memory(self):
        engine = InMemorySQLEngine()
        engine.load_texts("t", [SENSOR_FILE])
        assert engine.memory.used > 0
        engine.drop("t")
        assert engine.memory.used == 0

    def test_memory_overhead_factor(self):
        engine = InMemorySQLEngine()
        report = engine.load_texts("t", [SENSOR_FILE])
        # The JVM-style overhead makes memory a multiple of the input.
        assert report.memory_bytes > report.input_bytes


class TestQuerying:
    @pytest.fixture
    def engine(self):
        engine = InMemorySQLEngine()
        engine.load_texts("t", [SENSOR_FILE])
        return engine

    def test_select_where(self, engine):
        rows = engine.select(
            "t", where=lambda r: r["root.results.dataType"] == "TMIN"
        )
        assert len(rows) == 1

    def test_select_projection(self, engine):
        rows = engine.select("t", columns=["root.results.value"])
        assert rows == [{"root.results.value": 1}, {"root.results.value": 9}]

    def test_group_count(self, engine):
        counts = engine.group_count("t", key=lambda r: r["root.results.date"])
        assert counts == {"d1": 2}

    def test_join_avg_difference(self, engine):
        result = engine.join_avg_difference(
            "t",
            left_where=lambda r: r["root.results.dataType"] == "TMIN",
            right_where=lambda r: r["root.results.dataType"] == "TMAX",
            key=lambda r: (r["root.results.station"], r["root.results.date"]),
            value_column="root.results.value",
        )
        assert result == 8

    def test_join_no_matches(self, engine):
        result = engine.join_avg_difference(
            "t",
            left_where=lambda r: False,
            right_where=lambda r: True,
            key=lambda r: 1,
        )
        assert result is None

    def test_unknown_table(self, engine):
        with pytest.raises(LoadError):
            engine.select("missing")
