"""Unit tests for the AsterixDB-like engine and its storage."""

import pytest

from repro.errors import LoadError
from repro.baselines.adm import AdmEngine, AdmStorage, MaterializingSource
from repro.data.catalog import InMemorySource
from repro.hyracks.memory import MemoryTracker
from repro.jsonlib.path import Path, parse_path

TEXTS = [
    '{"root": [{"metadata": {"count": 1}, "results": ['
    '{"date": "d1", "dataType": "TMIN", "station": "S1", "value": 1}]}]}',
    '{"root": [{"metadata": {"count": 1}, "results": ['
    '{"date": "d2", "dataType": "TMIN", "station": "S2", "value": 2}]}]}',
]


@pytest.fixture
def source():
    return InMemorySource(collections={"/s": [[TEXTS[0]], [TEXTS[1]]]})


QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'return $r("value")'
)


class TestMaterializingSource:
    def test_scan_equals_inner_results(self, source):
        wrapped = MaterializingSource(source)
        path = parse_path('("root")()("results")()("value")')
        assert sorted(wrapped.scan_collection("/s", path)) == [1, 2]

    def test_partition_restriction(self, source):
        wrapped = MaterializingSource(source)
        path = parse_path('("root")()("results")()("value")')
        assert list(wrapped.scan_collection("/s", path, partition=0)) == [1]

    def test_memory_charged_per_document(self, source):
        tracker = MemoryTracker()
        wrapped = MaterializingSource(source, memory=tracker)
        list(wrapped.scan_collection("/s", Path()))
        assert tracker.peak > 0
        assert tracker.used == 0

    def test_delegation(self, source):
        wrapped = MaterializingSource(source)
        assert wrapped.partition_count("/s") == 2
        assert len(wrapped.read_collection("/s")) == 2


class TestAdmStorage:
    def test_store_and_scan(self, source, tmp_path):
        storage = AdmStorage(str(tmp_path))
        report = storage.store("/s", source)
        assert report.documents == 2
        assert report.stored_bytes > 0
        assert storage.partition_count("/s") == 2
        path = parse_path('("root")()("results")()("station")')
        assert sorted(storage.scan_collection("/s", path)) == ["S1", "S2"]

    def test_unloaded_collection_rejected(self, tmp_path):
        storage = AdmStorage(str(tmp_path))
        with pytest.raises(LoadError):
            storage.partition_count("/nope")

    def test_read_collection(self, source, tmp_path):
        storage = AdmStorage(str(tmp_path))
        storage.store("/s", source)
        items = storage.read_collection("/s")
        assert len(items) == 2
        assert items[0]["root"][0]["results"][0]["value"] == 1


class TestAdmEngine:
    def test_external_mode(self, source):
        engine = AdmEngine(source, mode="external")
        result = engine.execute(QUERY)
        assert sorted(result.items) == [1, 2]

    def test_load_mode_requires_load_first(self, source, tmp_path):
        engine = AdmEngine(source, mode="load", storage_dir=str(tmp_path))
        with pytest.raises(LoadError):
            engine.execute(QUERY)
        engine.load("/s")
        assert sorted(engine.execute(QUERY).items) == [1, 2]

    def test_load_mode_requires_storage_dir(self, source):
        with pytest.raises(LoadError):
            AdmEngine(source, mode="load")

    def test_unknown_mode(self, source):
        with pytest.raises(LoadError):
            AdmEngine(source, mode="turbo")

    def test_stored_bytes(self, source, tmp_path):
        engine = AdmEngine(source, mode="load", storage_dir=str(tmp_path))
        engine.load("/s")
        assert engine.stored_bytes("/s") > 0

    def test_external_mode_has_no_load(self, source):
        engine = AdmEngine(source, mode="external")
        with pytest.raises(LoadError):
            engine.load("/s")
        with pytest.raises(LoadError):
            engine.stored_bytes("/s")
