"""Unit and property tests for the binary ADM codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.adm_codec import (
    AdmDecodeError,
    decode_item,
    decode_items,
    encode_item,
    encode_items,
)


def roundtrip(item):
    buffer = bytearray()
    encode_item(item, buffer)
    decoded, offset = decode_item(bytes(buffer))
    assert offset == len(buffer)
    return decoded


class TestScalars:
    @pytest.mark.parametrize(
        "item",
        [None, True, False, 0, 1, -1, 2**62, -(2**62), 0.5, -1.25e10, "", "text", "é水"],
    )
    def test_roundtrip(self, item):
        assert roundtrip(item) == item

    def test_bool_stays_bool(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and not isinstance(roundtrip(1), bool)

    def test_bigint_fallback(self):
        huge = 10**30
        assert roundtrip(huge) == huge


class TestContainers:
    def test_nested(self):
        item = {"a": [1, {"b": None}, [True, "x"]], "c": {"d": 2.5}}
        assert roundtrip(item) == item

    def test_empty(self):
        assert roundtrip({}) == {}
        assert roundtrip([]) == []

    def test_key_order_preserved(self):
        item = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(item).keys()) == ["z", "a", "m"]


class TestStreams:
    def test_encode_decode_many(self):
        items = [1, "two", {"three": 3}, [4]]
        buffer = encode_items(items)
        assert list(decode_items(buffer)) == items

    def test_empty_stream(self):
        assert list(decode_items(b"")) == []


class TestErrors:
    def test_truncated_input(self):
        buffer = encode_items([{"key": "value"}])
        with pytest.raises(AdmDecodeError):
            list(decode_items(buffer[:-3]))

    def test_unknown_tag(self):
        with pytest.raises(AdmDecodeError):
            decode_item(b"\xff")

    def test_decode_empty(self):
        with pytest.raises(AdmDecodeError):
            decode_item(b"")

    def test_unencodable_value(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            encode_item(object(), bytearray())


json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=15),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)


@given(json_values)
def test_property_roundtrip(value):
    assert roundtrip(value) == value


@given(st.lists(json_values, max_size=6))
def test_property_stream_roundtrip(values):
    assert list(decode_items(encode_items(values))) == values
