"""Unit tests for the MongoDB-like document store."""

import pytest

from repro.errors import DocumentTooLargeError, LoadError
from repro.baselines.docstore import DocumentStore

SENSOR_FILE = """
{"root": [
  {"metadata": {"count": 2}, "results": [
    {"date": "d1", "dataType": "TMIN", "station": "S1", "value": 1},
    {"date": "d1", "dataType": "TMAX", "station": "S1", "value": 9}
  ]},
  {"metadata": {"count": 1}, "results": [
    {"date": "d2", "dataType": "TMIN", "station": "S2", "value": 4}
  ]}
]}
"""


class TestLoading:
    def test_unwraps_root_members(self):
        store = DocumentStore()
        report = store.load_texts("c", [SENSOR_FILE])
        assert report.documents == 2
        assert store.document_count("c") == 2

    def test_rechunking(self):
        store = DocumentStore()
        report = store.load_texts("c", [SENSOR_FILE], measurements_per_document=1)
        assert report.documents == 3
        for doc in store.scan("c"):
            assert len(doc["results"]) == 1
            assert doc["metadata"]["count"] == 1

    def test_non_root_values_stored_as_is(self):
        store = DocumentStore()
        store.load_texts("c", ['{"x": 1} {"y": 2}'])
        assert store.document_count("c") == 2

    def test_load_report_metrics(self):
        store = DocumentStore()
        report = store.load_texts("c", [SENSOR_FILE])
        assert report.input_bytes == len(SENSOR_FILE)
        assert report.stored_bytes == store.stored_bytes("c")
        assert report.seconds >= 0

    def test_compression_shrinks_large_documents(self):
        repetitive = '{"root": [{"metadata": {"count": 1}, "results": [' + ",".join(
            '{"date": "d1", "dataType": "TMIN", "station": "S1", "value": 1}'
            for _ in range(100)
        ) + "]}]}"
        store = DocumentStore()
        report = store.load_texts("c", [repetitive])
        assert report.stored_bytes < report.input_bytes / 3

    def test_document_limit_enforced(self):
        store = DocumentStore(document_limit_bytes=64)
        with pytest.raises(DocumentTooLargeError):
            store.load_texts("c", [SENSOR_FILE])


class TestQuerying:
    @pytest.fixture
    def store(self):
        store = DocumentStore()
        store.load_texts("c", [SENSOR_FILE])
        return store

    def test_scan_roundtrip(self, store):
        docs = list(store.scan("c"))
        assert docs[0]["results"][0]["dataType"] == "TMIN"

    def test_find(self, store):
        matched = store.find("c", lambda d: d["metadata"]["count"] == 1)
        assert len(matched) == 1

    def test_unwind(self, store):
        rows = list(store.unwind("c", "results"))
        assert len(rows) == 3

    def test_aggregate_count(self, store):
        counts = store.aggregate_count(
            store.unwind("c", "results"), key=lambda m: m["date"]
        )
        assert counts == {"d1": 2, "d2": 1}

    def test_join_projected(self, store):
        rows = list(store.unwind("c", "results"))
        tmin = [r for r in rows if r["dataType"] == "TMIN"]
        tmax = [r for r in rows if r["dataType"] == "TMAX"]
        pairs = list(
            store.join_projected(
                tmax, tmin, key=lambda m: (m["station"], m["date"])
            )
        )
        assert len(pairs) == 1
        assert pairs[0][0]["value"] - pairs[0][1]["value"] == 8

    def test_group_documents_limit_failure(self, store):
        # Individual documents fit the limit, but grouping every row
        # under one key builds a document that does not (Section 5.4's
        # naive Q2 failure).
        tiny = DocumentStore(document_limit_bytes=400)
        tiny.load_texts("c", [SENSOR_FILE])
        rows = list(tiny.unwind("c", "results")) * 20
        with pytest.raises(DocumentTooLargeError):
            tiny.group_documents(rows, key=lambda m: "same-key")

    def test_unknown_collection(self):
        with pytest.raises(LoadError):
            list(DocumentStore().scan("nope"))

    def test_drop(self, store):
        store.drop("c")
        with pytest.raises(LoadError):
            store.stored_bytes("c")
