"""Cost-on/off equivalence across every execution backend.

The headline guarantee of the cost phase: for a given plan (cost on or
cost off), the sequential, thread, and process backends produce
byte-identical items; and the cost-on plan's results are canonically
equal (same multiset) to the cost-off plan's, including under a spill
budget and with an injected worker crash.
"""

import json

import pytest

from repro import JsonProcessor
from repro.data.catalog import InMemorySource
from repro.resilience.faults import FaultPlan

BACKENDS = ("sequential", "thread", "process")

# A workload that triggers all three per-join decisions: the tiny
# dimension table broadcasts, the skewed fact join splits its hot key,
# and the build side swaps onto the smaller input.
DIMS = [{"g": i, "label": f"g{i}"} for i in range(4)]
FACTS = [{"station": "HOT", "g": i % 4, "v": i} for i in range(700)] + [
    {"station": f"s{i % 25}", "g": i % 4, "v": i} for i in range(500)
]
STATIONS = [{"station": f"s{i % 25}", "w": i} for i in range(399)] + [
    {"station": "HOT", "w": 399}
]

QUERY = (
    'for $s in collection("/stations")() '
    'for $f in collection("/facts")() '
    'for $d in collection("/dims")() '
    'where $s("station") eq $f("station") and $f("g") eq $d("g") '
    'return {"w": $s("w"), "v": $f("v"), "label": $d("label")}'
)


def make_source():
    def parts(rows, n=2):
        split = [[] for _ in range(n)]
        for index, row in enumerate(rows):
            split[index % n].append(row)
        return [[json.dumps(part)] for part in split]

    return InMemorySource(
        {
            "/dims": parts(DIMS),
            "/facts": parts(FACTS),
            "/stations": parts(STATIONS),
        },
        stats_sample=10_000,
    )


def run(backend, cost, memory_budget=None, fault_plan=None):
    with JsonProcessor(
        source=make_source(),
        backend=backend,
        max_workers=2,
        cost=cost,
        memory_budget_bytes=memory_budget,
        fault_plan=fault_plan,
    ) as processor:
        return processor.evaluate(QUERY)


def item_bytes(items):
    return repr(items)


def canonical(items):
    return sorted(repr(item) for item in items)


@pytest.fixture(scope="module")
def matrix():
    return {
        (backend, cost): run(backend, cost)
        for backend in BACKENDS
        for cost in (True, False)
    }


class TestBackendByteIdentity:
    @pytest.mark.parametrize("cost", [True, False])
    def test_backends_agree_bytewise(self, matrix, cost):
        reference = item_bytes(matrix[("sequential", cost)])
        for backend in BACKENDS[1:]:
            assert item_bytes(matrix[(backend, cost)]) == reference

    def test_cost_on_and_off_are_canonically_equal(self, matrix):
        assert canonical(matrix[("sequential", True)]) == canonical(
            matrix[("sequential", False)]
        )

    def test_plans_actually_differ(self):
        on = JsonProcessor(source=make_source(), cost=True)
        off = JsonProcessor(source=make_source(), cost=False)
        assert on.compile(QUERY).plan.explain() != off.compile(QUERY).plan.explain()
        assert "broadcast" in on.compile(QUERY).plan.explain()


class TestDegradedCells:
    def test_spill_cell_matches(self, matrix):
        reference = canonical(matrix[("sequential", False)])
        for cost in (True, False):
            spilled = run("sequential", cost, memory_budget=4096)
            assert canonical(spilled) == reference

    def test_crash_cell_matches(self, matrix):
        reference = canonical(matrix[("sequential", False)])
        for cost in (True, False):
            crashed = run(
                "sequential",
                cost,
                fault_plan=FaultPlan().kill_worker(0, attempt=1),
            )
            assert canonical(crashed) == reference
