"""Tests for the cost-based join planning phase.

Each decision — build-side choice, broadcast exchange, skew splitting,
join ordering — is exercised through a real ``JsonProcessor`` over
sampled in-memory data, asserting both the plan annotation (via
``explain``) and that results stay canonically equal with the cost
phase off.  Also covers ``REPRO_COST`` resolution, determinism, and
the inert cases (no stats, unknown collection, cost disabled).
"""

import dataclasses
import json

import pytest

from repro import JsonProcessor
from repro.algebra.rules import RewriteConfig
from repro.data.catalog import InMemorySource
from repro.jsonlib.items import canonical_atomic
from repro.stats.cost import COST_ENV_VAR, resolve_cost_enabled


def rows_source(collections, stats_sample=None, partitions=1):
    data = {}
    for name, rows in collections.items():
        parts = [[] for _ in range(partitions)]
        for index, row in enumerate(rows):
            parts[index % partitions].append(row)
        data[name] = [[json.dumps(part)] for part in parts]
    return InMemorySource(data, stats_sample=stats_sample)


def canonical(items):
    return sorted(repr(item) for item in items)


def processor(collections, cost=True, partitions=1, stats_sample=10_000):
    return JsonProcessor(
        source=rows_source(
            collections, stats_sample=stats_sample, partitions=partitions
        ),
        cost=cost,
    )


class TestResolveCostEnabled:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(COST_ENV_VAR, "0")
        assert resolve_cost_enabled(True) is True
        monkeypatch.delenv(COST_ENV_VAR)
        assert resolve_cost_enabled(False) is False

    def test_unset_means_on(self, monkeypatch):
        monkeypatch.delenv(COST_ENV_VAR, raising=False)
        assert resolve_cost_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "off", "FALSE", " no "])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv(COST_ENV_VAR, value)
        assert resolve_cost_enabled() is False

    @pytest.mark.parametrize("value", ["1", "on", "true"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv(COST_ENV_VAR, value)
        assert resolve_cost_enabled() is True


TINY = [{"k": i, "label": f"t{i}"} for i in range(5)]
BIG = [{"k": i % 5, "v": i} for i in range(120)]

TINY_BIG_JOIN = (
    'for $t in collection("/tiny")() '
    'for $b in collection("/big")() '
    'where $t("k") eq $b("k") '
    'return {"label": $t("label"), "v": $b("v")}'
)


class TestBroadcast:
    def test_tiny_side_is_broadcast(self):
        explain = processor({"/tiny": TINY, "/big": BIG}).explain(
            TINY_BIG_JOIN, show_trace=True
        )
        assert "exchange=broadcast-left" in explain
        assert "CostBroadcast" in explain

    def test_results_match_cost_off(self):
        with_cost = processor({"/tiny": TINY, "/big": BIG})
        without = processor({"/tiny": TINY, "/big": BIG}, cost=False)
        assert canonical(with_cost.evaluate(TINY_BIG_JOIN)) == canonical(
            without.evaluate(TINY_BIG_JOIN)
        )
        assert "broadcast" not in without.explain(TINY_BIG_JOIN)

    def test_balanced_sides_stay_hash_partitioned(self):
        balanced = {"/tiny": BIG, "/big": BIG}
        explain = processor(balanced).explain(TINY_BIG_JOIN)
        assert "broadcast" not in explain


SMALL = [{"k": i % 40, "s": f"s{i}"} for i in range(600)]
LARGE = [{"k": i % 40, "v": i} for i in range(1400)]

SMALL_LARGE_JOIN = (
    'for $a in collection("/small")() '
    'for $b in collection("/large")() '
    'where $a("k") eq $b("k") '
    'return $b("v")'
)


class TestBuildSide:
    def test_smaller_left_side_becomes_build(self):
        # 600 vs 1400: ratio < 4 so no broadcast, but the left side is
        # cheaper to build a hash table from than the (default) right.
        explain = processor({"/small": SMALL, "/large": LARGE}).explain(
            SMALL_LARGE_JOIN, show_trace=True
        )
        assert "build=left" in explain
        assert "CostBuildSide" in explain

    def test_smaller_right_side_keeps_default(self):
        swapped = (
            'for $a in collection("/large")() '
            'for $b in collection("/small")() '
            'where $a("k") eq $b("k") '
            'return $a("v")'
        )
        explain = processor({"/small": SMALL, "/large": LARGE}).explain(
            swapped
        )
        # Build on the right is the default: no annotation to print.
        assert "build=" not in explain

    def test_results_match_cost_off(self):
        with_cost = processor({"/small": SMALL, "/large": LARGE})
        without = processor({"/small": SMALL, "/large": LARGE}, cost=False)
        assert canonical(with_cost.evaluate(SMALL_LARGE_JOIN)) == canonical(
            without.evaluate(SMALL_LARGE_JOIN)
        )


# Both sides too large to broadcast (ratio < 4), with one station
# carrying more than half the probe-side rows.
STATIONS = [{"station": f"s{i % 30}", "name": f"n{i}"} for i in range(599)] + [
    {"station": "HOT", "name": "hub"}
]
READINGS = [{"station": "HOT", "value": i} for i in range(1200)] + [
    {"station": f"s{i % 30}", "value": i} for i in range(800)
]

SKEW_JOIN = (
    'for $s in collection("/stations")() '
    'for $r in collection("/readings")() '
    'where $s("station") eq $r("station") '
    'return $r("value")'
)


class TestSkew:
    def test_hot_key_is_split(self):
        explain = processor(
            {"/stations": STATIONS, "/readings": READINGS}, partitions=2
        ).explain(SKEW_JOIN, show_trace=True)
        assert "skew=1" in explain
        assert "CostSkewSplit" in explain

    def test_skew_keys_are_canonical_join_keys(self):
        proc = processor({"/stations": STATIONS, "/readings": READINGS})
        compiled = proc.compile(SKEW_JOIN)
        joins = [
            op
            for op in _walk(compiled.plan.root)
            if type(op).__name__ == "Join"
        ]
        (join,) = joins
        # One hot key; its shape matches join_key's output exactly: a
        # tuple of key components, each a canonical-key tuple.
        assert join.skew_keys == (((canonical_atomic("HOT"),),),)

    def test_results_match_cost_off(self):
        data = {"/stations": STATIONS, "/readings": READINGS}
        with_cost = processor(data, partitions=2)
        without = processor(data, cost=False, partitions=2)
        assert canonical(with_cost.evaluate(SKEW_JOIN)) == canonical(
            without.evaluate(SKEW_JOIN)
        )


THREE_WAY = (
    'for $b in collection("/big3")() '
    'for $m in collection("/med3")() '
    'for $t in collection("/tiny3")() '
    'where $b("k") eq $m("k") and $m("g") eq $t("g") '
    'return {"v": $b("v"), "label": $t("label")}'
)

THREE_WAY_DATA = {
    "/big3": [{"k": i % 30, "v": i} for i in range(900)],
    "/med3": [{"k": i % 30, "g": i % 3} for i in range(90)],
    "/tiny3": [{"g": i, "label": f"g{i}"} for i in range(3)],
}


class TestJoinOrder:
    def test_three_way_chain_is_reordered(self):
        proc = processor(THREE_WAY_DATA)
        explain = proc.explain(THREE_WAY, show_trace=True)
        assert "CostJoinOrder" in explain
        on_plan = proc.compile(THREE_WAY).plan.explain()
        off_plan = (
            processor(THREE_WAY_DATA, cost=False).compile(THREE_WAY).plan.explain()
        )
        assert on_plan != off_plan

    def test_results_match_cost_off(self):
        with_cost = processor(THREE_WAY_DATA)
        without = processor(THREE_WAY_DATA, cost=False)
        assert canonical(with_cost.evaluate(THREE_WAY)) == canonical(
            without.evaluate(THREE_WAY)
        )


class TestDeterminismAndInertCases:
    def test_compile_twice_identical(self):
        proc = processor({"/tiny": TINY, "/big": BIG})
        assert proc.explain(TINY_BIG_JOIN, show_trace=True) == proc.explain(
            TINY_BIG_JOIN, show_trace=True
        )

    def test_no_stats_leaves_plan_alone(self):
        proc = processor({"/tiny": TINY, "/big": BIG}, stats_sample=0)
        explain = proc.explain(TINY_BIG_JOIN)
        assert "broadcast" not in explain and "build=" not in explain

    def test_cost_off_via_env(self, monkeypatch):
        monkeypatch.setenv(COST_ENV_VAR, "")
        proc = processor({"/tiny": TINY, "/big": BIG}, cost=None)
        assert proc.cost is False
        assert "broadcast" not in proc.explain(TINY_BIG_JOIN)

    def test_cost_off_via_rewrite_config(self):
        proc = JsonProcessor(
            source=rows_source({"/tiny": TINY, "/big": BIG}),
            rewrite=dataclasses.replace(RewriteConfig.all(), cost=False),
            cost=True,  # the config still wins: no cost phase at all
        )
        assert proc.cost is False

    def test_unknown_collection_compiles(self):
        proc = processor({"/tiny": TINY})
        compiled = proc.compile(
            'for $a in collection("/ghost")() return $a("k")'
        )
        assert compiled.stats_fingerprint is not None

    def test_fingerprint_recorded_on_compiled_query(self):
        proc = processor({"/tiny": TINY, "/big": BIG})
        compiled = proc.compile(TINY_BIG_JOIN)
        assert (
            compiled.stats_fingerprint
            == proc.source.stats_snapshot().fingerprint()
        )
        off = processor({"/tiny": TINY, "/big": BIG}, cost=False)
        assert off.compile(TINY_BIG_JOIN).stats_fingerprint is None


def _walk(op):
    yield op
    for child in op.inputs:
        yield from _walk(child)
