"""Tests for the sampled statistics catalog.

Covers ``REPRO_STATS_SAMPLE`` resolution, sampling determinism (same
data, same fingerprint), invalidation on registration, extrapolation
from a partial prefix, per-key statistics (distinct counts, top values,
array fanout), tolerance of malformed texts, and pickling (stats travel
into process-backend work units with their owning source).
"""

import json
import pickle

import pytest

from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.errors import ReproError
from repro.stats.sampling import (
    DEFAULT_SAMPLE_LIMIT,
    SAMPLE_ENV_VAR,
    resolve_stats_sample,
)


def rows_source(collections, stats_sample=None, partitions=1):
    """In-memory source storing each partition as one JSON array document."""
    data = {}
    for name, rows in collections.items():
        parts = [[] for _ in range(partitions)]
        for index, row in enumerate(rows):
            parts[index % partitions].append(row)
        data[name] = [[json.dumps(part)] for part in parts]
    return InMemorySource(data, stats_sample=stats_sample)


class TestResolveStatsSample:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "5")
        assert resolve_stats_sample(17) == 17

    def test_explicit_zero_disables(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "5")
        assert resolve_stats_sample(0) == 0

    def test_explicit_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_stats_sample(-1)

    def test_unset_env_means_default(self, monkeypatch):
        monkeypatch.delenv(SAMPLE_ENV_VAR, raising=False)
        assert resolve_stats_sample() == DEFAULT_SAMPLE_LIMIT

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "")
        assert resolve_stats_sample() == 0

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "12")
        assert resolve_stats_sample() == 12

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "lots")
        with pytest.raises(ReproError):
            resolve_stats_sample()

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV_VAR, "-3")
        with pytest.raises(ReproError):
            resolve_stats_sample()


class TestDeterminism:
    ROWS = [{"k": i % 7, "name": f"n{i}"} for i in range(50)]

    def test_same_data_same_fingerprint(self):
        first = rows_source({"/x": self.ROWS}, partitions=2)
        second = rows_source({"/x": self.ROWS}, partitions=2)
        assert (
            first.stats_snapshot().fingerprint()
            == second.stats_snapshot().fingerprint()
        )

    def test_resampling_is_memoized(self):
        source = rows_source({"/x": self.ROWS})
        assert source.collection_stats("/x") is source.collection_stats("/x")

    def test_different_data_different_fingerprint(self):
        first = rows_source({"/x": self.ROWS})
        second = rows_source({"/x": self.ROWS + [{"k": 99, "name": "zz"}]})
        assert (
            first.stats_snapshot().fingerprint()
            != second.stats_snapshot().fingerprint()
        )

    def test_registration_invalidates(self):
        source = rows_source({"/x": self.ROWS})
        before = source.stats_snapshot().fingerprint()
        source.add_collection("/x", [[json.dumps([{"k": 1}])]])
        after = source.stats_snapshot().fingerprint()
        assert before != after

    def test_refresh_stats_resamples(self):
        source = rows_source({"/x": self.ROWS})
        first = source.collection_stats("/x")
        source.refresh_stats()
        second = source.collection_stats("/x")
        assert first is not second
        assert first.fingerprint() == second.fingerprint()


class TestSampling:
    def test_full_sample_counts_exactly(self):
        rows = [{"k": i % 3, "tags": ["a", "b"]} for i in range(30)]
        stats = rows_source({"/x": rows}).collection_stats("/x")
        assert stats.documents == 1  # one array document
        assert stats.root_fanout == 30.0
        key = stats.key("k")
        assert key.count == 30
        assert key.distinct == 3
        assert not key.distinct_saturated
        tags = stats.key("tags")
        assert tags.arrays == 30
        assert tags.avg_array_len == 2.0

    def test_top_values_most_common_first(self):
        rows = [{"s": "HOT"}] * 20 + [{"s": f"c{i}"} for i in range(5)]
        stats = rows_source({"/x": rows}).collection_stats("/x")
        top = stats.key("s").top
        assert top[0] == (("str", "HOT"), 20)
        assert all(count <= 20 for _, count in top)

    def test_extrapolation_from_prefix(self):
        texts = [json.dumps({"k": i}) for i in range(100)]
        source = InMemorySource({"/x": [texts]}, stats_sample=10)
        stats = source.collection_stats("/x")
        (part,) = stats.partitions
        assert part.sampled_documents == 10
        assert not part.exhausted
        # 100 equally-sized texts, 10 sampled -> ~10x byte scale.
        assert 80 <= stats.documents <= 120

    def test_malformed_texts_are_skipped(self):
        texts = ['{"k": 1}', "{nope", '{"k": 2}']
        source = InMemorySource(
            {"/x": [texts]}, on_malformed="skip_record", stats_sample=64
        )
        stats = source.collection_stats("/x")
        assert stats is not None
        assert stats.key("k").count == 2

    def test_unknown_collection_has_no_stats(self):
        source = rows_source({"/x": [{"k": 1}]})
        assert source.collection_stats("/missing") is None

    def test_disabled_sampling(self):
        source = rows_source({"/x": [{"k": 1}]}, stats_sample=0)
        assert source.collection_stats("/x") is None
        assert not source.stats_snapshot()

    def test_snapshot_lists_collections_sorted(self):
        source = rows_source({"/b": [{"k": 1}], "/a": [{"k": 2}]})
        assert source.stats_snapshot().collections() == ["/a", "/b"]


class TestCatalogSource:
    def test_directory_catalog_samples(self, tmp_path):
        part = tmp_path / "x" / "partition0"
        part.mkdir(parents=True)
        (part / "a.json").write_text(
            json.dumps([{"k": i} for i in range(10)]), encoding="utf-8"
        )
        catalog = CollectionCatalog(str(tmp_path))
        catalog.register_directory("/x", str(tmp_path / "x"))
        stats = catalog.collection_stats("/x")
        assert stats is not None
        assert stats.key("k").count == 10
        assert stats.root_fanout == 10.0


class TestPickling:
    def test_collection_stats_round_trip(self):
        rows = [{"k": i % 4} for i in range(12)]
        stats = rows_source({"/x": rows}).collection_stats("/x")
        clone = pickle.loads(pickle.dumps(stats))
        # _by_key is rebuilt by __setstate__, not shipped.
        assert clone.key("k").count == stats.key("k").count
        assert clone.fingerprint() == stats.fingerprint()

    def test_source_with_stats_round_trips(self):
        source = rows_source({"/x": [{"k": 1}]})
        source.collection_stats("/x")  # memoize before pickling
        clone = pickle.loads(pickle.dumps(source))
        assert (
            clone.stats_snapshot().fingerprint()
            == source.stats_snapshot().fingerprint()
        )
