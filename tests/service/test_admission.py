"""Admission control: quotas reject deterministically and structurally."""

import pickle

import pytest

from repro.errors import AdmissionError
from repro.service import QueryService, TenantQuota

from tests.service.conftest import COUNT_QUERY, GatedSource, make_source


def gated_service(**kwargs):
    source = GatedSource(
        collections={"/s": [['{"root": [{"results": [{"v": 1}]}]}']]}
    )
    service = QueryService(
        source, backend="sequential", max_concurrent_queries=1, **kwargs
    )
    return source, service


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued=-1)
        with pytest.raises(ValueError):
            TenantQuota(deadline_ceiling_seconds=0.0)

    def test_defaults(self):
        quota = TenantQuota()
        assert quota.max_concurrent == 2
        assert quota.max_queued == 8
        assert quota.memory_budget_bytes is None
        assert quota.deadline_ceiling_seconds is None


class TestAdmission:
    def test_tenant_quota_rejects_deterministically(self):
        source, service = gated_service(
            default_quota=TenantQuota(max_concurrent=1, max_queued=1)
        )
        try:
            first = service.submit(COUNT_QUERY, tenant="t")
            source.wait_entered()  # first query is now running
            second = service.submit(COUNT_QUERY, tenant="t")  # fills the queue
            with pytest.raises(AdmissionError) as exc_info:
                service.submit(COUNT_QUERY, tenant="t")
            error = exc_info.value
            assert error.reason == "tenant-quota"
            assert error.tenant == "t"
            assert error.limit == 2  # 1 running + 1 queued
            assert error.requested == 3
            # other tenants are unaffected by t's backlog
            third = service.submit(COUNT_QUERY, tenant="other")
            source.release()
            assert first.result(30).items == [1]
            assert second.result(30).items == [1]
            assert third.result(30).items == [1]
            stats = service.stats()
            assert stats["rejected"] == 1
            assert stats["rejected_by_reason"] == {"tenant-quota": 1}
        finally:
            source.release()
            service.close()

    def test_memory_quota_rejects_over_budget_requests(self):
        source = make_source(records_per_partition=5)
        with QueryService(
            source,
            backend="sequential",
            quotas={"t": TenantQuota(memory_budget_bytes=1 << 20)},
        ) as service:
            with pytest.raises(AdmissionError) as exc_info:
                service.submit(
                    COUNT_QUERY, tenant="t", memory_budget_bytes=2 << 20
                )
            error = exc_info.value
            assert error.reason == "memory-quota"
            assert (error.limit, error.requested) == (1 << 20, 2 << 20)
            # at or under the budget is admitted (and the budget is the
            # default when the request asks for nothing)
            assert service.execute(COUNT_QUERY, tenant="t").items == [10]

    def test_deadline_quota_rejects_over_ceiling_requests(self):
        source = make_source(records_per_partition=5)
        with QueryService(
            source,
            backend="sequential",
            quotas={"t": TenantQuota(deadline_ceiling_seconds=60.0)},
        ) as service:
            with pytest.raises(AdmissionError) as exc_info:
                service.submit(COUNT_QUERY, tenant="t", deadline_seconds=120.0)
            assert exc_info.value.reason == "deadline-quota"
            response = service.execute(
                COUNT_QUERY, tenant="t", deadline_seconds=30.0
            )
            assert response.items == [10]
            assert response.deadline_slack_seconds is not None

    def test_service_queue_depth_is_global(self):
        source, service = gated_service(
            max_queue_depth=1,
            default_quota=TenantQuota(max_concurrent=1, max_queued=8),
        )
        try:
            first = service.submit(COUNT_QUERY, tenant="a")
            source.wait_entered()
            second = service.submit(COUNT_QUERY, tenant="a")  # queued (1/1)
            with pytest.raises(AdmissionError) as exc_info:
                service.submit(COUNT_QUERY, tenant="b")
            assert exc_info.value.reason == "service-queue"
            assert exc_info.value.limit == 1
            source.release()
            first.result(30)
            second.result(30)
        finally:
            source.release()
            service.close()

    def test_closed_service_rejects(self):
        service = QueryService(make_source(5), backend="sequential")
        service.close()
        with pytest.raises(AdmissionError) as exc_info:
            service.submit(COUNT_QUERY)
        assert exc_info.value.reason == "closed"

    def test_admission_error_pickles_with_fields(self):
        error = AdmissionError("tenant-quota", "t", "full", 2, 3)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.reason == "tenant-quota"
        assert clone.tenant == "t"
        assert (clone.limit, clone.requested) == (2, 3)
        assert "tenant-quota" in str(clone)
