"""Plan cache: LRU behaviour, counters, config keying, thread safety."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.algebra.rules import RewriteConfig
from repro.service import PlanCache


ALL = RewriteConfig.all()


class TestPlanCache:
    def test_hit_returns_same_compiled_object(self):
        cache = PlanCache(capacity=4)
        first, hit1 = cache.get_or_compile("1 + 1", ALL)
        second, hit2 = cache.get_or_compile("1 + 1", ALL)
        assert (hit1, hit2) == (False, True)
        assert second is first
        assert cache.stats() == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_config_is_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        baseline = RewriteConfig.none()
        a, _ = cache.get_or_compile("1 + 1", ALL)
        b, hit = cache.get_or_compile("1 + 1", baseline)
        assert not hit  # different toggle config, different plan
        assert b is not a
        assert len(cache) == 2

    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("1 + 1", ALL)
        cache.get_or_compile("2 + 2", ALL)
        cache.get_or_compile("1 + 1", ALL)  # refresh 1+1
        cache.get_or_compile("3 + 3", ALL)  # evicts 2+2
        assert cache.evictions == 1
        _, hit = cache.get_or_compile("1 + 1", ALL)
        assert hit
        _, hit = cache.get_or_compile("2 + 2", ALL)
        assert not hit  # was evicted

    def test_zero_capacity_compiles_every_time(self):
        cache = PlanCache(capacity=0)
        _, hit1 = cache.get_or_compile("1 + 1", ALL)
        _, hit2 = cache.get_or_compile("1 + 1", ALL)
        assert (hit1, hit2) == (False, False)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.get_or_compile("1 + 1", ALL)
        cache.clear()
        assert len(cache) == 0
        _, hit = cache.get_or_compile("1 + 1", ALL)
        assert not hit

    def test_concurrent_access_converges_to_one_entry(self):
        cache = PlanCache(capacity=8)
        queries = ["1 + 1", "2 + 2"] * 8

        with ThreadPoolExecutor(max_workers=8) as pool:
            compiled = list(
                pool.map(lambda q: cache.get_or_compile(q, ALL)[0], queries)
            )
        assert len(cache) == 2
        # every thread that asked for the same text got a usable plan
        assert all(c is not None for c in compiled)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == len(queries)
