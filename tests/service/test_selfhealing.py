"""Self-healing query-service behaviour: slot supervision, query-level
retry, load shedding, and the per-tenant circuit breaker.

Slot death is injected *in the service layer* (the worker thread raises
after claiming a request), so the same schedule is exercised identically
on the sequential, thread, and process backends — the determinism the
cross-backend parametrisation below pins down.  Breaker and shedding
tests run on scripted clocks from the injectable ``CLOCKS`` registry,
so no assertion depends on wall time.
"""

import json
import pickle
import threading

import pytest

from repro.errors import (
    AdmissionError,
    BackendError,
    CacheIOError,
    QueryCancelledError,
    QueryTimeoutError,
    RecoveryExhaustedError,
    SlotFailureError,
)
from repro.observability.clock import CLOCKS
from repro.service import QueryService, TenantQuota
from repro.service.events import QueryRetryEvent, SlotRestartEvent
from repro.service.service import _is_query_retryable

from tests.service.conftest import (
    COUNT_QUERY,
    FILTER_QUERY,
    GROUP_QUERY,
    GatedSource,
    make_rows,
    make_source,
)

BACKENDS = ["sequential", "thread", "process"]


def make_gated():
    return GatedSource(
        collections={
            "/s": [[json.dumps({"root": [{"results": make_rows(120)}]})]]
        }
    )


# -- retryability classification ----------------------------------------------


def test_retryable_classification_walks_cause_chain():
    exhausted = RecoveryExhaustedError((1,), (3,), "process")
    assert _is_query_retryable(exhausted)
    assert _is_query_retryable(SlotFailureError(0, "died"))
    assert _is_query_retryable(CacheIOError("store", "/t/x.seg", "ENOSPC"))
    wrapped = BackendError("boom", cause=SlotFailureError(1))
    assert _is_query_retryable(wrapped)
    assert not _is_query_retryable(QueryCancelledError("client cancel"))
    assert not _is_query_retryable(QueryTimeoutError(1.0, 2.0))
    assert not _is_query_retryable(ValueError("not classified"))
    # Terminal classifications win even with a retryable cause below.
    timeout = QueryTimeoutError(1.0, 2.0)
    timeout.__cause__ = SlotFailureError(0)
    assert not _is_query_retryable(timeout)


def test_selfhealing_errors_and_events_pickle_round_trip():
    for original in (
        SlotFailureError(2, "injected slot death"),
        CacheIOError("load", "/cache/ab.seg", "[Errno 5] EIO"),
    ):
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is type(original)
        assert str(clone) == str(original)
        assert clone.retryable
    for event in (
        SlotRestartEvent(slot=1, kind="worker-death", restarts=2, message="m"),
        QueryRetryEvent(
            request_id=7, tenant="t", attempt=1, slot=0, error="E", message="m"
        ),
    ):
        clone = pickle.loads(pickle.dumps(event))
        assert clone == event
        assert clone.to_dict() == event.to_dict()


# -- slot supervision + query retry -------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_slot_death_recovers_with_identical_results(backend):
    """An injected slot death is invisible to the client apart from the
    structured retry provenance: items match an undisturbed run exactly,
    the slot is restarted within budget, and ``stats()`` records both
    the restart and the retry.  One slot makes the schedule exact: every
    query lands on slot 0, and each injected death kills exactly one
    claimed request."""
    queries = (COUNT_QUERY, GROUP_QUERY, FILTER_QUERY)
    with QueryService(
        make_source(), backend=backend, max_concurrent_queries=1
    ) as baseline:
        expected = [baseline.execute(query).items for query in queries]

    with QueryService(
        make_source(), backend=backend, max_concurrent_queries=1
    ) as service:
        responses = []
        for index, query in enumerate(queries):
            if index < 2:
                service.inject_slot_failure(0)
            responses.append(service.execute(query))
        stats = service.stats()

    assert [r.items for r in responses] == expected
    assert [r.retries for r in responses] == [1, 1, 0]
    for response in responses[:2]:
        assert len(response.retry_causes) == 1
        assert "SlotFailureError" in response.retry_causes[0]
    assert stats["retried"] == 2
    deaths = [e for e in stats["slot_restarts"] if e["kind"] == "worker-death"]
    assert len(deaths) == 2
    assert all(e["slot"] == 0 for e in deaths)
    assert all(e["request_id"] is not None for e in deaths)
    assert [e["attempt"] for e in stats["query_retries"]] == [1, 1]
    assert stats["slots"] == {"total": 1, "live": 1, "abandoned": 0}
    assert stats["completed"] == 3 and stats["failed"] == 0


def test_slot_death_retries_on_sibling_slot():
    """With two slots and a death queued on each, one request walks the
    whole gauntlet: the retry prefers the sibling (which also dies)
    before a respawned slot finally serves it — two retries, two
    restarts, correct answer."""
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=2,
        max_query_retries=2,
    ) as service:
        service.inject_slot_failure(0)
        service.inject_slot_failure(1)
        response = service.execute(COUNT_QUERY)
        stats = service.stats()
    assert response.items == [120]
    assert response.retries == 2
    assert stats["retried"] == 2
    assert {e["slot"] for e in stats["slot_restarts"]} == {0, 1}
    assert stats["slots"] == {"total": 2, "live": 2, "abandoned": 0}


def test_slot_abandoned_when_restart_budget_spent():
    """With a zero restart budget a dying slot stays down: the in-flight
    request fails with a picklable SlotFailureError, and once every slot
    is abandoned new submissions are rejected with ``no-slots``."""
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=1,
        max_slot_restarts=0,
    ) as service:
        service.inject_slot_failure(0)
        with pytest.raises(SlotFailureError) as excinfo:
            service.execute(COUNT_QUERY)
        pickle.loads(pickle.dumps(excinfo.value))  # stays picklable
        stats = service.stats()
        assert stats["slots"] == {"total": 1, "live": 0, "abandoned": 1}
        assert [e["kind"] for e in stats["slot_restarts"]] == ["abandoned"]
        with pytest.raises(AdmissionError) as admission:
            service.submit(COUNT_QUERY)
        assert admission.value.reason == "no-slots"
        pickle.loads(pickle.dumps(admission.value))


def test_slot_death_exhausts_retry_budget():
    """One slot, retries allowed, but the retry's slot dies too: the
    request fails after ``max_query_retries`` re-executions with the
    attempt trail in ``stats()``."""
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=1,
        max_query_retries=1,
        max_slot_restarts=8,
    ) as service:
        # Two queued deaths: one for the original attempt, one for the
        # single permitted retry.
        service.inject_slot_failure(0)
        service.inject_slot_failure(0)
        with pytest.raises(SlotFailureError):
            service.execute(COUNT_QUERY)
        stats = service.stats()
        assert stats["retried"] == 1
        assert stats["failed"] == 1
        assert len(stats["slot_restarts"]) == 2
        assert stats["slots"]["live"] == 1  # respawned both times
        # The service still serves after the storm.
        assert service.execute(COUNT_QUERY).items == [120]


def test_retry_disabled_fails_fast():
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=1,
        max_query_retries=0,
    ) as service:
        service.inject_slot_failure(0)
        with pytest.raises(SlotFailureError):
            service.execute(COUNT_QUERY)
        stats = service.stats()
        assert stats["retried"] == 0
        assert stats["query_retries"] == []
        # The slot itself still healed.
        assert stats["slots"]["live"] == 1
        assert service.execute(COUNT_QUERY).items == [120]


def test_invalid_injection_slot_rejected():
    with QueryService(make_source(), backend="sequential") as service:
        with pytest.raises(ValueError):
            service.inject_slot_failure(99)
        with pytest.raises(ValueError):
            service.inject_slot_failure(-1)


# -- close() racing in-flight queries -----------------------------------------


def test_close_waits_for_inflight_query_then_succeeds():
    source = make_gated()
    service = QueryService(
        source, backend="sequential", max_concurrent_queries=1
    )
    ticket = service.submit(COUNT_QUERY)
    source.wait_entered()
    closer = threading.Thread(target=service.close)
    closer.start()
    # close() drains: the running query must still complete normally.
    source.release()
    closer.join(timeout=30)
    assert not closer.is_alive()
    assert ticket.result().items == [120]
    with pytest.raises(AdmissionError):
        service.submit(COUNT_QUERY)


def test_close_cancel_pending_races_running_query():
    source = make_gated()
    service = QueryService(
        source, backend="sequential", max_concurrent_queries=1
    )
    ticket = service.submit(COUNT_QUERY)
    source.wait_entered()
    closer = threading.Thread(
        target=service.close, kwargs={"cancel_pending": True}
    )
    closer.start()
    source.release()
    closer.join(timeout=30)
    assert not closer.is_alive()
    # The gate may release before or after the cancel flag lands; either
    # terminal state is legal, but the ticket must be done and close()
    # must have returned with no worker thread leaked.
    assert ticket.done()
    try:
        assert ticket.result().items == [120]
    except QueryCancelledError:
        pass
    for slot in service._slots:
        assert slot.thread is None or not slot.thread.is_alive()


def test_close_during_slot_respawn_is_clean():
    """Injected death concurrent with close(): no hang, no leaked
    threads, the ticket reaches a terminal state."""
    service = QueryService(
        make_source(), backend="sequential", max_concurrent_queries=2
    )
    service.inject_slot_failure(0)
    service.inject_slot_failure(1)
    ticket = service.submit(COUNT_QUERY)
    service.close()
    assert ticket.done()
    try:
        assert ticket.result().items == [120]
    except SlotFailureError:
        pass  # close won the race before the retry could run
    for slot in service._slots:
        assert slot.thread is None or not slot.thread.is_alive()


def test_respawn_failure_abandons_slot_instead_of_phantom(monkeypatch):
    """If the *respawn* itself fails (backend construction dies under
    the same resource exhaustion that killed the slot), the slot must be
    abandoned — not left counted as live with a dead thread, which would
    strand retried requests forever and keep ``_fail_orphans`` from ever
    firing."""
    service = QueryService(
        make_source(), backend="sequential", max_concurrent_queries=1
    )
    try:
        def broken_resolve(*args, **kwargs):
            raise RuntimeError("fork failed: out of resources")

        monkeypatch.setattr(
            "repro.service.service.resolve_backend", broken_resolve
        )
        service.inject_slot_failure(0)
        ticket = service.submit(COUNT_QUERY)
        with pytest.raises(SlotFailureError):
            ticket.result()
        stats = service.stats()
        assert stats["slots"] == {"total": 1, "live": 0, "abandoned": 1}
        events = stats["slot_restarts"]
        assert [event["kind"] for event in events] == [
            "worker-death",
            "abandoned",
        ]
        assert "respawn failed" in events[-1]["message"]
        assert "fork failed" in events[-1]["message"]
        # No phantom live slot: new submissions are rejected cleanly
        # instead of queueing behind a thread that will never run.
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(COUNT_QUERY)
        assert excinfo.value.reason == "no-slots"
        # The dying worker thread exits once supervision completes (the
        # ticket resolves slightly earlier, so join rather than poll).
        for slot in service._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=10.0)
                assert not slot.thread.is_alive()
    finally:
        service.close()


# -- load shedding -------------------------------------------------------------


def test_predicted_timeout_shedding_is_deterministic():
    """With a seeded duration history and a parked backlog, the
    predicted-wait formula (mean duration × backlog ÷ live slots) sheds
    exactly the submissions whose deadline it exceeds — no wall time
    involved."""
    source = make_gated()
    with QueryService(
        source,
        backend="sequential",
        max_concurrent_queries=1,
        clock="counter",
    ) as service:
        running = service.submit(COUNT_QUERY)
        source.wait_entered()
        queued = service.submit(FILTER_QUERY)
        # Recent history says queries take 10s on this clock.
        with service._lock:
            service._recent_durations.append(10.0)
        # backlog = 1 running + 1 queued over 1 live slot → 20s wait.
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(GROUP_QUERY, deadline_seconds=5.0)
        assert excinfo.value.reason == "predicted-timeout"
        assert excinfo.value.limit == 5.0
        assert excinfo.value.requested == 20.0
        pickle.loads(pickle.dumps(excinfo.value))
        # A deadline beyond the prediction is admitted...
        admitted = service.submit(GROUP_QUERY, deadline_seconds=30.0)
        # ...and no-deadline submissions are never shed.
        unbounded = service.submit(COUNT_QUERY)
        source.release()
        for ticket in (running, queued, admitted, unbounded):
            assert ticket.result().items
        stats = service.stats()
        assert stats["rejected_by_reason"] == {"predicted-timeout": 1}


def test_shedding_uses_tenant_deadline_ceiling():
    source = make_gated()
    quota = TenantQuota(deadline_ceiling_seconds=30.0, max_queued=8)
    with QueryService(
        source,
        backend="sequential",
        max_concurrent_queries=1,
        quotas={"capped": quota},
    ) as service:
        running = service.submit(COUNT_QUERY, tenant="capped")
        source.wait_entered()
        with service._lock:
            service._recent_durations.append(100.0)
        # No explicit deadline, but the tenant ceiling applies: predicted
        # 100 × 1 ÷ 1 = 100s > 30s ceiling.
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(FILTER_QUERY, tenant="capped")
        assert excinfo.value.reason == "predicted-timeout"
        source.release()
        assert running.result().items == [120]


# -- circuit breaker -----------------------------------------------------------


@pytest.fixture()
def scripted_clock(monkeypatch):
    state = {"now": 0.0}
    monkeypatch.setitem(CLOCKS, "scripted", lambda: lambda: state["now"])
    return state


def test_circuit_breaker_open_halfopen_close_cycle(scripted_clock):
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=1,
        clock="scripted",
        circuit_failure_threshold=2,
        circuit_cooldown_seconds=100.0,
    ) as service:
        bad = "count((("  # parse error → deterministic failure
        for _ in range(2):
            with pytest.raises(Exception):
                service.execute(bad, tenant="flaky")
        stats = service.stats()
        assert stats["circuit_breakers"]["flaky"] == {
            "state": "open",
            "consecutive_failures": 2,
        }
        # Open: rejected without touching a slot.
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(COUNT_QUERY, tenant="flaky")
        assert excinfo.value.reason == "circuit-open"
        pickle.loads(pickle.dumps(excinfo.value))
        # Other tenants are unaffected.
        assert service.execute(COUNT_QUERY, tenant="steady").items == [120]
        # Cooldown elapses on the scripted clock: one probe is admitted.
        scripted_clock["now"] = 150.0
        with pytest.raises(Exception):
            service.execute(bad, tenant="flaky")  # failing probe reopens
        with pytest.raises(AdmissionError) as reopened:
            service.submit(COUNT_QUERY, tenant="flaky")
        assert reopened.value.reason == "circuit-open"
        # Second cooldown, successful probe closes the breaker for good.
        scripted_clock["now"] = 300.0
        assert service.execute(COUNT_QUERY, tenant="flaky").items == [120]
        assert service.execute(COUNT_QUERY, tenant="flaky").items == [120]
        stats = service.stats()
        assert stats["circuit_breakers"]["flaky"] == {
            "state": "closed",
            "consecutive_failures": 0,
        }
        assert stats["rejected_by_reason"]["circuit-open"] == 2


def test_circuit_breaker_admits_single_probe(scripted_clock):
    source = make_gated()
    with QueryService(
        source,
        backend="sequential",
        max_concurrent_queries=1,
        clock="scripted",
        circuit_failure_threshold=1,
        circuit_cooldown_seconds=10.0,
    ) as service:
        with pytest.raises(Exception):
            service.execute("count(((", tenant="t")
        scripted_clock["now"] = 50.0
        probe = service.submit(COUNT_QUERY, tenant="t")
        source.wait_entered()
        # Probe in flight: a second submission is still rejected.
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(COUNT_QUERY, tenant="t")
        assert excinfo.value.reason == "circuit-open"
        source.release()
        assert probe.result().items == [120]
        assert service.stats()["circuit_breakers"]["t"]["state"] == "closed"


def test_halfopen_probe_not_leaked_by_later_rejection(scripted_clock):
    """A submission that passes the breaker check but is rejected by a
    *later* admission step (here: the tenant deadline ceiling) must not
    claim the half-open probe — pre-fix, the leaked ``probing`` flag was
    only cleared when a request finished, so with nothing in flight the
    tenant was locked out with ``circuit-open (probe in flight)``
    forever."""
    with QueryService(
        make_source(),
        backend="sequential",
        max_concurrent_queries=1,
        clock="scripted",
        circuit_failure_threshold=1,
        circuit_cooldown_seconds=10.0,
        quotas={"t": TenantQuota(deadline_ceiling_seconds=10.0)},
    ) as service:
        with pytest.raises(Exception):
            service.execute("count(((", tenant="t")
        assert service.stats()["circuit_breakers"]["t"]["state"] == "open"
        scripted_clock["now"] = 50.0  # cooldown elapsed → half-open
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(COUNT_QUERY, tenant="t", deadline_seconds=99.0)
        assert excinfo.value.reason == "deadline-quota"
        # The probe was not consumed by the rejected submission: a clean
        # submission is admitted as the probe and closes the breaker.
        assert service.execute(COUNT_QUERY, tenant="t").items == [120]
        assert service.stats()["circuit_breakers"]["t"] == {
            "state": "closed",
            "consecutive_failures": 0,
        }


def test_breaker_ignores_cancellations(scripted_clock):
    source = make_gated()
    with QueryService(
        source,
        backend="sequential",
        max_concurrent_queries=1,
        clock="scripted",
        circuit_failure_threshold=1,
    ) as service:
        ticket = service.submit(COUNT_QUERY, tenant="t")
        source.wait_entered()
        ticket.cancel("client went away")
        source.release()
        with pytest.raises(QueryCancelledError):
            ticket.result()
        # A cancel is not a service failure: the breaker stays closed.
        breakers = service.stats()["circuit_breakers"]
        assert breakers.get("t", {"state": "closed"})["state"] != "open"
        assert service.execute(COUNT_QUERY, tenant="t").items == [120]
