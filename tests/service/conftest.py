"""Shared fixtures for the query-service suite.

CI runs a ``REPRO_PROFILE=counter`` leg, but profiled requests bypass
the result cache (a cached response cannot carry a fresh execution
profile), which would flip this suite's cache-hit assertions.  The
autouse fixture pins the variable to the *explicitly off* value —
exactly the set-but-empty semantics :mod:`repro.envutil` documents.
"""

import json
import threading

import pytest

from repro.data.catalog import InMemorySource


@pytest.fixture(autouse=True)
def _profiling_off(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "")


def make_rows(count: int, offset: int = 0):
    return [
        {
            "date": f"d{(offset + i) % 7}",
            "dataType": "TMIN" if i % 2 == 0 else "TMAX",
            "station": f"S{i % 5}",
            "value": (offset + i * 13) % 101,
        }
        for i in range(count)
    ]


def make_source(records_per_partition: int = 60, partitions: int = 2):
    texts = [
        json.dumps(
            {"root": [{"results": make_rows(records_per_partition, p * 1000)}]}
        )
        for p in range(partitions)
    ]
    return InMemorySource(collections={"/s": [[t] for t in texts]})


class GatedSource(InMemorySource):
    """An InMemorySource whose scans block until :meth:`release`.

    Lets tests hold a query *running* deterministically: the worker
    thread parks inside the scan until the test releases the gate, so
    queue/cancel/quota behaviour can be asserted without sleeps.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._gate = threading.Event()
        self._entered = threading.Event()

    def release(self):
        self._gate.set()

    def wait_entered(self, timeout: float = 10.0):
        assert self._entered.wait(timeout), "no scan reached the gate"

    def _texts(self, name, partition):
        self._entered.set()
        assert self._gate.wait(30.0), "test never released the gate"
        return super()._texts(name, partition)


GROUP_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") return count($r("station"))'
)
COUNT_QUERY = (
    'count(for $r in collection("/s")("root")()("results")() return $r)'
)
FILTER_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'where $r("dataType") eq "TMIN" return $r("value")'
)
