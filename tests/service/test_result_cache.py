"""Result cache: LRU behaviour plus the source-fingerprint key."""

import json
import os

import pytest

from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.service import CachedResult, ResultCache, source_fingerprints


def entry(tag: str) -> CachedResult:
    return CachedResult(items=[tag], stats=None, degradation=None, strategy="s")


class TestResultCache:
    def test_get_put_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", entry("v"))
        hit = cache.get("k")
        assert hit.items == ["v"]
        assert cache.stats() == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        cache.get("a")  # refresh a
        cache.put("c", entry("c"))  # evicts b
        assert cache.evictions == 1
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.get("c") is not None

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.put("k", entry("v"))
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("k", entry("v"))
        cache.clear()
        assert cache.get("k") is None


class TestSourceFingerprints:
    def collection_dir(self, tmp_path, text='{"root": [{"results": []}]}'):
        directory = tmp_path / "data" / "c"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "part.json").write_text(text)
        return str(tmp_path / "data")

    def test_in_memory_sources_are_content_keyed(self):
        source = InMemorySource(collections={"/c": [['{"a": 1}']]})
        before = source_fingerprints(source, ["/c"], "stat")
        assert before is not None and len(before) == 1
        # identical texts fingerprint identically, regardless of mode
        assert source_fingerprints(source, ["/c"], "content") == before

    def test_file_change_changes_content_fingerprint(self, tmp_path):
        base = self.collection_dir(tmp_path, '{"a": 1}')
        catalog = CollectionCatalog(base)
        before = source_fingerprints(catalog, ["/c"], "content")
        path = os.path.join(base, "c", "part.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"a": 2}')  # same byte length
        after = source_fingerprints(catalog, ["/c"], "content")
        assert before != after

    def test_touch_does_not_change_content_fingerprint(self, tmp_path):
        base = self.collection_dir(tmp_path)
        catalog = CollectionCatalog(base)
        before = source_fingerprints(catalog, ["/c"], "content")
        path = os.path.join(base, "c", "part.json")
        os.utime(path, (1, 1))
        assert source_fingerprints(catalog, ["/c"], "content") == before

    def test_touch_changes_stat_fingerprint(self, tmp_path):
        base = self.collection_dir(tmp_path)
        catalog = CollectionCatalog(base)
        before = source_fingerprints(catalog, ["/c"], "stat")
        path = os.path.join(base, "c", "part.json")
        os.utime(path, (1, 1))
        assert source_fingerprints(catalog, ["/c"], "stat") != before

    def test_modes_never_cross_match(self, tmp_path):
        base = self.collection_dir(tmp_path)
        catalog = CollectionCatalog(base)
        stat = source_fingerprints(catalog, ["/c"], "stat")
        content = source_fingerprints(catalog, ["/c"], "content")
        assert stat != content  # the mode tag is part of the fingerprint

    def test_vanished_file_returns_none(self, tmp_path):
        base = self.collection_dir(tmp_path)
        catalog = CollectionCatalog(base)
        os.unlink(os.path.join(base, "c", "part.json"))
        assert source_fingerprints(catalog, ["/c"], "content") is None

    def test_unknown_source_type_returns_none(self):
        class Opaque:
            pass

        assert source_fingerprints(Opaque(), ["/c"], "content") is None

    def test_invalid_mode_rejected(self, tmp_path):
        from repro.errors import ReproError

        base = self.collection_dir(tmp_path)
        with pytest.raises(ReproError):
            source_fingerprints(CollectionCatalog(base), ["/c"], "mtime")

    def test_order_is_deterministic(self, tmp_path):
        directory = tmp_path / "data" / "c"
        directory.mkdir(parents=True)
        for i in range(3):
            (directory / f"p{i}.json").write_text(json.dumps({"i": i}))
        catalog = CollectionCatalog(str(tmp_path / "data"))
        first = source_fingerprints(catalog, ["/c"], "content")
        second = source_fingerprints(catalog, ["/c"], "content")
        assert first == second
        assert [label for label, _ in first] == sorted(
            label for label, _ in first
        )
