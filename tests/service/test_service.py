"""QueryService end-to-end: concurrency, caches, cancellation, lifecycle."""

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.catalog import CollectionCatalog
from repro.errors import AdmissionError, QueryCancelledError, ReproError
from repro.processor import JsonProcessor
from repro.service import QueryService, TenantQuota

from tests.service.conftest import (
    COUNT_QUERY,
    FILTER_QUERY,
    GROUP_QUERY,
    GatedSource,
    make_rows,
    make_source,
)

QUERIES = [COUNT_QUERY, FILTER_QUERY, GROUP_QUERY]


def references(source):
    with JsonProcessor(source, backend="sequential") as processor:
        return {query: processor.evaluate(query) for query in QUERIES}


class TestConcurrentEquivalence:
    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_threads_byte_identical_to_one_shot(self, backend):
        source = make_source(records_per_partition=40)
        expected = references(source)
        tenants = [f"t{i}" for i in range(4)]
        with QueryService(
            source,
            backend=backend,
            max_concurrent_queries=2,
            max_workers=2,
            max_queue_depth=64,
            default_quota=TenantQuota(max_concurrent=2, max_queued=16),
        ) as service:

            def run_tenant(tenant):
                rows = []
                for _ in range(2):
                    for query in QUERIES:
                        rows.append(
                            (query, service.execute(query, tenant=tenant))
                        )
                return rows

            with ThreadPoolExecutor(max_workers=len(tenants)) as pool:
                for rows in pool.map(run_tenant, tenants):
                    for query, response in rows:
                        assert response.items == expected[query]
                        assert response.backend == backend
            stats = service.stats()
            assert stats["completed"] == len(tenants) * len(QUERIES) * 2
            assert stats["failed"] == 0

    def test_rejects_backend_instances(self):
        from repro.hyracks.backends import SequentialBackend

        with pytest.raises(ValueError):
            QueryService(make_source(5), backend=SequentialBackend())

    def test_query_errors_route_to_the_ticket(self):
        with QueryService(make_source(5), backend="sequential") as service:
            with pytest.raises(ReproError):
                service.execute('count(collection("/missing")())')
            # the worker survives the failure and serves the next query
            assert service.execute(COUNT_QUERY).items == [10]
            assert service.stats()["failed"] == 1


class TestPlanCache:
    def test_warm_hits_across_tenants(self):
        with QueryService(make_source(5), backend="sequential") as service:
            cold = service.execute(COUNT_QUERY, tenant="a")
            warm = service.execute(COUNT_QUERY, tenant="b")
            assert not cold.plan_cache_hit
            assert warm.plan_cache_hit
            assert warm.items == cold.items
            stats = service.stats()["plan_cache"]
            assert stats["hits"] == 1
            assert stats["misses"] == 1


class TestResultCache:
    def make_base(self, tmp_path, rows):
        directory = tmp_path / "data" / "s"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "part.json").write_text(
            json.dumps({"root": [{"results": rows}]})
        )
        return str(tmp_path / "data")

    def test_hit_and_content_invalidation(self, tmp_path):
        base = self.make_base(tmp_path, make_rows(20))
        catalog = CollectionCatalog(base)
        with QueryService(
            catalog, backend="sequential", result_cache_size=8
        ) as service:
            first = service.execute(COUNT_QUERY)
            second = service.execute(COUNT_QUERY)
            assert not first.result_cache_hit
            assert second.result_cache_hit
            assert second.items == first.items == [20]
            # an in-place rewrite (same file, new bytes) invalidates
            path = os.path.join(base, "s", "part.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps({"root": [{"results": make_rows(21)}]}))
            third = service.execute(COUNT_QUERY)
            assert not third.result_cache_hit
            assert third.items == [21]

    def test_profiled_requests_bypass_the_cache(self, tmp_path):
        base = self.make_base(tmp_path, make_rows(10))
        with QueryService(
            CollectionCatalog(base), backend="sequential", result_cache_size=8
        ) as service:
            service.execute(COUNT_QUERY)
            profiled = service.execute(COUNT_QUERY, profile="counter")
            assert not profiled.result_cache_hit
            assert profiled.profile is not None
            # and a profiled run never populates the cache either
            assert service.stats()["result_cache"]["entries"] == 1

    def test_disabled_by_default(self):
        with QueryService(make_source(5), backend="sequential") as service:
            service.execute(COUNT_QUERY)
            response = service.execute(COUNT_QUERY)
            assert not response.result_cache_hit
            assert service.stats()["result_cache"] is None


class TestCancellation:
    def gated(self, **kwargs):
        source = GatedSource(
            collections={
                "/s": [
                    [
                        json.dumps(
                            {"root": [{"results": make_rows(600)}]}
                        )
                    ]
                ]
            }
        )
        service = QueryService(
            source, backend="sequential", max_concurrent_queries=1, **kwargs
        )
        return source, service

    def test_cancel_queued_request_never_executes(self):
        source, service = self.gated(
            default_quota=TenantQuota(max_concurrent=1, max_queued=4)
        )
        try:
            running = service.submit(COUNT_QUERY)
            source.wait_entered()
            queued = service.submit(COUNT_QUERY)
            assert queued.cancel("client went away")
            with pytest.raises(QueryCancelledError) as exc_info:
                queued.result(5)
            assert "client went away" in str(exc_info.value)
            source.release()
            assert running.result(30).items == [600]
            stats = service.stats()
            assert stats["cancelled"] == 1
            assert stats["completed"] == 1
        finally:
            source.release()
            service.close()

    def test_cancel_running_request_unwinds(self):
        source, service = self.gated()
        try:
            running = service.submit(COUNT_QUERY)
            source.wait_entered()
            assert running.cancel("operator abort")
            source.release()
            with pytest.raises(QueryCancelledError):
                running.result(30)
            assert service.stats()["cancelled"] == 1
        finally:
            source.release()
            service.close()

    def test_cancel_after_completion_returns_false(self):
        with QueryService(make_source(5), backend="sequential") as service:
            ticket = service.submit(COUNT_QUERY)
            ticket.result(30)
            assert not ticket.cancel()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_after(self):
        service = QueryService(make_source(5), backend="sequential")
        assert service.execute(COUNT_QUERY).items == [10]
        service.close()
        service.close()  # no-op
        with pytest.raises(AdmissionError):
            service.submit(COUNT_QUERY)

    def test_close_cancel_pending_unblocks_queued_requests(self):
        source = GatedSource(
            collections={"/s": [['{"root": [{"results": [{"v": 1}]}]}']]}
        )
        service = QueryService(
            source,
            backend="sequential",
            max_concurrent_queries=1,
            default_quota=TenantQuota(max_concurrent=1, max_queued=4),
        )
        running = service.submit(COUNT_QUERY)
        source.wait_entered()
        queued = service.submit(COUNT_QUERY)
        closer = threading.Thread(
            target=service.close, kwargs={"cancel_pending": True}
        )
        closer.start()
        with pytest.raises(QueryCancelledError):
            queued.result(10)
        source.release()
        closer.join(30)
        assert not closer.is_alive()
        # the running query either finished or was cancelled — but the
        # ticket resolved and the service is down either way
        assert running.done()

    def test_drain_waits_for_in_flight_queries(self):
        with QueryService(
            make_source(40), backend="sequential", max_concurrent_queries=2
        ) as service:
            tickets = [service.submit(GROUP_QUERY) for _ in range(4)]
            assert service.drain(timeout=30)
            assert all(ticket.done() for ticket in tickets)

    def test_response_telemetry_fields(self):
        with QueryService(make_source(5), backend="sequential") as service:
            response = service.execute(COUNT_QUERY, tenant="alice")
            assert response.tenant == "alice"
            assert response.query == COUNT_QUERY
            assert response.request_id == 1
            assert response.wall_seconds >= 0
            assert response.queue_seconds >= 0
            assert response.strategy
            assert response.degradation is not None
            assert not response.is_partial
