"""End-to-end tests for ``order by`` (the SORT operator)."""

import pytest

from repro import InMemorySource, JsonProcessor, RewriteConfig

DATA = (
    '{"root": [{"results": ['
    '{"station": "S2", "value": 30},'
    '{"station": "S1", "value": 10},'
    '{"station": "S3", "value": 20}]}]}'
)


@pytest.fixture
def processor():
    source = InMemorySource(collections={"/s": [[DATA]]})
    return JsonProcessor(source)


class TestOrderBy:
    def test_ascending(self, processor):
        values = processor.evaluate(
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("value") return $r("value")'
        )
        assert values == [10, 20, 30]

    def test_descending(self, processor):
        values = processor.evaluate(
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("value") descending return $r("value")'
        )
        assert values == [30, 20, 10]

    def test_string_keys(self, processor):
        stations = processor.evaluate(
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("station") return $r("station")'
        )
        assert stations == ["S1", "S2", "S3"]

    def test_multiple_keys(self):
        data = (
            '{"root": [{"results": ['
            '{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9}]}]}'
        )
        processor = JsonProcessor(
            InMemorySource(collections={"/s": [[data]]})
        )
        out = processor.evaluate(
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("a"), $r("b") return [$r("a"), $r("b")]'
        )
        assert out == [[0, 9], [1, 1], [1, 2]]

    def test_naive_config_agrees(self, processor):
        query = (
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("value") return $r("value")'
        )
        naive = JsonProcessor(
            InMemorySource(collections={"/s": [[DATA]]}),
            rewrite=RewriteConfig.none(),
        )
        assert naive.evaluate(query) == processor.evaluate(query)

    def test_multi_partition_global_order(self):
        part_a = '{"root": [{"results": [{"value": 5}, {"value": 1}]}]}'
        part_b = '{"root": [{"results": [{"value": 3}, {"value": 2}]}]}'
        processor = JsonProcessor(
            InMemorySource(collections={"/s": [[part_a], [part_b]]})
        )
        result = processor.execute(
            'for $r in collection("/s")("root")()("results")() '
            'order by $r("value") return $r("value")'
        )
        assert result.items == [1, 2, 3, 5]
        # A global sort cannot run partitioned.
        assert result.strategy == "global"

    def test_order_after_group_by(self, processor):
        out = processor.evaluate(
            'for $r in collection("/s")("root")()("results")() '
            'group by $s := $r("station") '
            "order by $s descending "
            "return $s"
        )
        assert out == ["S3", "S2", "S1"]
