"""Property-based correctness of the rewrite rules.

The central invariant of the whole system: **rewriting never changes
query results**.  Hypothesis generates random sensor-like datasets and
the tests compare every rule configuration's results against the naive
configuration, for each paper query shape.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InMemorySource, JsonProcessor, RewriteConfig
from repro.bench import queries

CONFIGS = [
    RewriteConfig.path_only(),
    RewriteConfig.path_and_pipelining(),
    RewriteConfig.all(),
    RewriteConfig(True, True, True, two_step_aggregation=False),
]

# Random sensor-shaped data: a few stations/dates/types so that joins
# and groups actually collide.
measurements = st.fixed_dictionaries(
    {
        "date": st.sampled_from(["20031225T00:00", "20040101T00:00", "20041225T00:00"]),
        "dataType": st.sampled_from(["TMIN", "TMAX", "WIND"]),
        "station": st.sampled_from(["S1", "S2", "S3"]),
        "value": st.integers(min_value=-50, max_value=50),
    }
)

records = st.builds(
    lambda results: {"metadata": {"count": len(results)}, "results": results},
    st.lists(measurements, max_size=6),
)

files = st.builds(
    lambda members: json.dumps({"root": members}), st.lists(records, max_size=3)
)

datasets = st.lists(st.lists(files, min_size=1, max_size=2), min_size=1, max_size=3)


def processor_for(partitions, config):
    source = InMemorySource(collections={"/sensors": partitions})
    return JsonProcessor(source, rewrite=config)


@pytest.mark.parametrize(
    "query_fn", [queries.q0, queries.q0b, queries.q1, queries.q1b, queries.q2]
)
@given(partitions=datasets)
@settings(max_examples=25, deadline=None)
def test_rewrites_preserve_results(query_fn, partitions):
    query = query_fn()
    baseline = processor_for(partitions, RewriteConfig.none()).evaluate(query)
    for config in CONFIGS:
        rewritten = processor_for(partitions, config).evaluate(query)
        # Group-by output order is implementation-defined; everything
        # else is order-preserving per partition concatenation order.
        if query_fn in (queries.q1, queries.q1b):
            assert sorted(rewritten) == sorted(baseline)
        elif query_fn is queries.q2:
            assert len(rewritten) == len(baseline)
            if baseline:
                assert rewritten[0] == pytest.approx(baseline[0])
        else:
            assert rewritten == baseline


@given(partitions=datasets)
@settings(max_examples=25, deadline=None)
def test_partitioned_equals_global_for_groups(partitions):
    """Two-step grouped aggregation equals single-site grouping."""
    query = queries.q1()
    two_step = processor_for(partitions, RewriteConfig.all()).evaluate(query)
    raw = processor_for(
        partitions, RewriteConfig(True, True, True, False)
    ).evaluate(query)
    assert sorted(two_step) == sorted(raw)


@given(partitions=datasets, data=st.data())
@settings(max_examples=20, deadline=None)
def test_partition_count_is_transparent(partitions, data):
    """Merging all partitions into one never changes results."""
    query = queries.q0()
    split = processor_for(partitions, RewriteConfig.all()).evaluate(query)
    merged = processor_for(
        [[text for part in partitions for text in part]],
        RewriteConfig.all(),
    ).evaluate(query)
    assert split == merged
