"""Binary segment files: shredding, fingerprints, atomic store/load."""

import os
import pickle

from repro.cache.segments import (
    _MAGIC,
    SegmentCache,
    _pack_column,
    _shred,
    canonical_projection,
    file_fingerprint,
    text_fingerprint,
)
from repro.jsonlib.path import parse_path

KEY = ("src", ("sha256", "abc"), "k=root/*", "fail")


def store(cache, items, key=KEY, counters=None, events=None):
    return cache.store(*key, items, counters or {"matched": len(items)},
                       events or [])


def load(cache, key=KEY):
    return cache.load(*key)


class TestCanonicalProjection:
    def test_step_kinds(self):
        path = parse_path('("root")()("results")(3)')
        assert canonical_projection(path) == "k=root/*/k=results/i=3"

    def test_empty_path(self):
        assert canonical_projection(parse_path("")) == ""

    def test_key_containing_separator_chars(self):
        # Keys are embedded verbatim; distinct paths must never alias.
        a = canonical_projection(parse_path('("x/y")'))
        b = canonical_projection(parse_path('("x")("y")'))
        assert a != b


class TestFingerprints:
    def test_file_fingerprint_tracks_truncate_append_mtime(self, tmp_path):
        target = tmp_path / "d.json"
        target.write_text("[1, 2, 3]", encoding="utf-8")
        original = file_fingerprint(str(target))
        target.write_text("[1, 2]", encoding="utf-8")  # truncate
        truncated = file_fingerprint(str(target))
        assert truncated != original
        with open(target, "a", encoding="utf-8") as handle:  # append
            handle.write(" [4]")
        appended = file_fingerprint(str(target))
        assert appended != truncated
        stat = os.stat(target)
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        assert file_fingerprint(str(target)) != appended  # touch

    def test_file_fingerprint_tracks_atomic_replace(self, tmp_path):
        # Same size and a back-dated mtime: the inode (and ctime) still
        # change on os.replace, so the rewrite invalidates.
        target = tmp_path / "d.json"
        target.write_text("[1, 2, 3]", encoding="utf-8")
        original = file_fingerprint(str(target))
        stat = os.stat(target)
        replacement = tmp_path / "d.json.new"
        replacement.write_text("[9, 8, 7]", encoding="utf-8")
        os.replace(replacement, target)
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert file_fingerprint(str(target)) != original

    def test_text_fingerprint_is_content_hash(self):
        assert text_fingerprint("abc") == text_fingerprint("abc")
        assert text_fingerprint("abc") != text_fingerprint("abd")


class TestShredding:
    def test_uniform_flat_dicts_shred_columnar(self):
        items = [{"a": 1.0, "b": 2}, {"a": 3.5, "b": 4}]
        keys, columns = _shred(items)
        assert keys == ("a", "b")
        assert columns == [[1.0, 3.5], [2, 4]]

    def test_non_uniform_rows_refused(self):
        assert _shred([{"a": 1}, {"b": 2}]) is None
        assert _shred([{"a": 1}, {"a": 1, "b": 2}]) is None
        assert _shred([{"a": 1}, 7]) is None
        assert _shred([]) is None
        assert _shred([{}]) is None

    def test_mismatched_key_order_refused(self):
        # load rebuilds rows as dict(zip(keys, row)): shredding rows
        # whose keys match only as a set would reorder them warm.
        assert _shred([{"a": 1, "b": 2}, {"b": 3, "a": 4}]) is None

    def test_pack_float_int_and_mixed_columns(self):
        assert _pack_column([1.5, 2.5])[0] == "f8"
        assert _pack_column([1, 2])[0] == "i8"
        assert _pack_column([1, 2.5])[0] == "py"
        assert _pack_column(["x"])[0] == "py"
        assert _pack_column([True, False])[0] == "py"  # bools stay exact
        assert _pack_column([1 << 80])[0] == "py"  # i8 overflow


class TestStoreLoad:
    def test_columnar_round_trip(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        items = [
            {"v": 1.5, "n": 2, "s": "x"},
            {"v": 2.5, "n": 3, "s": "y"},
        ]
        assert store(cache, items, counters={"matched": 2, "skipped": 1},
                     events=[(7, "bad")])
        segment = load(cache)
        assert segment.items == items
        assert all(
            type(a["n"]) is int and type(a["v"]) is float
            for a in segment.items
        )
        assert segment.counters == {"matched": 2, "skipped": 1}
        assert segment.skip_events == [(7, "bad")]

    def test_columnar_layout_on_disk(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [{"v": 1.5}, {"v": 2.5}])
        (segment_file,) = [
            name for name in os.listdir(tmp_path) if name.endswith(".seg")
        ]
        with open(tmp_path / segment_file, "rb") as handle:
            assert handle.read(len(_MAGIC)) == _MAGIC
            header = pickle.load(handle)
            payload = pickle.load(handle)
        assert header["layout"] == "columnar"
        assert header["columns"] == ("v",)
        (column,) = payload
        assert column[0] == "f8"  # raw array('d') bytes, not pickled objects
        assert isinstance(column[1], bytes)

    def test_row_round_trip(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        items = [1, "two", {"three": [3]}, None]
        assert store(cache, items)
        assert load(cache).items == items

    def test_mixed_key_order_round_trips_byte_identical(self, tmp_path):
        # Same keys, different insertion order: must come back with each
        # row's own order intact (rows layout), not keyed on row 0.
        cache = SegmentCache(str(tmp_path))
        items = [{"a": 1, "b": 2}, {"b": 3, "a": 4}]
        assert store(cache, items)
        loaded = load(cache).items
        assert loaded == items
        assert [list(row) for row in loaded] == [["a", "b"], ["b", "a"]]

    def test_miss_and_key_isolation(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        assert load(cache) is None
        store(cache, [1])
        other_policy = ("src", ("sha256", "abc"), "k=root/*", "skip_record")
        other_projection = ("src", ("sha256", "abc"), "k=other", "fail")
        other_fingerprint = ("src", ("sha256", "xyz"), "k=root/*", "fail")
        assert load(cache, other_policy) is None
        assert load(cache, other_projection) is None
        assert load(cache, other_fingerprint) is None
        assert load(cache).items == [1]

    def test_double_store_last_writer_wins(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [1])
        store(cache, [2])
        assert load(cache).items == [2]
        assert len(os.listdir(tmp_path)) == 1  # no temp litter

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [1])
        (segment_file,) = os.listdir(tmp_path)
        (tmp_path / segment_file).write_bytes(b"RSEG1\ngarbage")
        assert load(cache) is None
        (tmp_path / segment_file).write_bytes(b"NOPE!\n")
        assert load(cache) is None

    def test_malformed_header_and_payload_are_misses(self, tmp_path):
        # Defects beyond unpickling failures — header of the wrong
        # type, missing header fields, a payload whose shape doesn't
        # match the layout — must read as misses, never crash the scan.
        cache = SegmentCache(str(tmp_path))
        store(cache, [1])
        (segment_file,) = os.listdir(tmp_path)
        segment = tmp_path / segment_file

        def write(header, payload):
            with open(segment, "wb") as handle:
                handle.write(_MAGIC)
                pickle.dump(header, handle)
                pickle.dump(payload, handle)

        write(["not", "a", "dict"], [1])
        assert load(cache) is None
        write({"key": KEY}, [1])  # missing layout/counters/skip_events
        assert load(cache) is None
        write(
            {
                "key": KEY,
                "layout": "columnar",
                "columns": ("a",),
                "rows": 1,
                "counters": {},
                "skip_events": [],
            },
            ["not-a-(kind, data)-pair"],
        )
        assert load(cache) is None

    def test_transient_parse_failure_keeps_file(self, tmp_path, monkeypatch):
        # A MemoryError while unpickling a large payload is *not*
        # corruption: the segment must not be deleted (or reported as
        # corrupt), and must hit again once the pressure clears.
        import repro.cache.segments as segments

        cache = SegmentCache(str(tmp_path))
        store(cache, [1, 2, 3])
        (segment_file,) = os.listdir(tmp_path)

        class OOMPickle:
            UnpicklingError = pickle.UnpicklingError
            load = staticmethod(pickle.load)

            @staticmethod
            def loads(data):
                raise MemoryError("cannot unpickle payload")

        monkeypatch.setattr(segments, "pickle", OOMPickle)
        loaded, status = cache.load_classified(*KEY)
        assert loaded is None and status == "miss"
        assert os.listdir(tmp_path) == [segment_file]  # file survives
        monkeypatch.setattr(segments, "pickle", pickle)
        assert load(cache).items == [1, 2, 3]

    def test_store_failure_is_swallowed(self, tmp_path):
        missing = tmp_path / "file-not-dir"
        missing.write_text("x", encoding="utf-8")
        cache = SegmentCache(str(missing / "sub"))  # mkdir will fail
        assert store(cache, [1]) is False

    def test_cache_handle_pickles(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [{"v": 1.5}])
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.load(*KEY).items == [{"v": 1.5}]


class TestCrashSafety:
    """Torn writes, bit flips, and I/O-failure degradation."""

    def segment_file(self, tmp_path):
        (name,) = [n for n in os.listdir(tmp_path) if n.endswith(".seg")]
        return tmp_path / name

    def test_torn_write_is_detected_as_corrupt(self, tmp_path):
        # A truncated payload (the tail a crash mid-write would lose on
        # a non-atomic writer) must fail the checksum, read as a miss,
        # and delete the damaged file so the next store repairs it.
        cache = SegmentCache(str(tmp_path))
        store(cache, [{"v": 1.5}, {"v": 2.5}])
        segment = self.segment_file(tmp_path)
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-7])
        loaded, status = cache.load_classified(*KEY)
        assert loaded is None and status == "corrupt"
        assert not segment.exists()
        assert store(cache, [{"v": 9.0}])  # next store repairs
        assert cache.load(*KEY).items == [{"v": 9.0}]

    def test_bit_flip_fails_checksum(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [{"v": 1.5}, {"v": 2.5}])
        segment = self.segment_file(tmp_path)
        raw = bytearray(segment.read_bytes())
        raw[-3] ^= 0x40  # flip one payload bit
        segment.write_bytes(bytes(raw))
        loaded, status = cache.load_classified(*KEY)
        assert loaded is None and status == "corrupt"
        assert not segment.exists()

    def test_legacy_segment_without_checksum_is_plain_miss(self, tmp_path):
        # Pre-checksum files are unverifiable: rescan without counting
        # damage, and leave the upgrade to the next store.
        cache = SegmentCache(str(tmp_path))
        store(cache, [1, 2])
        segment = self.segment_file(tmp_path)
        raw = segment.read_bytes()
        header = pickle.loads(raw[len(_MAGIC):])
        del header["crc32"]
        with open(segment, "wb") as handle:
            handle.write(_MAGIC)
            pickle.dump(header, handle)
            handle.write(pickle.dumps([1, 2], pickle.HIGHEST_PROTOCOL))
        loaded, status = cache.load_classified(*KEY)
        assert loaded is None and status == "miss"
        assert segment.exists()  # not damage; not deleted

    def test_store_failure_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        cache = SegmentCache(str(tmp_path))

        def broken_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        assert store(cache, [1]) is False
        assert os.listdir(tmp_path) == []

    def test_fault_hook_enospc_disables_after_budget(self, tmp_path):
        calls = []

        def hook(operation):
            calls.append(operation)
            raise OSError(28, "No space left on device")

        cache = SegmentCache(str(tmp_path))
        cache.fault_hook = hook
        for _ in range(cache.max_io_errors):
            assert cache.disabled_reason is None
            assert store(cache, [1]) is False
        assert cache.disabled_reason is not None
        assert "No space left on device" in cache.disabled_reason
        # Disabled: stores are skipped and loads miss without touching
        # the hook (or the disk) again.
        assert store(cache, [1]) is False
        assert cache.load_classified(*KEY) == (None, "miss")
        assert calls == ["store"] * cache.max_io_errors

    def test_successful_io_resets_failure_run(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        flaky = {"remaining": cache.max_io_errors - 1}

        def hook(operation):
            if flaky["remaining"] > 0:
                flaky["remaining"] -= 1
                raise OSError(5, "Input/output error")

        cache.fault_hook = hook
        for _ in range(cache.max_io_errors - 1):
            assert store(cache, [1]) is False
        assert store(cache, [1]) is True  # recovery breaks the run
        flaky["remaining"] = cache.max_io_errors - 1
        for _ in range(cache.max_io_errors - 1):
            assert store(cache, [2]) is False
        assert cache.disabled_reason is None  # never 3 consecutive
        assert store(cache, [2]) is True

    def test_load_io_error_classified_and_counted(self, tmp_path):
        cache = SegmentCache(str(tmp_path))
        store(cache, [1])

        def hook(operation):
            if operation == "load":
                raise OSError(5, "Input/output error")

        cache.fault_hook = hook
        for _ in range(cache.max_io_errors):
            assert cache.load_classified(*KEY) == (None, "io-error")
        assert cache.disabled_reason is not None
