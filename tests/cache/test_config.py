"""Scan-mode and segment-cache configuration resolution."""

import pytest

from repro.cache import SCAN_MODES, SegmentCache, resolve_scan_mode
from repro.cache.config import (
    SCAN_MODE_ENV,
    SEGMENT_CACHE_ENV,
    resolve_segment_cache,
    validate_scan_mode,
)
from repro.errors import ReproError


class TestScanModeResolution:
    def test_registry(self):
        assert SCAN_MODES == ("ondemand", "text", "eager")

    def test_default_is_ondemand(self, monkeypatch):
        monkeypatch.delenv(SCAN_MODE_ENV, raising=False)
        assert resolve_scan_mode(None) == "ondemand"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCAN_MODE_ENV, "eager")
        assert resolve_scan_mode("text") == "text"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(SCAN_MODE_ENV, "eager")
        assert resolve_scan_mode(None) == "eager"

    @pytest.mark.parametrize("bad", ["", "fast", "ondemand ", "TEXT"])
    def test_invalid_mode_rejected(self, bad):
        with pytest.raises(ReproError, match="unknown scan mode"):
            validate_scan_mode(bad)

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SCAN_MODE_ENV, "warp")
        with pytest.raises(ReproError, match="unknown scan mode"):
            resolve_scan_mode(None)


class TestSegmentCacheResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(SEGMENT_CACHE_ENV, raising=False)
        assert resolve_segment_cache(None) is None

    def test_explicit_dir(self, tmp_path):
        cache = resolve_segment_cache(str(tmp_path))
        assert isinstance(cache, SegmentCache)
        assert cache.cache_dir == str(tmp_path)

    def test_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SEGMENT_CACHE_ENV, str(tmp_path))
        cache = resolve_segment_cache(None)
        assert isinstance(cache, SegmentCache)
        assert cache.cache_dir == str(tmp_path)

    def test_empty_string_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SEGMENT_CACHE_ENV, str(tmp_path))
        assert resolve_segment_cache("") is None
