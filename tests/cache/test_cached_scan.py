"""Cached scans: byte-identical accounting, invalidation, and replay.

The segment cache's contract is that turning it on (or hitting it warm)
changes *nothing observable* except speed and the ``cache_hits`` /
``cache_misses`` diagnostics: items, projection hit/skip counters,
degradation events, and errors — including mid-scan failures and
retried partitions — are identical with the uncached scan.
"""

import json

import pytest

from repro.cache.config import SCAN_MODES
from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.errors import FileScanError, ReproError
from repro.jsonlib.path import parse_path
from repro.jsonlib.textscan import ScanCounters
from repro.processor import JsonProcessor
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.resilience.faults import FaultPlan
from repro.resilience.report import DegradationReport

DOC = (
    '{"root": [{"results": ['
    '{"v": 1.5, "n": 1}, {"v": 2.5, "n": 2}, {"v": 3.5, "n": 3}'
    ']}], "noise": {"deep": [1, 2]}}'
)
PATH = parse_path('("root")()("results")()')
Q0 = (
    'for $r in collection("/sensors")("root")()("results")() '
    'where $r("n") ge 2 return $r("v")'
)


@pytest.fixture(autouse=True)
def _pinned_scan_env(monkeypatch):
    # Every test here builds its own scan/cache configuration and asserts
    # against an explicitly cache-off baseline; the CI leg that runs the
    # suite under REPRO_SEGMENT_CACHE must not leak into those baselines.
    monkeypatch.delenv("REPRO_SEGMENT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SCAN_MODE", raising=False)


def disk_catalog(tmp_path, text=DOC, **kwargs):
    data = tmp_path / "data.json"
    data.write_text(text, encoding="utf-8")
    catalog = CollectionCatalog(**kwargs)
    catalog.register("/sensors", [[str(data)]])
    return catalog, data


def counted_scan(catalog, expect_error=None):
    counters = ScanCounters()
    catalog.attach_scan_counters(counters)
    try:
        if expect_error is None:
            items = list(catalog.scan_collection("/sensors", PATH))
        else:
            with pytest.raises(expect_error):
                list(catalog.scan_collection("/sensors", PATH))
            items = None
    finally:
        catalog.attach_scan_counters(None)
    return items, counters


class TestWarmHits:
    def test_items_identical_and_counters_replayed(self, tmp_path):
        plain, _ = disk_catalog(tmp_path)
        cached, _ = disk_catalog(
            tmp_path, segment_cache_dir=str(tmp_path / "cache")
        )
        baseline_items, baseline = counted_scan(plain)
        cold_items, cold = counted_scan(cached)
        warm_items, warm = counted_scan(cached)
        assert cold_items == warm_items == baseline_items
        # Projection accounting is byte-identical across cache off /
        # cold / warm; only the cache diagnostics differ.
        for counters in (cold, warm):
            assert counters.matched == baseline.matched
            assert counters.skipped == baseline.skipped
        assert (cold.cache_misses, cold.cache_hits) == (1, 0)
        assert (warm.cache_misses, warm.cache_hits) == (0, 1)
        # A warm hit builds no structural index at all.
        assert cold.tape_records > 0
        assert warm.tape_records == 0
        assert (baseline.cache_hits, baseline.cache_misses) == (0, 0)

    @pytest.mark.parametrize("mode", SCAN_MODES)
    def test_every_scan_mode_caches_identically(self, tmp_path, mode):
        plain, _ = disk_catalog(tmp_path, scan_mode=mode)
        cached, _ = disk_catalog(
            tmp_path, scan_mode=mode,
            segment_cache_dir=str(tmp_path / "cache"),
        )
        baseline_items, baseline = counted_scan(plain)
        cold_items, _ = counted_scan(cached)
        warm_items, warm = counted_scan(cached)
        assert cold_items == warm_items == baseline_items
        assert warm.matched == baseline.matched
        assert warm.skipped == baseline.skipped


class TestInvalidation:
    def warm(self, catalog):
        counted_scan(catalog)  # cold populate
        items, counters = counted_scan(catalog)
        assert counters.cache_hits == 1
        return items

    def test_truncate_invalidates(self, tmp_path):
        catalog, data = disk_catalog(
            tmp_path, segment_cache_dir=str(tmp_path / "cache")
        )
        self.warm(catalog)
        data.write_text(
            '{"root": [{"results": [{"v": 9.5, "n": 9}]}]}',
            encoding="utf-8",
        )
        items, counters = counted_scan(catalog)
        assert counters.cache_misses == 1
        assert items == [{"v": 9.5, "n": 9}]

    def test_append_invalidates(self, tmp_path):
        catalog, data = disk_catalog(
            tmp_path, segment_cache_dir=str(tmp_path / "cache")
        )
        stale = self.warm(catalog)
        with open(data, "a", encoding="utf-8") as handle:
            handle.write(' {"root": [{"results": [{"v": 9.5, "n": 9}]}]}')
        items, counters = counted_scan(catalog)
        assert counters.cache_misses == 1
        assert items == stale + [{"v": 9.5, "n": 9}]

    def test_mtime_touch_invalidates(self, tmp_path):
        import os

        catalog, data = disk_catalog(
            tmp_path, segment_cache_dir=str(tmp_path / "cache")
        )
        items = self.warm(catalog)
        stat = os.stat(data)
        os.utime(data, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
        rescanned, counters = counted_scan(catalog)
        assert counters.cache_misses == 1  # same bytes, but no stale risk
        assert rescanned == items
        _, again = counted_scan(catalog)
        assert again.cache_hits == 1  # the new fingerprint was stored

    def test_in_memory_content_hash_has_no_staleness_window(self, tmp_path):
        source = InMemorySource(
            collections={"/sensors": [[DOC]]},
            segment_cache_dir=str(tmp_path / "cache"),
        )
        source.attach_scan_counters(counters := ScanCounters())
        first = list(source.scan_collection("/sensors", PATH))
        warm = list(source.scan_collection("/sensors", PATH))
        assert warm == first
        assert (counters.cache_misses, counters.cache_hits) == (1, 1)
        edited = DOC.replace("3.5", "9.5")
        source.add_collection("/sensors", [[edited]])
        changed = list(source.scan_collection("/sensors", PATH))
        assert changed != first
        assert counters.cache_misses == 2


class TestDegradationReplay:
    DIRTY = DOC + '\n{"root": [{"results": [}]}\n' + DOC.replace("1.5", "7.5")

    def events(self, catalog):
        report = DegradationReport()
        catalog.attach_degradation(report)
        try:
            items = list(catalog.scan_collection("/sensors", PATH))
        finally:
            catalog.attach_degradation(None)
        return items, report.skipped_records

    def test_warm_hit_replays_skip_events_byte_identically(self, tmp_path):
        plain, _ = disk_catalog(
            tmp_path, text=self.DIRTY, on_malformed="skip_record"
        )
        cached, _ = disk_catalog(
            tmp_path, text=self.DIRTY, on_malformed="skip_record",
            segment_cache_dir=str(tmp_path / "cache"),
        )
        baseline_items, baseline_events = self.events(plain)
        cold_items, cold_events = self.events(cached)
        warm_items, warm_events = self.events(cached)
        assert baseline_events  # the malformed record was really skipped
        assert cold_items == warm_items == baseline_items
        assert repr(cold_events) == repr(baseline_events)
        assert repr(warm_events) == repr(baseline_events)

    def test_policies_never_share_segments(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        skip, _ = disk_catalog(
            tmp_path, text=self.DIRTY, on_malformed="skip_record",
            segment_cache_dir=cache_dir,
        )
        items, counters = counted_scan(skip)
        assert counters.cache_misses == 1
        strict, _ = disk_catalog(
            tmp_path, text=self.DIRTY, segment_cache_dir=cache_dir
        )
        # Same bytes, same projection — but the fail policy must not
        # serve the skip_record segment: it has to raise.
        _, strict_counters = counted_scan(strict, expect_error=FileScanError)
        assert strict_counters.cache_hits == 0


class TestFailureParity:
    BROKEN = DOC + '\n{"root": [{"results": ['  # truncated tail record

    def test_mid_scan_failure_merges_partial_counters(self, tmp_path):
        plain, _ = disk_catalog(tmp_path, text=self.BROKEN)
        cached, _ = disk_catalog(
            tmp_path, text=self.BROKEN,
            segment_cache_dir=str(tmp_path / "cache"),
        )
        _, baseline = counted_scan(plain, expect_error=FileScanError)
        _, cold = counted_scan(cached, expect_error=FileScanError)
        assert cold.matched == baseline.matched
        assert cold.skipped == baseline.skipped
        # A failed scan must not be stored: the next attempt is another
        # miss with the same partial counters, not a bogus hit.
        _, again = counted_scan(cached, expect_error=FileScanError)
        assert again.cache_misses == 1
        assert again.cache_hits == 0
        assert again.matched == baseline.matched

    def test_skipped_file_not_stored(self, tmp_path):
        plain, _ = disk_catalog(
            tmp_path, text=self.BROKEN, on_malformed="skip_file"
        )
        cached, _ = disk_catalog(
            tmp_path, text=self.BROKEN, on_malformed="skip_file",
            segment_cache_dir=str(tmp_path / "cache"),
        )
        baseline_items, baseline = counted_scan(plain)
        cold_items, _ = counted_scan(cached)
        again_items, again = counted_scan(cached)
        assert baseline_items == cold_items == again_items == []
        assert again.cache_hits == 0
        assert again.cache_misses == 1
        assert again.matched == baseline.matched
        assert again.skipped == baseline.skipped


class TestProcessorIntegration:
    def processors(self, tmp_path, **kwargs):
        base = tmp_path / "data" / "sensors" / "partition0"
        if not base.exists():
            base.mkdir(parents=True)
            for i in range(2):
                (base / f"f{i}.json").write_text(
                    DOC.replace('"n": 1', f'"n": {i + 10}'), encoding="utf-8"
                )
        return JsonProcessor.from_directory(str(tmp_path / "data"), **kwargs)

    def test_unsupported_source_rejected(self):
        class Bare:
            def read_collection(self, name, partition=None):
                return []

            def partition_count(self, name):
                return 1

        with pytest.raises(ReproError, match="scan_mode"):
            JsonProcessor(source=Bare(), scan_mode="text")

    def test_projection_counters_identical_across_cache_states(
        self, tmp_path
    ):
        def datascan_counters(processor):
            with processor as p:
                p.execute(Q0)  # cold populate when cached
                (scan,) = p.profile(Q0).find("DATASCAN")
            return scan.counters

        plain = datascan_counters(self.processors(tmp_path))
        warm = datascan_counters(
            self.processors(
                tmp_path, segment_cache_dir=str(tmp_path / "cache")
            )
        )
        for key in ("projection_hits", "projection_skips", "items_scanned",
                    "tuples_out"):
            assert warm.get(key, 0) == plain.get(key, 0), key
        assert warm["cache_hits"] == 2  # both files served warm
        assert "cache_hits" not in plain

    def test_warm_profiles_byte_identical_across_backends(self, tmp_path):
        blobs = {}
        for backend in ("sequential", "thread", "process"):
            cache_dir = str(tmp_path / f"cache-{backend}")
            with self.processors(
                tmp_path, backend=backend, segment_cache_dir=cache_dir
            ) as p:
                p.execute(Q0)  # populate this backend's own cache
                blobs[backend] = json.dumps(
                    p.profile(Q0).to_dict(), sort_keys=True
                )
        assert blobs["sequential"] == blobs["thread"]
        assert blobs["sequential"] == blobs["process"]

    def test_retried_partition_matches_uncached_run(self, tmp_path):
        def run(**kwargs):
            with self.processors(
                tmp_path,
                fault_plan=FaultPlan().fail_partition(0, times=1),
                resilience=ResilienceConfig(
                    partition_policy="retry",
                    retry=RetryPolicy(
                        max_attempts=3, base_backoff_seconds=0.0, seed=7
                    ),
                ),
                **kwargs,
            ) as p:
                result = p.execute(Q0)
            return result.items, repr(result.degradation)

        plain_items, plain_degradation = run()
        cached_items, cached_degradation = run(
            segment_cache_dir=str(tmp_path / "cache")
        )
        warm_items, warm_degradation = run(
            segment_cache_dir=str(tmp_path / "cache")
        )
        assert plain_items == cached_items == warm_items
        # The retry is recorded identically whether the rescan was
        # served cold, stored mid-retry, or replayed from a warm hit.
        assert plain_degradation == cached_degradation == warm_degradation
