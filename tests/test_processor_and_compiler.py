"""Tests for the public facade (JsonProcessor) and compilation pipeline."""

import pytest

from repro import JsonProcessor, RewriteConfig, compile_query
from repro.errors import ParseError, ReproError
from repro.compiler.pipeline import CompiledQuery

BOOKS = '{"bookstore": {"book": [{"t": "A", "p": 10}, {"t": "B", "p": 20}]}}'


@pytest.fixture
def processor():
    return JsonProcessor.in_memory(
        collections={"/books": [[BOOKS]]},
        documents={"books.json": BOOKS},
    )


class TestFacade:
    def test_evaluate_collection(self, processor):
        titles = processor.evaluate(
            'for $b in collection("/books")("bookstore")("book")() '
            'return $b("t")'
        )
        assert titles == ["A", "B"]

    def test_evaluate_document(self, processor):
        prices = processor.evaluate(
            'json-doc("books.json")("bookstore")("book")()("p")'
        )
        assert prices == [10, 20]

    def test_execute_returns_measurements(self, processor):
        result = processor.execute('count(for $b in collection("/books")("bookstore")("book")() return $b)')
        assert result.items == [2]
        assert result.wall_seconds >= 0

    def test_literal_query_without_source(self):
        processor = JsonProcessor()
        assert processor.evaluate("(1 + 2) * 3") == [9]

    def test_constructors(self):
        processor = JsonProcessor()
        assert processor.evaluate('{"a": [1, 2], "b": null}') == [
            {"a": [1, 2], "b": None}
        ]

    def test_from_directory(self, tmp_path):
        directory = tmp_path / "c" / "partition0"
        directory.mkdir(parents=True)
        (directory / "f.json").write_text('{"x": 5}', encoding="utf-8")
        processor = JsonProcessor.from_directory(str(tmp_path))
        assert processor.evaluate(
            'for $d in collection("/c")("x") return $d'
        ) == [5]

    def test_unknown_collection_surfaces(self, processor):
        with pytest.raises(ReproError):
            processor.evaluate('for $x in collection("/nope")("a")() return $x')

    def test_parse_error_surfaces(self, processor):
        with pytest.raises(ParseError):
            processor.evaluate("for for for")

    def test_rewrite_config_respected(self, processor):
        naive = JsonProcessor.in_memory(
            collections={"/books": [[BOOKS]]}, rewrite=RewriteConfig.none()
        )
        query = (
            'for $b in collection("/books")("bookstore")("book")() '
            'return $b("t")'
        )
        assert naive.evaluate(query) == processor.evaluate(query)
        assert "DATASCAN" not in naive.compile(query).plan.explain()
        assert "DATASCAN" in processor.compile(query).plan.explain()


class TestCompileQuery:
    def test_returns_all_stages(self):
        compiled = compile_query('1 + 1')
        assert isinstance(compiled, CompiledQuery)
        assert compiled.naive_plan is not None
        assert compiled.plan is not None

    def test_trace_populated_when_rules_fire(self):
        compiled = compile_query(
            'for $x in collection("/c")("a")() return $x'
        )
        assert compiled.trace
        names = [name for name, _ in compiled.trace]
        assert "introduce-datascan" in names

    def test_explain_sections(self):
        compiled = compile_query(
            'for $x in collection("/c")("a")() return $x'
        )
        text = compiled.explain(show_trace=True)
        assert "naive plan" in text
        assert "rewritten plan" in text
        assert "rewrite trace" in text

    def test_config_label_in_explain(self):
        compiled = compile_query("1", RewriteConfig.none())
        assert "built-ins only" in compiled.explain()

    def test_default_config_is_all(self):
        compiled = compile_query("1")
        assert compiled.config == RewriteConfig.all()
