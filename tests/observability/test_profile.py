"""Tests for the operator-level query profiles.

Covers the clock registry, profile-config resolution (including the
``REPRO_PROFILE`` environment variable), the collector's snapshot/absorb
round trip, and the headline guarantee: profiles of a seeded run are
byte-identical across the sequential, thread, and process backends.
"""

import json

import pytest

from repro import JsonProcessor
from repro.observability import (
    CLOCKS,
    ProfileConfig,
    make_clock,
    resolve_profile_config,
)
from repro.observability.profile import (
    PROFILE_ENV_VAR,
    ProfileCollector,
    iter_plan_operators,
)
from repro.compiler.pipeline import compile_query

SENSORS = [
    [
        '{"root": [{"results": ['
        '{"dataType": "TMIN", "value": 1, "station": "s1", "date": "2013-01-01T00:00:00"},'
        '{"dataType": "TMAX", "value": 9, "station": "s1", "date": "2013-01-01T00:00:00"},'
        '{"dataType": "TMIN", "value": 2, "station": "s2", "date": "2013-01-02T00:00:00"}'
        "]}]}"
    ],
    [
        '{"root": [{"results": ['
        '{"dataType": "TMIN", "value": 3, "station": "s2", "date": "2013-01-03T00:00:00"},'
        '{"dataType": "TMAX", "value": 8, "station": "s3", "date": "2013-01-03T00:00:00"}'
        "]}]}"
    ],
]

Q0 = (
    'for $r in collection("/sensors")("root")()("results")() '
    'where $r("dataType") eq "TMIN" return $r("value")'
)
Q1 = (
    'for $r in collection("/sensors")("root")()("results")() '
    'group by $s := $r("station") return {"station": $s, "n": count($r)}'
)
Q2 = (
    'avg(for $r in collection("/sensors")("root")()("results")() '
    'where $r("dataType") eq "TMIN" return $r("value"))'
)
QUERIES = [Q0, Q1, Q2]


@pytest.fixture(autouse=True)
def _pinned_scan_env(monkeypatch):
    # Golden profiles pin exact DATASCAN counter lines; the CI leg that
    # runs the suite under REPRO_SEGMENT_CACHE would add cache_hits /
    # cache_misses fields to them.
    monkeypatch.delenv("REPRO_SEGMENT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SCAN_MODE", raising=False)


def processor(**kwargs):
    return JsonProcessor.in_memory({"/sensors": SENSORS}, **kwargs)


class TestClocks:
    def test_registry_names(self):
        assert set(CLOCKS) == {"wall", "counter", "none"}

    def test_counter_clock_is_deterministic(self):
        clock = make_clock("counter")
        assert [clock(), clock(), clock()] == [1.0, 2.0, 3.0]
        # Each instance starts fresh.
        assert make_clock("counter")() == 1.0

    def test_null_clock_is_constant(self):
        clock = make_clock("none")
        assert clock() == clock() == 0.0

    def test_wall_clock_is_monotonic(self):
        clock = make_clock("wall")
        assert clock() <= clock()

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="unknown profile clock"):
            make_clock("sundial")


class TestConfigResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert resolve_profile_config(None) is None
        assert resolve_profile_config(False) is None

    def test_explicit_forms(self):
        assert resolve_profile_config(True) == ProfileConfig(clock="wall")
        assert resolve_profile_config("counter") == ProfileConfig(clock="counter")
        config = ProfileConfig(clock="none")
        assert resolve_profile_config(config) is config

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "counter")
        assert resolve_profile_config(None) == ProfileConfig(clock="counter")
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        assert resolve_profile_config(None) == ProfileConfig(clock="wall")
        monkeypatch.setenv(PROFILE_ENV_VAR, "0")
        assert resolve_profile_config(None) is None

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ProfileConfig(clock="sundial")
        with pytest.raises(TypeError):
            resolve_profile_config(3.14)


class TestCollector:
    def test_snapshot_absorb_round_trip(self):
        plan = compile_query(Q0).plan
        config = ProfileConfig(clock="counter")
        worker = ProfileCollector(plan, config)
        ops = list(iter_plan_operators(plan))
        worker.add(ops[0], "tuples_out", 3)
        worker.set_detail(ops[0], "note", "x")
        coordinator = ProfileCollector(plan, config)
        coordinator.absorb(worker.data())
        coordinator.absorb(worker.data())
        merged = coordinator.node_data(0)
        assert merged["counters"] == {"tuples_out": 6}
        assert merged["details"] == {"note": "x"}

    def test_snapshot_is_plain_data(self):
        plan = compile_query(Q0).plan
        collector = ProfileCollector(plan, ProfileConfig(clock="counter"))
        collector.add(next(iter_plan_operators(plan)), "tuples_out")
        data = collector.data()
        # Snapshots cross process boundaries: plain picklable dicts only.
        import pickle

        assert pickle.loads(pickle.dumps(data)) == data

    def test_observe_counts_and_times(self):
        plan = compile_query(Q0).plan
        collector = ProfileCollector(plan, ProfileConfig(clock="counter"))
        op = next(iter_plan_operators(plan))
        assert list(collector.observe(op, iter([1, 2, 3]))) == [1, 2, 3]
        node = collector.node_data(collector._index[id(op)])
        assert node["counters"]["tuples_out"] == 3
        # counter clock: one tick per pull (including the StopIteration pull)
        assert node["seconds"] == 4.0


class TestQueryProfiles:
    def test_unprofiled_run_has_no_profile(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        with processor() as p:
            assert p.execute(Q0).profile is None

    def test_profile_shape_and_counters(self):
        with processor() as p:
            profile = p.profile(Q0)
        assert profile.strategy == "pipelined"
        assert profile.partitions == 2
        assert profile.clock == "counter"
        (scan,) = profile.find("DATASCAN")
        assert scan.counters["items_scanned"] == 5
        assert scan.counters["tuples_out"] == 5
        assert scan.counters["projection_hits"] == 5
        assert scan.counters["bytes_scanned"] > 0
        (select,) = profile.find("SELECT")
        assert select.counters["tuples_in"] == 5
        assert select.counters["tuples_out"] == 3
        assert profile.root.operator == "DISTRIBUTE-RESULT"
        assert profile.root.counters["tuples_out"] == 3

    def test_group_by_counters(self):
        with processor() as p:
            profile = p.profile(Q1)
        (group,) = profile.find("GROUP-BY")
        # Summed per-partition tables: {s1, s2} on partition 0, {s2, s3}
        # on partition 1.
        assert group.counters["groups"] == 4
        assert group.counters["tuples_in"] == 5
        assert group.counters["frames_emitted"] >= 1

    def test_rewrite_audit_attached(self):
        with processor() as p:
            profile = p.profile(Q0)
        assert profile.rewrite is not None
        assert profile.rewrite.total_firings > 0
        assert "introduce-datascan" in profile.rewrite.fire_counts()

    def test_exclusive_seconds_never_negative(self):
        with processor() as p:
            profile = p.profile(Q1)

        def walk(node):
            assert node.exclusive_seconds >= 0.0
            for child in node.children:
                walk(child)
            for nested in node.nested:
                walk(nested)

        walk(profile.root)

    def test_to_dict_is_json_serializable(self):
        with processor() as p:
            profile = p.profile(Q2)
        blob = json.dumps(profile.to_dict(), sort_keys=True)
        decoded = json.loads(blob)
        assert decoded["strategy"] == profile.strategy
        assert decoded["rewrite"]["total_firings"] == profile.rewrite.total_firings

    def test_env_variable_enables_profiling(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "counter")
        with processor() as p:
            result = p.execute(Q0)
        assert result.profile is not None
        assert result.profile.clock == "counter"

    def test_profile_overhead_only_when_enabled(self, monkeypatch):
        """The unprofiled path must not construct collectors or wrappers."""
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        with processor() as p:
            compiled = p.compile(Q0)
            result = p._executor.run(compiled.plan)
            assert result.profile is None
            assert p._executor._profile is None


class TestBackendParity:
    """Profiles must be byte-identical across every execution backend."""

    @pytest.mark.parametrize("query", QUERIES)
    def test_three_way_parity(self, query):
        blobs = {}
        for backend in ("sequential", "thread", "process"):
            with processor(backend=backend) as p:
                result = p.execute(query, profile="counter")
                blobs[backend] = json.dumps(
                    result.profile.to_dict(), sort_keys=True
                )
        assert blobs["sequential"] == blobs["thread"]
        assert blobs["sequential"] == blobs["process"]

    def test_repeated_runs_identical(self):
        with processor() as p:
            first = json.dumps(p.profile(Q1).to_dict(), sort_keys=True)
            second = json.dumps(p.profile(Q1).to_dict(), sort_keys=True)
        assert first == second


class TestGoldenExplain:
    def test_explain_profile_appends_rendered_profile(self):
        with processor() as p:
            report = p.explain(Q0, profile=True)
        expected = "\n".join(
            [
                "== query profile (strategy=pipelined, partitions=2, clock=counter) ==",
                "DISTRIBUTE-RESULT tuples_in=3 tuples_out=3 span=39",
                "  ASSIGN tuples_in=3 tuples_out=3 span=29",
                "    SELECT tuples_in=5 tuples_out=3 span=19",
                "      DATASCAN bytes_scanned=2740 items_scanned=5 "
                "projection_hits=5 projection_skips=0 "
                "tape_records=2 tape_tokens=32 tuples_out=5 span=7",
                "",
                "== rewrite audit ==",
            ]
        )
        assert expected in report
        assert "introduce-datascan" in report

    def test_explain_without_profile_unchanged(self):
        with processor() as p:
            report = p.explain(Q0)
        assert "query profile" not in report
        assert "== naive plan ==" in report
