"""Scan-level on_malformed policies across the data layer.

Covers the raw-text scanner's resync, parse_many_resilient, both
catalogs, the event projector's truncation, and the registration
bugfixes (empty partitions, empty base dirs).
"""

import pytest

from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.errors import FileScanError, JsonSyntaxError, ReproError
from repro.jsonlib.parser import parse_many_resilient
from repro.jsonlib.path import Path, parse_path
from repro.jsonlib.textscan import scan_text
from repro.resilience import DegradationReport

GOOD = '{"v": 1}\n{"v": 2}\n{"v": 3}\n'
BAD_MIDDLE = '{"v": 1}\n{"v": oops}\n{"v": 3}\n'


class TestScanTextSkipRecord:
    def test_fail_is_default(self):
        with pytest.raises(JsonSyntaxError):
            list(scan_text(BAD_MIDDLE, parse_path('("v")')))

    def test_skip_record_resyncs_at_newline(self):
        items = list(
            scan_text(BAD_MIDDLE, parse_path('("v")'), on_malformed="skip_record")
        )
        assert items == [1, 3]

    def test_skip_record_records_offsets(self):
        skips = []
        list(
            scan_text(
                BAD_MIDDLE,
                parse_path('("v")'),
                on_malformed="skip_record",
                recorder=lambda offset, message: skips.append((offset, message)),
            )
        )
        assert len(skips) == 1
        offset, message = skips[0]
        assert offset == BAD_MIDDLE.index('{"v": oops}')
        assert "oops"[0] in message  # mentions the unexpected character

    def test_no_trailing_newline(self):
        text = '{"v": 1}\n{"v":'
        items = list(
            scan_text(text, parse_path('("v")'), on_malformed="skip_record")
        )
        assert items == [1]

    def test_garbage_only(self):
        items = list(scan_text("!!!\n???", Path(), on_malformed="skip_record"))
        assert items == []

    def test_clean_text_unaffected(self):
        assert list(
            scan_text(GOOD, parse_path('("v")'), on_malformed="skip_record")
        ) == list(scan_text(GOOD, parse_path('("v")')))


class TestParseManyResilient:
    def test_equivalent_on_clean_input(self):
        assert parse_many_resilient(GOOD) == [{"v": 1}, {"v": 2}, {"v": 3}]

    def test_skips_malformed_values(self):
        items = parse_many_resilient(BAD_MIDDLE, on_malformed="skip_record")
        assert items == [{"v": 1}, {"v": 3}]


@pytest.fixture
def faulty_dir(tmp_path):
    base = tmp_path / "data"
    part = base / "events" / "partition0"
    part.mkdir(parents=True)
    (part / "good.json").write_text(GOOD, encoding="utf-8")
    (part / "bad.json").write_text(BAD_MIDDLE, encoding="utf-8")
    return base


class TestCollectionCatalogPolicies:
    def test_fail_wraps_with_file_path(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir))
        with pytest.raises(FileScanError) as excinfo:
            list(catalog.scan_collection("/events", parse_path('("v")')))
        assert excinfo.value.file_path.endswith("bad.json")
        assert isinstance(excinfo.value.__cause__, JsonSyntaxError)

    def test_read_collection_fail_wraps_with_file_path(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir))
        with pytest.raises(FileScanError) as excinfo:
            catalog.read_collection("/events")
        assert excinfo.value.file_path.endswith("bad.json")

    def test_skip_record_survives_and_records(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir), on_malformed="skip_record")
        report = DegradationReport()
        catalog.attach_degradation(report)
        items = list(catalog.scan_collection("/events", parse_path('("v")')))
        assert items == [1, 3, 1, 2, 3]  # bad.json sorts before good.json
        assert len(report.skipped_records) == 1
        assert report.skipped_records[0].source.endswith("bad.json")
        assert report.is_partial

    def test_skip_file_drops_whole_file(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir), on_malformed="skip_file")
        report = DegradationReport()
        catalog.attach_degradation(report)
        items = list(catalog.scan_collection("/events", parse_path('("v")')))
        # bad.json (entirely dropped) sorts before good.json
        assert items == [1, 2, 3]
        assert len(report.skipped_files) == 1
        assert report.skipped_files[0].file_path.endswith("bad.json")

    def test_read_collection_skip_record(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir), on_malformed="skip_record")
        items = catalog.read_collection("/events")
        assert {"v": 2} in items and len(items) == 5

    def test_stream_collection_truncates_broken_file(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir), on_malformed="skip_record")
        report = DegradationReport()
        catalog.attach_degradation(report)
        items = list(catalog.stream_collection("/events", parse_path('("v")')))
        # The event projector cannot resync: bad.json is truncated from
        # the chunk containing the error (here: the whole small file),
        # and good.json is untouched.
        assert items == [1, 2, 3]
        assert len(report.skipped_files) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CollectionCatalog(on_malformed="explode")

    def test_unattached_skips_do_not_crash(self, faulty_dir):
        catalog = CollectionCatalog(str(faulty_dir), on_malformed="skip_record")
        items = list(catalog.scan_collection("/events", parse_path('("v")')))
        assert items  # skips simply go unrecorded


class TestRegistrationValidation:
    def test_empty_partition_dir_raises(self, tmp_path):
        empty = tmp_path / "c" / "partition0"
        empty.mkdir(parents=True)
        catalog = CollectionCatalog()
        with pytest.raises(ReproError, match="partition0"):
            catalog.register_directory("/c", str(tmp_path / "c"))

    def test_one_empty_among_full_partitions_raises(self, tmp_path):
        base = tmp_path / "c"
        (base / "partition0").mkdir(parents=True)
        (base / "partition0" / "a.json").write_text("1", encoding="utf-8")
        (base / "partition1").mkdir()
        catalog = CollectionCatalog()
        with pytest.raises(ReproError, match="partition1"):
            catalog.register_directory("/c", str(base))

    def test_flat_dir_without_json_raises(self, tmp_path):
        flat = tmp_path / "flat"
        flat.mkdir()
        (flat / "README.txt").write_text("no data", encoding="utf-8")
        catalog = CollectionCatalog()
        with pytest.raises(ReproError, match="flat"):
            catalog.register_directory("/flat", str(flat))

    def test_discover_empty_base_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match=str(tmp_path)):
            CollectionCatalog(str(tmp_path))


class TestInMemorySourcePolicies:
    def _source(self, on_malformed):
        return InMemorySource(
            {"/events": [[GOOD], [BAD_MIDDLE]]}, on_malformed=on_malformed
        )

    def test_fail_wraps_with_label(self):
        source = self._source("fail")
        with pytest.raises(FileScanError) as excinfo:
            list(source.scan_collection("/events", parse_path('("v")')))
        assert "partition 1" in str(excinfo.value)

    def test_skip_record(self):
        source = self._source("skip_record")
        report = DegradationReport()
        source.attach_degradation(report)
        items = list(source.scan_collection("/events", parse_path('("v")')))
        assert items == [1, 2, 3, 1, 3]
        assert len(report.skipped_records) == 1
        assert "partition 1" in report.skipped_records[0].source

    def test_skip_file(self):
        source = self._source("skip_file")
        report = DegradationReport()
        source.attach_degradation(report)
        items = list(source.scan_collection("/events", parse_path('("v")')))
        assert items == [1, 2, 3]
        assert len(report.skipped_files) == 1

    def test_read_collection_policies(self):
        assert self._source("skip_record").read_collection("/events") == [
            {"v": 1},
            {"v": 2},
            {"v": 3},
            {"v": 1},
            {"v": 3},
        ]
        assert self._source("skip_file").read_collection("/events") == [
            {"v": 1},
            {"v": 2},
            {"v": 3},
        ]
