"""Spill-write fault injection and cancellation-safe cleanup."""

import json
import os

import pytest

from repro.errors import PartitionExecutionError, QueryCancelledError
from repro.data.catalog import InMemorySource
from repro.hyracks.limits import CancellationToken
from repro.processor import JsonProcessor
from repro.resilience.faults import FaultPlan, PermanentFaultError
from repro.resilience.policies import ResilienceConfig
from repro.resilience.retry import RetryPolicy


def make_source(records: int = 150):
    texts = []
    for p in range(2):
        rows = [
            {"date": f"d{i % 13}", "dataType": "TMIN",
             "station": f"S{i % 5}", "value": i + p}
            for i in range(records)
        ]
        texts.append(json.dumps({"root": [{"results": rows}]}))
    return InMemorySource(collections={"/s": [[t] for t in texts]})


GROUP_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") return count($r("station"))'
)


@pytest.fixture
def spill_root(tmp_path):
    root = tmp_path / "spill"
    root.mkdir()
    yield str(root)
    assert os.listdir(str(root)) == [], "spill run files leaked"


class TestSpillFaultInjection:
    def test_transient_fault_recovered_by_retry(self, spill_root):
        source = make_source()
        oracle = JsonProcessor(source=source).execute(GROUP_QUERY)
        plan = FaultPlan(seed=3).fail_spill(1, times=2)
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=512,
            spill_dir=spill_root,
            fault_plan=plan,
            resilience=ResilienceConfig(
                partition_policy="retry", retry=RetryPolicy(max_attempts=4)
            ),
        )
        result = processor.execute(GROUP_QUERY)
        assert result.items == oracle.items
        assert result.degradation.retry_count == 2
        assert not result.is_partial

    def test_fail_fast_names_the_partition(self, spill_root):
        plan = FaultPlan(seed=3).fail_spill(1, times=1)
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=512,
            spill_dir=spill_root,
            fault_plan=plan,
        )
        with pytest.raises(PartitionExecutionError) as exc_info:
            processor.execute(GROUP_QUERY)
        assert "partition 1" in str(exc_info.value)

    def test_permanent_fault_with_skip_degrades(self, spill_root):
        plan = FaultPlan(seed=3).fail_spill(0, permanent=True)
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=512,
            spill_dir=spill_root,
            fault_plan=plan,
            resilience=ResilienceConfig(partition_policy="skip_partition"),
        )
        result = processor.execute(GROUP_QUERY)
        assert result.is_partial
        assert [s.partition for s in result.degradation.skipped_partitions] == [0]

    def test_spill_fault_counters_are_deterministic(self):
        plan = FaultPlan(seed=3).fail_spill(0, times=2)
        plan.spill_write_attempt(None)  # global scans pass through
        with pytest.raises(Exception):
            plan.spill_write_attempt(0)
        with pytest.raises(Exception):
            plan.spill_write_attempt(0)
        plan.spill_write_attempt(0)  # third write succeeds
        plan.reset()
        with pytest.raises(Exception):
            plan.spill_write_attempt(0)  # counters rewound

    def test_permanent_spill_fault_is_not_retryable(self):
        plan = FaultPlan().fail_spill(0, permanent=True)
        with pytest.raises(PermanentFaultError) as exc_info:
            plan.spill_write_attempt(0)
        assert exc_info.value.retryable is False


class TestCancellationCleanup:
    def test_cancel_mid_spill_leaves_no_temp_files(self, spill_root):
        """Cancel fired from inside the spill path: the fault hook runs
        on every spill write, so cancelling there guarantees the query
        was mid-spill when the limit was observed."""
        token = CancellationToken()

        class CancelOnSpill:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def check_spill_fault(self, partition):
                token.cancel("mid-spill cancel")
                token.check()

        source = CancelOnSpill(make_source())
        processor = JsonProcessor(
            source=source,
            memory_budget_bytes=512,
            spill_dir=spill_root,
        )
        with pytest.raises(QueryCancelledError) as exc_info:
            processor.execute(GROUP_QUERY, cancellation=token)
        report = exc_info.value.degradation
        assert report.cancellations
        assert report.cancellations[0].kind == "cancelled"
        # spill_root leak check runs in the fixture teardown

    def test_cancellation_not_counted_as_partial(self, spill_root):
        token = CancellationToken()
        token.cancel()
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=512,
            spill_dir=spill_root,
        )
        with pytest.raises(QueryCancelledError) as exc_info:
            processor.execute(GROUP_QUERY, cancellation=token)
        report = exc_info.value.degradation
        assert not report.is_partial  # nothing was skipped, it unwound
        assert report.cancellations

    def test_report_dict_includes_cancellations(self, spill_root):
        token = CancellationToken()
        token.cancel("shed")
        processor = JsonProcessor(source=make_source())
        with pytest.raises(QueryCancelledError) as exc_info:
            processor.execute(GROUP_QUERY, cancellation=token)
        payload = exc_info.value.degradation.to_dict()
        assert payload["cancellations"]
        assert payload["cancellations"][0]["kind"] == "cancelled"
