"""Unit tests for RetryPolicy and FaultPlan determinism."""

import pytest

from repro.resilience import (
    FaultPlan,
    PermanentFaultError,
    RetryPolicy,
    TransientFaultError,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_backoff_seconds=0.1, multiplier=2.0, jitter=0.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        c = RetryPolicy(seed=43)
        for attempt in (1, 2, 3):
            assert a.backoff_seconds(attempt) == b.backoff_seconds(attempt)
        assert a.backoff_seconds(1) != c.backoff_seconds(1)

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_backoff_seconds=1.0, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 10):
            assert 1.0 <= policy.backoff_seconds(attempt) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_seconds=-1)


class TestFaultPlan:
    def test_transient_fault_clears_after_n_attempts(self):
        plan = FaultPlan()
        plan.fail_partition(1, times=2)
        with pytest.raises(TransientFaultError):
            plan.begin_attempt("/c", 1)
        with pytest.raises(TransientFaultError):
            plan.begin_attempt("/c", 1)
        plan.begin_attempt("/c", 1)  # third attempt succeeds

    def test_permanent_fault_never_clears(self):
        plan = FaultPlan()
        plan.fail_partition(0, permanent=True)
        for _ in range(5):
            with pytest.raises(PermanentFaultError):
                plan.begin_attempt("/c", 0)

    def test_faults_are_partition_scoped(self):
        plan = FaultPlan()
        plan.fail_partition(1, times=1)
        plan.begin_attempt("/c", 0)
        plan.begin_attempt("/c", 2)
        plan.begin_attempt("/c", None)  # global scans pass through

    def test_collection_scoped_fault(self):
        plan = FaultPlan()
        plan.fail_partition(0, times=10, collection="/broken")
        plan.begin_attempt("/healthy", 0)
        with pytest.raises(TransientFaultError):
            plan.begin_attempt("/broken", 0)

    def test_reset_rewinds_attempt_counters(self):
        plan = FaultPlan()
        plan.fail_partition(0, times=1)
        with pytest.raises(TransientFaultError):
            plan.begin_attempt("/c", 0)
        plan.begin_attempt("/c", 0)
        plan.reset()
        with pytest.raises(TransientFaultError):
            plan.begin_attempt("/c", 0)

    def test_corruption_is_deterministic_and_seed_dependent(self):
        a = FaultPlan(seed=7).corrupt_records(1, fraction=0.1)
        b = FaultPlan(seed=7).corrupt_records(1, fraction=0.1)
        c = FaultPlan(seed=8).corrupt_records(1, fraction=0.1)
        draws_a = [a.should_corrupt("/c", 1, i) for i in range(500)]
        draws_b = [b.should_corrupt("/c", 1, i) for i in range(500)]
        draws_c = [c.should_corrupt("/c", 1, i) for i in range(500)]
        assert draws_a == draws_b
        assert draws_a != draws_c
        fraction = sum(draws_a) / len(draws_a)
        assert 0.02 < fraction < 0.25  # roughly the requested rate

    def test_corruption_fraction_bounds(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.corrupt_records(0, fraction=1.5)
        plan.corrupt_records(0, fraction=1.0)
        assert plan.should_corrupt("/c", 0, 123)
        assert not plan.should_corrupt("/c", None, 123)

    def test_injected_delay(self):
        plan = FaultPlan()
        plan.delay_partition(2, 0.5).delay_partition(2, 0.25)
        assert plan.injected_delay(2) == pytest.approx(0.75)
        assert plan.injected_delay(0) == 0.0
        assert plan.injected_delay(None) == 0.0
