"""Cache I/O fault injection end to end: ``fail_cache_io`` through the
processor, disk-full degradation to cache-off, and corrupt-segment
detection surfacing as structured degradation events.
"""

import json
import os
import pickle

import pytest

from repro import FaultPlan, InMemorySource, JsonProcessor
from repro.resilience.report import CacheEvent, DegradationReport

PARTITIONS = 3
RECORDS = 40
QUERY = 'for $r in collection("/events") return $r("v")'


def make_source():
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps({"v": p * 1000 + i}) for i in range(RECORDS)
                )
            ]
            for p in range(PARTITIONS)
        ]
    }
    return InMemorySource(collections)


def expected_items():
    return [p * 1000 + i for p in range(PARTITIONS) for i in range(RECORDS)]


class TestFaultPlanCacheIO:
    def test_injected_error_is_enospc_oserror(self):
        plan = FaultPlan().fail_cache_io(permanent=True)
        with pytest.raises(OSError) as excinfo:
            plan.cache_io_attempt("store")
        assert excinfo.value.errno == 28  # ENOSPC — the full-disk shape

    def test_operation_scoping(self):
        plan = FaultPlan().fail_cache_io(permanent=True, operation="load")
        plan.cache_io_attempt("store")  # stores pass through
        with pytest.raises(OSError):
            plan.cache_io_attempt("load")

    def test_transient_fault_clears_and_reset_rewinds(self):
        plan = FaultPlan().fail_cache_io(times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                plan.cache_io_attempt()
        plan.cache_io_attempt()  # third attempt clean
        plan.reset()
        with pytest.raises(OSError):
            plan.cache_io_attempt()

    def test_operation_validated(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_cache_io(operation="delete")

    def test_wrap_hooks_segment_cache(self, tmp_path):
        source = make_source()
        source.configure_scan(segment_cache_dir=str(tmp_path))
        plan = FaultPlan().fail_cache_io(permanent=True)
        wrapped = plan.wrap(source)
        assert wrapped.segment_cache.fault_hook == plan.cache_io_attempt

    def test_hook_pickles_with_the_cache(self, tmp_path):
        source = make_source()
        source.configure_scan(segment_cache_dir=str(tmp_path))
        plan = FaultPlan().fail_cache_io(permanent=True)
        plan.wrap(source)
        clone = pickle.loads(pickle.dumps(source.segment_cache))
        with pytest.raises(OSError):
            clone.fault_hook("store")


class TestDiskFullDegradesToCacheOff:
    def run_query(self, tmp_path, plan=None):
        processor = JsonProcessor(
            source=make_source(),
            fault_plan=plan,
            segment_cache_dir=str(tmp_path),
        )
        try:
            return processor.execute(QUERY)
        finally:
            processor.close()

    def test_results_identical_with_cache_dead(self, tmp_path):
        baseline = self.run_query(tmp_path / "healthy")
        assert baseline.items == expected_items()

        plan = FaultPlan().fail_cache_io(permanent=True)
        degraded = self.run_query(tmp_path / "dead", plan=plan)
        assert degraded.items == baseline.items
        # Nothing was dropped: cache death degrades performance, never
        # results.
        assert not degraded.is_partial
        assert degraded.degradation.is_degraded
        kinds = {event.kind for event in degraded.degradation.cache_events}
        assert "disabled" in kinds
        assert kinds <= {"io-error", "disabled"}
        # The dead cache never published a segment.
        dead_dir = tmp_path / "dead"
        assert not os.path.isdir(dead_dir) or not any(
            name.endswith(".seg") for name in os.listdir(dead_dir)
        )

    def test_degradation_report_is_deterministic(self, tmp_path):
        reports = []
        for run in ("a", "b"):
            result = self.run_query(
                tmp_path / run,
                plan=FaultPlan().fail_cache_io(permanent=True),
            )
            reports.append(
                json.dumps(result.degradation.to_dict(), sort_keys=True)
            )
        assert reports[0] == reports[1]
        payload = json.loads(reports[0])
        assert payload["cache_events"], "cache events must be serialized"
        for event in payload["cache_events"]:
            assert set(event) == {"kind", "source", "message"}


class TestCorruptSegmentsDetected:
    def test_bit_flipped_segments_rescan_with_event(self, tmp_path):
        cache_dir = tmp_path / "cache"
        primer = JsonProcessor(
            source=make_source(), segment_cache_dir=str(cache_dir)
        )
        try:
            warm = primer.execute(QUERY)
        finally:
            primer.close()
        assert warm.items == expected_items()
        segments = [
            name for name in os.listdir(cache_dir) if name.endswith(".seg")
        ]
        assert segments, "priming must have stored segments"
        for name in segments:
            path = cache_dir / name
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF
            path.write_bytes(bytes(raw))

        reader = JsonProcessor(
            source=make_source(), segment_cache_dir=str(cache_dir)
        )
        try:
            result = reader.execute(QUERY)
        finally:
            reader.close()
        assert result.items == expected_items()
        assert not result.is_partial
        corrupt = [
            event
            for event in result.degradation.cache_events
            if event.kind == "corrupt"
        ]
        assert len(corrupt) == PARTITIONS
        assert result.degradation.is_degraded
        # The damaged files were deleted and rewritten by the rescan.
        for name in os.listdir(cache_dir):
            assert not name.endswith(".tmp")


class TestCacheEventPlumbing:
    def test_events_dedup_and_absorb(self):
        report = DegradationReport()
        report.record_cache_event("corrupt", "/s[partition 0]", "bad crc")
        report.record_cache_event("corrupt", "/s[partition 0]", "bad crc")
        report.record_cache_event("io-error", "/s[partition 0]", "EIO")
        assert len(report.cache_events) == 2

        other = DegradationReport()
        other.record_cache_event("corrupt", "/s[partition 0]", "bad crc")
        other.record_cache_event("disabled", "/s[partition 1]", "cache off")
        report.absorb(other)
        assert len(report.cache_events) == 3
        assert report.is_degraded
        assert any("segment cache" in warning for warning in report.warnings)

    def test_cache_event_picklable(self):
        event = CacheEvent(kind="corrupt", source="/s[partition 0]", message="m")
        assert pickle.loads(pickle.dumps(event)) == event
