"""Partition policies on the executor: every combination, deterministic."""

import json

import pytest

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    ResilienceConfig,
    RetryPolicy,
)
from repro.errors import PartitionExecutionError
from repro.resilience import TransientFaultError

QUERY = 'for $r in collection("/events") return $r("v")'
COUNT_QUERY = 'count(for $r in collection("/events") return $r)'


def make_source(on_malformed="fail", partitions=4, per_partition=5):
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps({"v": p * 100 + i}) for i in range(per_partition)
                )
            ]
            for p in range(partitions)
        ]
    }
    return InMemorySource(collections, on_malformed=on_malformed)


def all_values(partitions=4, per_partition=5):
    return [p * 100 + i for p in range(partitions) for i in range(per_partition)]


def make_processor(plan=None, config=None, on_malformed="fail", **kwargs):
    return JsonProcessor(
        source=make_source(on_malformed=on_malformed),
        fault_plan=plan,
        resilience=config,
        **kwargs,
    )


class TestFailFast:
    def test_clean_run_has_empty_degradation(self):
        result = make_processor().execute(QUERY)
        assert result.items == all_values()
        assert result.strategy == "pipelined"
        assert not result.degradation.is_degraded
        assert not result.is_partial
        assert result.warnings == []
        assert result.injected_seconds == [0.0] * 4

    def test_default_matches_explicit_fail_fast(self):
        default = make_processor().execute(QUERY)
        explicit = make_processor(
            config=ResilienceConfig(partition_policy="fail_fast")
        ).execute(QUERY)
        assert default.items == explicit.items
        assert default.strategy == explicit.strategy

    def test_fault_raises_partition_execution_error(self):
        plan = FaultPlan().fail_partition(2, times=1)
        processor = make_processor(plan=plan)
        with pytest.raises(PartitionExecutionError) as excinfo:
            processor.execute(QUERY)
        error = excinfo.value
        assert error.partition == 2
        assert error.collections == ("/events",)
        assert isinstance(error.__cause__, TransientFaultError)

    def test_malformed_data_names_collection_and_partition(self):
        source = InMemorySource({"/events": [['{"v": 1}'], ["{broken"]]})
        processor = JsonProcessor(source=source)
        with pytest.raises(PartitionExecutionError) as excinfo:
            processor.execute(QUERY)
        message = str(excinfo.value)
        assert "partition 1" in message
        assert "/events" in message


class TestRetry:
    def test_retry_then_succeed(self):
        plan = FaultPlan(seed=3).fail_partition(1, times=2)
        config = ResilienceConfig(
            partition_policy="retry", retry=RetryPolicy(max_attempts=3, seed=3)
        )
        result = make_processor(plan=plan, config=config).execute(QUERY)
        assert result.items == all_values()  # nothing lost
        assert not result.is_partial
        assert result.degradation.is_degraded
        retries = result.degradation.retries
        assert [(r.partition, r.attempt) for r in retries] == [(1, 1), (1, 2)]
        assert all(r.backoff_seconds > 0 for r in retries)
        # Backoff charged to the simulated clock of the failing partition.
        assert result.injected_seconds[1] > 0
        assert result.injected_seconds[0] == 0.0

    def test_retry_exhausted_fails_by_default(self):
        plan = FaultPlan().fail_partition(1, times=10)
        config = ResilienceConfig(
            partition_policy="retry", retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(PartitionExecutionError) as excinfo:
            make_processor(plan=plan, config=config).execute(QUERY)
        assert excinfo.value.attempts == 3

    def test_retry_exhausted_can_degrade_to_skip(self):
        plan = FaultPlan().fail_partition(1, times=10)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=3),
            on_exhausted="skip",
        )
        result = make_processor(plan=plan, config=config).execute(QUERY)
        assert result.items == [v for v in all_values() if not 100 <= v < 200]
        assert result.is_partial
        (skip,) = result.degradation.skipped_partitions
        assert skip.partition == 1
        assert skip.attempts == 3
        assert skip.collections == ("/events",)

    def test_permanent_fault_not_retried(self):
        plan = FaultPlan().fail_partition(1, permanent=True)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=5),
            on_exhausted="skip",
        )
        result = make_processor(plan=plan, config=config).execute(QUERY)
        assert result.degradation.retries == []  # no pointless retries
        (skip,) = result.degradation.skipped_partitions
        assert skip.attempts == 1


class TestSkipPartition:
    def test_skips_on_first_failure(self):
        plan = FaultPlan().fail_partition(3, times=1)
        config = ResilienceConfig(partition_policy="skip_partition")
        result = make_processor(plan=plan, config=config).execute(QUERY)
        assert result.items == [v for v in all_values() if v < 300]
        assert result.degradation.retries == []
        (skip,) = result.degradation.skipped_partitions
        assert skip.partition == 3 and skip.attempts == 1

    def test_aggregate_over_skipped_partition_is_partial(self):
        plan = FaultPlan().fail_partition(0, times=1)
        config = ResilienceConfig(partition_policy="skip_partition")
        result = make_processor(plan=plan, config=config).execute(COUNT_QUERY)
        assert result.strategy == "aggregated-two-step"
        assert result.items == [15]  # 3 of 4 partitions x 5 records
        assert result.is_partial

    def test_grouped_query_with_retry(self):
        plan = FaultPlan().fail_partition(2, times=1)
        config = ResilienceConfig(
            partition_policy="retry", retry=RetryPolicy(max_attempts=2)
        )
        query = (
            'for $r in collection("/events") '
            'group by $k := $r("v") mod 2 '
            "return count($r)"
        )
        clean = make_processor().execute(query)
        faulty = make_processor(plan=plan, config=config).execute(query)
        assert sorted(faulty.items) == sorted(clean.items)
        assert faulty.degradation.retry_count == 1


class TestSimulatedClock:
    def test_straggler_delay_charged_to_makespan(self):
        from repro import ClusterSpec

        cluster = ClusterSpec(nodes=1, cores_per_node=4, partitions_per_node=4)
        clean = make_processor().execute(QUERY)
        plan = FaultPlan().delay_partition(2, 0.5)
        config = ResilienceConfig(partition_policy="retry")
        slow = make_processor(plan=plan, config=config).execute(QUERY)
        assert slow.injected_seconds[2] == pytest.approx(0.5)
        difference = slow.simulated_seconds(cluster) - clean.simulated_seconds(
            cluster
        )
        assert difference >= 0.45  # the delay survives smoothing

    def test_retry_backoff_charged_to_makespan(self):
        from repro import ClusterSpec

        cluster = ClusterSpec(nodes=1, cores_per_node=4, partitions_per_node=4)
        plan = FaultPlan().fail_partition(1, times=2)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(
                max_attempts=3, base_backoff_seconds=0.2, jitter=0.0
            ),
        )
        result = make_processor(plan=plan, config=config).execute(QUERY)
        # 0.2 + 0.4 backoff on partition 1.
        assert result.injected_seconds[1] == pytest.approx(0.6)
        clean = make_processor().execute(QUERY)
        difference = result.simulated_seconds(cluster) - clean.simulated_seconds(
            cluster
        )
        assert difference >= 0.55


class TestDeterminism:
    def run_once(self):
        plan = FaultPlan(seed=11).fail_partition(0, times=2)
        plan.corrupt_records(2, fraction=0.3)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=3, seed=11),
            on_exhausted="skip",
        )
        result = make_processor(
            plan=plan, config=config, on_malformed="skip_record"
        ).execute(QUERY)
        return result.items, json.dumps(
            result.degradation.to_dict(), sort_keys=True
        )

    def test_two_runs_identical(self):
        items_a, report_a = self.run_once()
        items_b, report_b = self.run_once()
        assert items_a == items_b
        assert report_a == report_b


class TestConfigValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(partition_policy="shrug")
        with pytest.raises(ValueError):
            ResilienceConfig(on_exhausted="maybe")
