"""The acceptance demo: a degraded query survives and reports exactly.

A 4-partition collection where one partition fails transiently twice
and ~1% of another partition's records are injected-corrupt runs to
completion under ``retry`` + ``skip_record``, returns the correct
surviving items, and its degradation report lists exactly the injected
faults — byte-identical across two runs with the same seed.
"""

import json

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    ResilienceConfig,
    RetryPolicy,
)

SEED = 7
PARTITIONS = 4
RECORDS = 200
QUERY = 'for $r in collection("/events") return $r("v")'


def make_plan():
    plan = FaultPlan(seed=SEED)
    plan.fail_partition(2, times=2)
    plan.corrupt_records(1, fraction=0.01)
    return plan


def run_demo():
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps({"v": p * 1000 + i}) for i in range(RECORDS)
                )
            ]
            for p in range(PARTITIONS)
        ]
    }
    source = InMemorySource(collections, on_malformed="skip_record")
    processor = JsonProcessor(
        source=source,
        fault_plan=make_plan(),
        resilience=ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=3, seed=SEED),
        ),
    )
    result = processor.execute(QUERY)
    return result, json.dumps(result.degradation.to_dict(), sort_keys=True)


def expected_corrupt_indices():
    plan = make_plan()
    return [
        i
        for i in range(RECORDS)
        if plan.should_corrupt("/events", 1, i)
    ]


def test_demo_runs_to_completion_with_exact_degradation():
    corrupted = expected_corrupt_indices()
    assert corrupted, "seed must corrupt at least one record"
    result, _ = run_demo()

    expected_items = [
        p * 1000 + i
        for p in range(PARTITIONS)
        for i in range(RECORDS)
        if not (p == 1 and i in corrupted)
    ]
    assert result.items == expected_items
    assert result.strategy == "pipelined"

    report = result.degradation
    # Exactly the injected transient faults, retried away.
    assert [(r.partition, r.attempt) for r in report.retries] == [(2, 1), (2, 2)]
    # Exactly the injected corrupt records, skipped.
    assert [rec.offset for rec in report.skipped_records] == corrupted
    assert all(
        rec.source == "/events[partition 1]" for rec in report.skipped_records
    )
    # Nothing else degraded.
    assert report.skipped_partitions == []
    assert report.skipped_files == []
    assert result.is_partial  # records were dropped
    # Retry backoff was charged to partition 2's simulated clock.
    assert result.injected_seconds[2] > 0
    assert result.injected_seconds[0] == result.injected_seconds[1] == 0.0


def test_demo_is_byte_identical_across_runs():
    _, report_a = run_demo()
    _, report_b = run_demo()
    assert report_a == report_b
