"""Unit tests for physical operator execution."""

import pytest

from repro.errors import PlanError
from repro.algebra.context import EvaluationContext
from repro.algebra.expressions import (
    AndExpr,
    ComparisonExpr,
    IterateExpr,
    Literal,
    TRUE_LITERAL,
    VariableRef,
    value_by_key,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateSpec,
    Assign,
    DataScan,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    NestedTupleSource,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.data.catalog import InMemorySource
from repro.hyracks.executor import ExecutionStats
from repro.hyracks.memory import MemoryTracker
from repro.hyracks.operators import (
    canonical_key,
    execute,
    run_operator,
    run_plan,
    split_join_condition,
)


def ctx_with(texts=None, **kwargs):
    source = None
    if texts is not None:
        source = InMemorySource(collections={"/c": [texts]})
    return EvaluationContext(source=source, **kwargs)


class TestBasicOperators:
    def test_empty_tuple_source(self):
        assert list(execute(EmptyTupleSource(), ctx_with())) == [{}]

    def test_assign(self):
        op = Assign(EmptyTupleSource(), "x", Literal.of(5))
        assert list(execute(op, ctx_with())) == [{"x": [5]}]

    def test_assign_does_not_mutate_input(self):
        source = [{"a": [1]}]
        op = Assign(EmptyTupleSource(), "b", Literal.of(2))
        list(run_operator(op, source, ctx_with()))
        assert source == [{"a": [1]}]

    def test_unnest_fans_out(self):
        op = Unnest(
            Assign(EmptyTupleSource(), "s", Literal([1, 2, 3])),
            "x",
            IterateExpr(VariableRef("s")),
        )
        values = [t["x"] for t in execute(op, ctx_with())]
        assert values == [[1], [2], [3]]

    def test_unnest_empty_sequence_drops_tuple(self):
        op = Unnest(
            Assign(EmptyTupleSource(), "s", Literal([])),
            "x",
            IterateExpr(VariableRef("s")),
        )
        assert list(execute(op, ctx_with())) == []

    def test_select(self):
        source = [{"v": [1]}, {"v": [0]}, {"v": [2]}]
        op = Select(EmptyTupleSource(), VariableRef("v"))
        out = list(run_operator(op, source, ctx_with()))
        assert [t["v"] for t in out] == [[1], [2]]

    def test_aggregate_single_tuple(self):
        source = [{"v": [1]}, {"v": [2]}]
        op = Aggregate(
            EmptyTupleSource(), [AggregateSpec("n", "count", VariableRef("v"))]
        )
        assert list(run_operator(op, source, ctx_with())) == [{"n": [2]}]

    def test_aggregate_on_empty_stream(self):
        op = Aggregate(
            EmptyTupleSource(), [AggregateSpec("n", "count", VariableRef("v"))]
        )
        assert list(run_operator(op, iter([]), ctx_with())) == [{"n": [0]}]

    def test_nested_tuple_source_outside_nested_plan(self):
        with pytest.raises(PlanError):
            list(execute(NestedTupleSource(), ctx_with()))


class TestDataScan:
    def test_scan_projects(self):
        from repro.jsonlib.path import parse_path

        texts = ['{"a": [1, 2]}', '{"a": [3]}']
        scan = DataScan("/c", "x", parse_path('("a")()'))
        out = list(execute(scan, ctx_with(texts)))
        assert [t["x"] for t in out] == [[1], [2], [3]]

    def test_scan_updates_stats(self):
        from repro.jsonlib.path import parse_path

        stats = ExecutionStats()
        ctx = EvaluationContext(
            source=InMemorySource(collections={"/c": [['{"a": [1, 2]}']]}),
            stats=stats,
        )
        scan = DataScan("/c", "x", parse_path('("a")()'))
        list(execute(scan, ctx))
        assert stats.items_scanned == 2
        assert stats.scanned_item_bytes > 0


class TestSubplanAndGroupBy:
    def test_subplan_binds_aggregate(self):
        nested = Aggregate(
            Unnest(NestedTupleSource(), "j", IterateExpr(VariableRef("s"))),
            [AggregateSpec("c", "count", VariableRef("j"))],
        )
        op = Subplan(EmptyTupleSource(), nested)
        source = [{"s": [[1], [2], [3]]}, {"s": []}]
        out = list(run_operator(op, source, ctx_with()))
        assert [t["c"] for t in out] == [[3], [0]]

    def test_group_by_incremental(self):
        nested = Aggregate(
            NestedTupleSource(), [AggregateSpec("n", "count", VariableRef("v"))]
        )
        op = GroupBy(EmptyTupleSource(), [("k", VariableRef("k"))], nested)
        source = [
            {"k": ["a"], "v": [1]},
            {"k": ["b"], "v": [2]},
            {"k": ["a"], "v": [3]},
        ]
        out = sorted(
            run_operator(op, source, ctx_with()), key=lambda t: t["k"][0]
        )
        assert out == [{"k": ["a"], "n": [2]}, {"k": ["b"], "n": [1]}]

    def test_group_by_general_nested_plan(self):
        # A nested plan with an UNNEST forces the materializing path.
        nested = Aggregate(
            Unnest(NestedTupleSource(), "j", IterateExpr(VariableRef("v"))),
            [AggregateSpec("n", "count", VariableRef("j"))],
        )
        op = GroupBy(EmptyTupleSource(), [("k", VariableRef("k"))], nested)
        source = [
            {"k": ["a"], "v": [1, 2]},
            {"k": ["a"], "v": [3]},
        ]
        (out,) = run_operator(op, source, ctx_with())
        assert out["n"] == [3]

    def test_group_key_distinguishes_types(self):
        nested = Aggregate(
            NestedTupleSource(), [AggregateSpec("n", "count", VariableRef("k"))]
        )
        op = GroupBy(EmptyTupleSource(), [("k", VariableRef("k"))], nested)
        source = [{"k": [1]}, {"k": ["1"]}, {"k": [True]}]
        assert len(list(run_operator(op, source, ctx_with()))) == 3


class TestJoin:
    def join_plan(self, condition):
        left = Unnest(
            Assign(EmptyTupleSource(), "ls", Literal([{"k": 1, "a": 10}, {"k": 2, "a": 20}])),
            "l",
            IterateExpr(VariableRef("ls")),
        )
        right = Unnest(
            Assign(EmptyTupleSource(), "rs", Literal([{"k": 1, "b": 100}, {"k": 3, "b": 300}])),
            "r",
            IterateExpr(VariableRef("rs")),
        )
        return Join(left, right, condition)

    def test_hash_join_on_equality(self):
        condition = ComparisonExpr(
            "eq",
            value_by_key(VariableRef("l"), "k"),
            value_by_key(VariableRef("r"), "k"),
        )
        out = list(execute(self.join_plan(condition), ctx_with()))
        assert len(out) == 1
        assert out[0]["l"] == [{"k": 1, "a": 10}]
        assert out[0]["r"] == [{"k": 1, "b": 100}]

    def test_cross_product(self):
        out = list(execute(self.join_plan(TRUE_LITERAL), ctx_with()))
        assert len(out) == 4

    def test_join_with_residual(self):
        condition = AndExpr(
            [
                ComparisonExpr(
                    "eq",
                    value_by_key(VariableRef("l"), "k"),
                    value_by_key(VariableRef("r"), "k"),
                ),
                ComparisonExpr(
                    "lt",
                    value_by_key(VariableRef("l"), "a"),
                    value_by_key(VariableRef("r"), "b"),
                ),
            ]
        )
        out = list(execute(self.join_plan(condition), ctx_with()))
        assert len(out) == 1

    def test_join_charges_memory(self):
        tracker = MemoryTracker()
        ctx = EvaluationContext(memory=tracker)
        list(execute(self.join_plan(TRUE_LITERAL), ctx))
        assert tracker.peak > 0
        assert tracker.used == 0  # released after the probe

    def test_split_join_condition(self):
        condition = AndExpr(
            [
                ComparisonExpr(
                    "eq",
                    value_by_key(VariableRef("r"), "k"),  # flipped sides
                    value_by_key(VariableRef("l"), "k"),
                ),
                ComparisonExpr("eq", VariableRef("l"), VariableRef("l")),
            ]
        )
        join = self.join_plan(condition)
        left_keys, right_keys, residual = split_join_condition(join)
        assert len(left_keys) == len(right_keys) == 1
        assert left_keys[0].free_variables() == {"l"}
        assert right_keys[0].free_variables() == {"r"}
        assert len(residual) == 1


class TestRunPlan:
    def test_run_plan_concatenates_results(self):
        op = Unnest(
            Assign(EmptyTupleSource(), "s", Literal([1, 2])),
            "x",
            IterateExpr(VariableRef("s")),
        )
        plan = LogicalPlan(DistributeResult(op, [VariableRef("x")]))
        assert run_plan(plan, ctx_with()) == [1, 2]

    def test_run_plan_requires_distribute_root(self):
        with pytest.raises(PlanError):
            run_plan(LogicalPlan(EmptyTupleSource()), ctx_with())


class TestCanonicalKeys:
    def test_atomics(self):
        assert canonical_key([1]) != canonical_key(["1"])
        assert canonical_key([True]) != canonical_key([1])
        assert canonical_key([1.0]) == canonical_key([1.0])

    def test_containers_by_content(self):
        assert canonical_key([{"a": 1}]) == canonical_key([{"a": 1}])
        assert canonical_key([[1, 2]]) != canonical_key([[2, 1]])

    def test_sequences(self):
        assert canonical_key([1, 2]) != canonical_key([1])
