"""Unit tests for aggregate accumulators and their partial/combine split."""

import pytest

from repro.algebra.context import EvaluationContext
from repro.algebra.expressions import VariableRef
from repro.algebra.operators import AggregateSpec
from repro.hyracks.aggregates import make_accumulator, make_accumulators
from repro.hyracks.memory import MemoryTracker

CTX = EvaluationContext()


def spec(function):
    return AggregateSpec("out", function, VariableRef("x"))


def feed(accumulator, values, ctx=CTX):
    for value in values:
        accumulator.add({"x": [value]}, ctx)


class TestAccumulators:
    def test_count(self):
        acc = make_accumulator(spec("count"))
        feed(acc, [1, 2, 3])
        assert acc.finish(CTX) == [3]

    def test_count_counts_items_not_tuples(self):
        acc = make_accumulator(spec("count"))
        acc.add({"x": [1, 2]}, CTX)
        acc.add({"x": []}, CTX)
        assert acc.finish(CTX) == [2]

    def test_sum(self):
        acc = make_accumulator(spec("sum"))
        feed(acc, [1, 2, 3.5])
        assert acc.finish(CTX) == [6.5]

    def test_sum_empty_is_zero(self):
        acc = make_accumulator(spec("sum"))
        assert acc.finish(CTX) == [0]

    def test_avg(self):
        acc = make_accumulator(spec("avg"))
        feed(acc, [2, 4, 6])
        assert acc.finish(CTX) == [4]

    def test_avg_empty_is_empty(self):
        acc = make_accumulator(spec("avg"))
        assert acc.finish(CTX) == []

    def test_min_max(self):
        low = make_accumulator(spec("min"))
        high = make_accumulator(spec("max"))
        feed(low, [3, 1, 2])
        feed(high, [3, 1, 2])
        assert low.finish(CTX) == [1]
        assert high.finish(CTX) == [3]

    def test_sequence(self):
        acc = make_accumulator(spec("sequence"))
        feed(acc, ["a", "b"])
        assert acc.finish(CTX) == ["a", "b"]

    def test_sequence_charges_and_releases_memory(self):
        tracker = MemoryTracker()
        ctx = EvaluationContext(memory=tracker)
        acc = make_accumulator(spec("sequence"))
        feed(acc, ["payload"] * 10, ctx)
        assert tracker.used > 0
        acc.finish(ctx)
        assert tracker.used == 0
        assert tracker.peak > 0


class TestPartialCombine:
    """Two-step aggregation: split the stream, fold partials, combine."""

    @pytest.mark.parametrize(
        "function,values",
        [
            ("count", [1, 2, 3, 4, 5]),
            ("sum", [1.5, 2, 3, -4]),
            ("avg", [2, 4, 6, 8, 10]),
            ("min", [5, 3, 8, 1]),
            ("max", [5, 3, 8, 1]),
            ("sequence", ["a", "b", "c", "d"]),
        ],
    )
    def test_split_equals_whole(self, function, values):
        whole = make_accumulator(spec(function))
        feed(whole, values)
        expected = whole.finish(CTX)

        left = make_accumulator(spec(function))
        right = make_accumulator(spec(function))
        feed(left, values[:2])
        feed(right, values[2:])
        combined = make_accumulator(spec(function))
        combined.absorb(left.partial())
        combined.absorb(right.partial())
        assert combined.finish(CTX) == expected

    def test_minmax_absorb_empty_partial(self):
        acc = make_accumulator(spec("min"))
        empty = make_accumulator(spec("min"))
        feed(acc, [7])
        acc.absorb(empty.partial())
        assert acc.finish(CTX) == [7]

    def test_make_accumulators_order(self):
        accs = make_accumulators([spec("count"), spec("sum")])
        assert [a.spec.function for a in accs] == ["count", "sum"]
