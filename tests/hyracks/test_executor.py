"""Unit tests for the partitioned executor's strategies."""

import pytest

from repro.errors import MemoryBudgetExceededError
from repro.algebra.rules import RewriteConfig
from repro.compiler.pipeline import compile_query
from repro.data.catalog import InMemorySource
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.executor import PartitionedExecutor

PARTITION_A = """
{"root": [
  {"metadata": {"count": 3}, "results": [
    {"date": "d1", "dataType": "TMIN", "station": "S1", "value": 1},
    {"date": "d1", "dataType": "TMAX", "station": "S1", "value": 9},
    {"date": "d2", "dataType": "TMIN", "station": "S1", "value": 2}
  ]}
]}
"""
PARTITION_B = """
{"root": [
  {"metadata": {"count": 3}, "results": [
    {"date": "d1", "dataType": "TMIN", "station": "S2", "value": 3},
    {"date": "d1", "dataType": "TMAX", "station": "S2", "value": 13},
    {"date": "d2", "dataType": "TMAX", "station": "S1", "value": 22}
  ]}
]}
"""

SELECT_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'where $r("dataType") eq "TMIN" return $r("value")'
)
GROUP_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") return count($r("station"))'
)
JOIN_QUERY = (
    "avg( "
    'for $a in collection("/s")("root")()("results")() '
    'for $b in collection("/s")("root")()("results")() '
    'where $a("station") eq $b("station") and $a("date") eq $b("date") '
    'and $a("dataType") eq "TMIN" and $b("dataType") eq "TMAX" '
    'return $b("value") - $a("value") )'
)


@pytest.fixture
def source():
    return InMemorySource(collections={"/s": [[PARTITION_A], [PARTITION_B]]})


def run(source, query, config=None, **kwargs):
    config = config or RewriteConfig.all()
    executor = PartitionedExecutor(
        source,
        two_step_aggregation=config.two_step_aggregation,
        **kwargs,
    )
    return executor.run(compile_query(query, config).plan)


class TestStrategySelection:
    def test_pipelined_for_selection(self, source):
        result = run(source, SELECT_QUERY)
        assert result.strategy == "pipelined"
        assert sorted(result.items) == [1, 2, 3]
        assert len(result.partition_seconds) == 2

    def test_grouped_two_step(self, source):
        result = run(source, GROUP_QUERY)
        assert result.strategy == "grouped-two-step"
        assert sorted(result.items) == [2, 4]  # d1: 4 readings, d2: 2

    def test_grouped_raw_when_two_step_off(self, source):
        config = RewriteConfig(True, True, True, two_step_aggregation=False)
        result = run(source, GROUP_QUERY, config)
        assert result.strategy == "grouped-raw"
        assert sorted(result.items) == sorted(
            run(source, GROUP_QUERY).items
        )

    def test_hash_join_strategy(self, source):
        result = run(source, JOIN_QUERY)
        assert result.strategy == "hash-join"
        # S1/d1: 9-1=8; S2/d1: 13-3=10; S1/d2: 22-2=20 -> avg 38/3.
        assert result.items == [pytest.approx(38 / 3)]

    def test_join_without_two_step(self, source):
        config = RewriteConfig(True, True, True, two_step_aggregation=False)
        result = run(source, JOIN_QUERY, config)
        assert result.items == [pytest.approx(38 / 3)]

    def test_global_for_naive_plans(self, source):
        result = run(source, SELECT_QUERY, RewriteConfig.none())
        assert result.strategy == "global"
        assert sorted(result.items) == [1, 2, 3]

    def test_constant_query_runs_globally(self, source):
        result = run(source, "1 + 1")
        assert result.strategy == "global"
        assert result.items == [2]

    def test_mismatched_partition_counts_fall_back_to_global(self):
        from repro.data.catalog import InMemorySource

        other = '{"root": [{"results": [{"date": "d1", "dataType": "TMAX", "station": "S1", "value": 7}]}]}'
        source = InMemorySource(
            collections={
                "/s": [[PARTITION_A], [PARTITION_B]],  # 2 partitions
                "/t": [[other]],  # 1 partition
            }
        )
        query = (
            "avg( "
            'for $a in collection("/s")("root")()("results")() '
            'for $b in collection("/t")("root")()("results")() '
            'where $a("station") eq $b("station") and $a("date") eq $b("date") '
            'and $a("dataType") eq "TMIN" and $b("dataType") eq "TMAX" '
            'return $b("value") - $a("value") )'
        )
        result = run(source, query)
        assert result.strategy == "global"
        assert result.items == [pytest.approx(6.0)]  # 7 - 1 on S1/d1


class TestCrossPartitionJoin:
    def test_join_matches_across_partitions(self, source):
        # S1/d2 TMIN lives in partition A, its TMAX in partition B; a
        # partition-local join would miss the pair.
        result = run(source, JOIN_QUERY)
        assert result.items == [pytest.approx(38 / 3)]
        assert result.stats.exchange_tuples > 0


class TestMeasurements:
    def test_wall_and_partition_seconds(self, source):
        result = run(source, SELECT_QUERY)
        assert result.wall_seconds > 0
        assert all(s >= 0 for s in result.partition_seconds)

    def test_simulated_seconds_scales_with_cluster(self, source):
        result = run(source, SELECT_QUERY)
        one = result.simulated_seconds(ClusterSpec(nodes=1, partitions_per_node=1))
        two = result.simulated_seconds(ClusterSpec(nodes=2, partitions_per_node=1))
        assert two <= one

    def test_memory_budget_enforced(self, source):
        with pytest.raises(MemoryBudgetExceededError):
            run(
                source,
                SELECT_QUERY,
                RewriteConfig.none(),  # naive: materializes everything
                memory_budget_bytes=100,
            )

    def test_exchange_accounting_grouped(self, source):
        two_step = run(source, GROUP_QUERY)
        config = RewriteConfig(True, True, True, two_step_aggregation=False)
        raw = run(source, GROUP_QUERY, config)
        assert raw.stats.exchange_bytes > two_step.stats.exchange_bytes
