"""Worker-loss recovery: crash rescheduling, the degradation ladder,
straggler speculation, and error plumbing."""

import json
import pickle

import pytest

from repro import (
    BackendError,
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    ProcessBackend,
    RecoveryExhaustedError,
    RecoveryPolicy,
    ResilienceConfig,
    WorkerCrashError,
)
from repro.hyracks.backends import PipelinedWork, WorkUnit

BACKEND_NAMES = ["sequential", "thread", "process"]

QUERY = 'for $r in collection("/events") return $r("v")'
GROUP_QUERY = (
    'for $r in collection("/events") '
    'group by $g := $r("g") return count($r("v"))'
)

PARTITIONS = 4


def make_source(partitions=PARTITIONS, per_partition=6):
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps({"v": p * 100 + i, "g": i % 3})
                    for i in range(per_partition)
                )
            ]
            for p in range(partitions)
        ]
    }
    return InMemorySource(collections)


def run_backend(backend, query=QUERY, plan=None, config=None, **kwargs):
    processor = JsonProcessor(
        source=make_source(),
        fault_plan=plan,
        resilience=config,
        backend=backend,
        **kwargs,
    )
    with processor:
        return processor.execute(query)


def speculation_policy(**overrides) -> RecoveryPolicy:
    defaults = dict(
        speculative_floor_seconds=0.1,
        speculative_multiplier=2.0,
        min_speculation_samples=2,
        watchdog_interval_seconds=0.02,
    )
    defaults.update(overrides)
    return RecoveryPolicy(**defaults)


class TestCrashRecovery:
    @pytest.mark.parametrize("query", [QUERY, GROUP_QUERY])
    def test_kill_recovers_byte_identical_across_backends(self, query):
        """The acceptance scenario: >= 4 partitions, a worker killed
        mid-partition, result byte-identical to an undisturbed
        sequential run, recovery on the report — every backend."""
        baseline = run_backend("sequential", query)
        for name in BACKEND_NAMES:
            plan = FaultPlan().kill_worker(1, attempt=1)
            result = run_backend(name, query, plan=plan)
            assert result.items == baseline.items
            assert result.strategy == baseline.strategy
            assert result.stats.worker_crashes == 1
            report = result.degradation
            assert [
                (loss.partition, loss.attempt) for loss in report.worker_losses
            ] == [(1, 1)]
            assert report.is_degraded and not report.is_partial
            assert any("died" in line for line in report.warnings)

    def test_crash_reports_identical_across_backends(self):
        """The WorkerLossEvent is backend-neutral, so the whole
        serialized report matches across backends (max_workers=1 keeps
        pooled crash batches deterministic)."""
        dicts = {}
        for name in BACKEND_NAMES:
            plan = FaultPlan().kill_worker(2, attempt=1)
            result = run_backend(name, plan=plan, max_workers=1)
            dicts[name] = result.degradation.to_dict()
        assert dicts["thread"] == dicts["sequential"]
        assert dicts["process"] == dicts["sequential"]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_kill_twice_then_succeed(self, name):
        plan = FaultPlan().kill_worker(1, attempt=1).kill_worker(1, attempt=2)
        baseline = run_backend("sequential")
        result = run_backend(name, plan=plan, max_workers=1)
        assert result.items == baseline.items
        assert [
            (loss.partition, loss.attempt)
            for loss in result.degradation.worker_losses
        ] == [(1, 1), (1, 2)]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_deterministic_crasher_exhausts_instead_of_looping(self, name):
        plan = (
            FaultPlan()
            .kill_worker(2, attempt=1)
            .kill_worker(2, attempt=2)
            .kill_worker(2, attempt=3)
        )
        # max_workers=1 would take ThreadBackend's inline fast path,
        # which attributes exhaustion to the sequential tier.
        workers = 2 if name == "thread" else 1
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            run_backend(name, plan=plan, max_workers=workers)
        error = excinfo.value
        assert error.partitions == (2,)
        assert error.attempts == (3,)
        assert error.backend == name
        assert "recovery exhausted" in str(error)

    def test_exhausted_error_survives_pickle(self):
        plan = (
            FaultPlan()
            .kill_worker(2, attempt=1)
            .kill_worker(2, attempt=2)
            .kill_worker(2, attempt=3)
        )
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            run_backend("sequential", plan=plan)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.partitions == (2,)
        assert clone.attempts == (3,)
        assert clone.backend == "sequential"
        assert str(clone) == str(excinfo.value)
        assert isinstance(clone.__cause__, WorkerCrashError)
        assert clone.__cause__.partition == 2


class TestDegradationLadder:
    @pytest.mark.parametrize(
        "name,workers,expected_step",
        [
            # thread needs >= 2 workers to route through the recovery
            # engine (1 worker takes the inline fast path, no ladder)
            ("thread", 2, ("thread", "sequential")),
            ("process", 1, ("process", "thread")),
        ],
    )
    def test_repeated_loss_steps_down_the_ladder(
        self, name, workers, expected_step
    ):
        plan = (
            FaultPlan()
            .kill_worker(0, attempt=1)
            .kill_worker(1, attempt=1)
            .kill_worker(2, attempt=1)
        )
        config = ResilienceConfig(
            recovery=RecoveryPolicy(max_losses_per_tier=1, speculate=False)
        )
        baseline = run_backend("sequential")
        result = run_backend(name, plan=plan, config=config, max_workers=workers)
        assert result.items == baseline.items
        report = result.degradation
        assert len(report.worker_losses) == 3
        assert [
            (step.from_backend, step.to_backend)
            for step in report.ladder_steps
        ] == [expected_step]
        assert result.stats.ladder_steps == 1
        assert any("degraded backend" in line for line in report.warnings)

    def test_sequential_has_no_ladder(self):
        plan = FaultPlan().kill_worker(0, attempt=1).kill_worker(1, attempt=1)
        config = ResilienceConfig(
            recovery=RecoveryPolicy(max_losses_per_tier=0, speculate=False)
        )
        result = run_backend("sequential", plan=plan, config=config)
        assert result.degradation.ladder_steps == []
        assert len(result.degradation.worker_losses) == 2


class TestSpeculation:
    def test_straggler_earns_a_speculative_twin(self):
        plan = FaultPlan().stall_partition(3, seconds=1.0)
        config = ResilienceConfig(recovery=speculation_policy())
        baseline = run_backend("sequential")
        result = run_backend("thread", plan=plan, config=config, max_workers=2)
        assert result.items == baseline.items
        assert result.stats.speculative_launched >= 1
        # Speculation never shows up on the degradation report: it is
        # timing-dependent, and the report must stay byte-identical.
        assert not result.degradation.is_degraded

    def test_speculate_disabled(self):
        plan = FaultPlan().stall_partition(3, seconds=0.3)
        config = ResilienceConfig(
            recovery=speculation_policy(speculate=False)
        )
        baseline = run_backend("sequential")
        result = run_backend("thread", plan=plan, config=config, max_workers=2)
        assert result.items == baseline.items
        assert result.stats.speculative_launched == 0

    def test_policy_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="clock"):
            RecoveryPolicy(clock="sundial")


class TestRecoveryDisabled:
    def test_process_kill_is_terminal_when_disabled(self):
        plan = FaultPlan().kill_worker(1, attempt=1)
        config = ResilienceConfig(recovery=RecoveryPolicy(enabled=False))
        with pytest.raises(BackendError):
            run_backend("process", plan=plan, config=config, max_workers=2)

    def test_thread_kill_is_terminal_when_disabled(self):
        plan = FaultPlan().kill_worker(1, attempt=1)
        config = ResilienceConfig(recovery=RecoveryPolicy(enabled=False))
        with pytest.raises(WorkerCrashError):
            run_backend("thread", plan=plan, config=config, max_workers=2)


class TestErrorPlumbing:
    def test_backend_error_carries_partitions_and_cause_through_pickle(self):
        cause = ValueError("pool fell over")
        error = BackendError(
            "process pool broke", partitions=(1, 3), attempts=(2, 1),
            cause=cause,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.partitions == (1, 3)
        assert clone.attempts == (2, 1)
        assert str(clone) == str(error)
        assert isinstance(clone.__cause__, ValueError)
        assert str(clone.__cause__) == "pool fell over"

    def test_worker_crash_error_round_trip(self):
        error = WorkerCrashError(3, 2, "injected")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.partition == 3
        assert clone.attempt == 2
        assert clone.retryable is False
        assert "partition 3" in str(clone)


class TestLegacyPathDrain:
    def test_abandoned_generator_leaves_pool_reusable(self):
        """Closing a legacy-path run_units generator mid-iteration must
        drain in-flight futures so the pool survives for the next query
        (regression: the old finally only cancelled)."""
        config = ResilienceConfig(recovery=RecoveryPolicy(enabled=False))
        source = make_source()
        backend = ProcessBackend(max_workers=2)
        try:
            processor = JsonProcessor(
                source=source, resilience=config, backend=backend
            )
            plan = processor.compile(QUERY).plan
            units = [
                WorkUnit(
                    plan=plan,
                    partition=p,
                    work=PipelinedWork(plan),
                    source=source,
                    functions=None,
                    memory_budget=None,
                    resilience=config,
                )
                for p in range(PARTITIONS)
            ]
            gen = backend.run_units(units)
            next(gen)
            gen.close()  # abandon with futures still in flight
            result = processor.execute(QUERY)
            assert result.items == run_backend("sequential").items
        finally:
            backend.close()
