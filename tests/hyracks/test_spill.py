"""Spill-to-disk execution: run files, spilling operators, byte-identity.

Every test that spills runs inside the ``spill_root`` fixture, which
fails the test if any temp file survives — the leak check the issue's
cancellation-safety contract demands.
"""

import json
import os
import pickle

import pytest

from repro.errors import MemoryBudgetExceededError
from repro.algebra.context import EvaluationContext
from repro.algebra.rules import RewriteConfig
from repro.compiler.pipeline import compile_query
from repro.data.catalog import InMemorySource
from repro.hyracks.executor import ExecutionStats, PartitionedExecutor
from repro.hyracks.memory import MemoryTracker
from repro.hyracks.spill import (
    SpillConfig,
    SpilledSequence,
    SpillManager,
    estimate_record_bytes,
    external_sort,
    resolve_spill_config,
    stable_bucket,
)


def make_source(records_per_partition: int = 120, partitions: int = 2):
    """An InMemorySource with enough rows to overflow small budgets."""
    texts = []
    for p in range(partitions):
        rows = [
            {
                "date": f"d{(p * records_per_partition + i) % 17}",
                "dataType": "TMIN" if i % 2 == 0 else "TMAX",
                "station": f"S{i % 5}",
                "value": (i * 13 + p * 7) % 101,
            }
            for i in range(records_per_partition)
        ]
        texts.append(json.dumps({"root": [{"results": rows}]}))
    return InMemorySource(collections={"/s": [[t] for t in texts]})


GROUP_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") return count($r("station"))'
)
GROUP_GENERAL_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") '
    'return sum(for $i in $r return $i("value")) + count($r)'
)
SORT_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'order by $r("value") descending, $r("station") return $r("value")'
)
JOIN_QUERY = (
    "avg( "
    'for $a in collection("/s")("root")()("results")() '
    'for $b in collection("/s")("root")()("results")() '
    'where $a("station") eq $b("station") and $a("date") eq $b("date") '
    'and $a("dataType") eq "TMIN" and $b("dataType") eq "TMAX" '
    'return $b("value") - $a("value") )'
)


@pytest.fixture
def spill_root(tmp_path):
    """Spill directory that must be empty once the test finishes."""
    root = tmp_path / "spill"
    root.mkdir()
    yield str(root)
    assert os.listdir(str(root)) == [], "spill run files leaked"


def run(source, query, spill_root=None, **kwargs):
    config = RewriteConfig.all()
    executor = PartitionedExecutor(
        source, spill_dir=spill_root, **kwargs
    )
    return executor.run(compile_query(query, config).plan)


class TestStableBucket:
    def test_deterministic(self):
        assert stable_bucket(("a", 1), 8) == stable_bucket(("a", 1), 8)

    def test_salt_decorrelates(self):
        keys = [(f"k{i}",) for i in range(64)]
        plain = [stable_bucket(k, 8) for k in keys]
        salted = [stable_bucket(k, 8, salt=3) for k in keys]
        assert plain != salted

    def test_within_range(self):
        for i in range(100):
            assert 0 <= stable_bucket((i,), 7) < 7


class TestEstimateRecordBytes:
    def test_scales_with_content(self):
        small = estimate_record_bytes(("k", [1, 2]))
        large = estimate_record_bytes(("k" * 100, list(range(50))))
        assert large > small > 0

    def test_handles_non_items(self):
        class Opaque:
            pass

        assert estimate_record_bytes({"x": Opaque()}) > 0


class TestRunFiles:
    def test_roundtrip_preserves_order_and_values(self, spill_root):
        manager = SpillManager(SpillConfig(directory=spill_root))
        records = [("key", i, {"v": [i]}) for i in range(500)]
        writer = manager.new_run("test")
        for record in records:
            writer.write(record)
        handle = writer.finish()
        assert list(handle) == records
        assert handle.records == len(records)
        assert handle.byte_size > 0
        manager.close()

    def test_deterministic_run_names(self, spill_root):
        manager = SpillManager(SpillConfig(directory=spill_root), partition=3)
        w1 = manager.new_run("sort")
        w2 = manager.new_run("group-b0")
        assert os.path.basename(w1._path) == "run-000001-sort.frames"
        assert os.path.basename(w2._path) == "run-000002-group-b0.frames"
        assert "repro-spill-p3-" in manager.directory
        manager.close()

    def test_close_removes_everything_even_unfinished(self, spill_root):
        manager = SpillManager(SpillConfig(directory=spill_root))
        writer = manager.new_run()
        writer.write(("unfinished", 1))
        assert manager.directory is not None
        manager.close()
        assert manager.directory is None
        # close is idempotent
        manager.close()

    def test_fold_stats(self, spill_root):
        manager = SpillManager(SpillConfig(directory=spill_root))
        manager.note_event()
        manager.note_recursion(4)
        writer = manager.new_run()
        writer.write((1,))
        writer.finish()
        stats = ExecutionStats()
        manager.fold_stats(stats)
        assert stats.spill_events == 1
        assert stats.spill_run_files == 1
        assert stats.spill_bytes > 0
        assert stats.spill_recursion_depth == 4
        manager.close()


class TestSpilledSequence:
    def test_iteration_is_append_order(self, spill_root):
        tracker = MemoryTracker(budget=256)
        with SpillManager(SpillConfig(directory=spill_root)) as manager:
            ctx = EvaluationContext(memory=tracker, spill=manager)
            seq = SpilledSequence(ctx, label="t")
            for i in range(100):
                seq.append(i, 64)
            assert seq.spilled
            assert list(seq) == list(range(100))
            assert list(seq) == list(range(100))  # re-iterable
            seq.close()
            assert tracker.used == 0

    def test_without_spill_manager_raises(self):
        tracker = MemoryTracker(budget=256)
        ctx = EvaluationContext(memory=tracker)
        seq = SpilledSequence(ctx, label="t")
        with pytest.raises(MemoryBudgetExceededError):
            for i in range(100):
                seq.append(i, 64)


class TestExternalSort:
    def test_matches_in_memory_sort(self, spill_root):
        tuples = [
            {"v": [(i * 37) % 50], "s": [f"s{i % 3}"]} for i in range(200)
        ]

        class Expr:
            def __init__(self, var):
                self.var = var

            def evaluate(self, tup, ctx):
                return tup[self.var]

        specs = [(Expr("v"), True), (Expr("s"), False)]
        plain_ctx = EvaluationContext()
        expected = list(external_sort(specs, iter(tuples), plain_ctx))
        tracker = MemoryTracker(budget=512)
        with SpillManager(SpillConfig(directory=spill_root)) as manager:
            ctx = EvaluationContext(memory=tracker, spill=manager)
            got = list(external_sort(specs, iter(tuples), ctx))
            assert manager.events > 0
        assert got == expected
        assert tracker.used == 0


class TestQueryLevelByteIdentity:
    """Tiny budgets force spilling; results must match unlimited runs."""

    @pytest.mark.parametrize(
        "query",
        [GROUP_QUERY, GROUP_GENERAL_QUERY, SORT_QUERY, JOIN_QUERY],
        ids=["group-incremental", "group-general", "order-by", "join"],
    )
    def test_spilled_equals_unlimited(self, spill_root, query):
        source = make_source()
        unlimited = run(source, query)
        spilled = run(
            source, query, spill_root=spill_root, memory_budget_bytes=512
        )
        assert spilled.items == unlimited.items
        assert spilled.stats.spill_events > 0
        assert spilled.stats.spill_run_files > 0
        assert spilled.stats.spill_bytes > 0

    def test_spill_disabled_keeps_raising(self, spill_root):
        from repro.errors import PartitionExecutionError

        source = make_source()
        # fail_fast wraps the partition's budget overflow, naming it.
        with pytest.raises(PartitionExecutionError) as exc_info:
            run(
                source,
                GROUP_QUERY,
                spill_root=spill_root,
                memory_budget_bytes=512,
                spill=False,
            )
        assert isinstance(exc_info.value.__cause__, MemoryBudgetExceededError)

    def test_budget_without_spill_need_never_spills(self, spill_root):
        source = make_source(records_per_partition=10)
        result = run(
            source,
            GROUP_QUERY,
            spill_root=spill_root,
            memory_budget_bytes=10_000_000,
        )
        assert result.stats.spill_events == 0
        assert result.stats.spill_run_files == 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match(self, spill_root, backend):
        source = make_source()
        unlimited = run(source, GROUP_QUERY)
        executor = PartitionedExecutor(
            source,
            memory_budget_bytes=512,
            spill_dir=spill_root,
            backend=backend,
            max_workers=2,
        )
        try:
            spilled = executor.run(
                compile_query(GROUP_QUERY, RewriteConfig.all()).plan
            )
        finally:
            executor.close()
        assert spilled.items == unlimited.items
        assert spilled.stats.spill_events > 0


class TestSpillConfig:
    def test_resolve_passthrough(self):
        config = SpillConfig(directory="/x", fanout=4)
        assert resolve_spill_config(config) is config
        assert resolve_spill_config("/y").directory == "/y"

    def test_env_var_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        assert SpillConfig().root_directory() == str(tmp_path)
        monkeypatch.delenv("REPRO_SPILL_DIR")
        assert SpillConfig().root_directory()  # system tmp

    def test_config_is_picklable(self):
        config = SpillConfig(directory="/x", fanout=4, max_recursion=3)
        assert pickle.loads(pickle.dumps(config)) == config


class TestQueryScopes:
    """Per-query spill scopes: concurrent queries can never collide."""

    def test_scopes_are_unique(self):
        from repro.hyracks.spill import new_query_scope

        scopes = {new_query_scope() for _ in range(100)}
        assert len(scopes) == 100

    def test_scoped_is_idempotent_and_picklable(self, spill_root):
        config = SpillConfig(directory=spill_root).scoped()
        assert config.scoped() is config
        assert pickle.loads(pickle.dumps(config)).scope == config.scope

    def test_same_partition_index_never_collides(self, spill_root):
        """Two queries spilling partition 3 land in disjoint scope dirs,
        and closing one query's manager leaves the other's files alone —
        the regression the per-query scope exists to prevent."""
        config_a = SpillConfig(directory=spill_root).scoped()
        config_b = SpillConfig(directory=spill_root).scoped()
        assert config_a.scope != config_b.scope
        manager_a = SpillManager(config_a, partition=3)
        manager_b = SpillManager(config_b, partition=3)
        writer_a = manager_a.new_run("sort")
        writer_b = manager_b.new_run("sort")
        records_a = [("a", i) for i in range(50)]
        records_b = [("b", i) for i in range(50)]
        for record in records_a:
            writer_a.write(record)
        for record in records_b:
            writer_b.write(record)
        handle_a = writer_a.finish()
        handle_b = writer_b.finish()
        assert manager_a.directory != manager_b.directory
        assert manager_a.directory.startswith(config_a.scope_directory())
        assert manager_b.directory.startswith(config_b.scope_directory())
        manager_a.close()
        # B's run file survives A's cleanup intact.
        assert list(handle_b) == records_b
        assert not os.path.exists(handle_a.path)  # A's file really is gone
        manager_b.close()
        for config in (config_a, config_b):
            scope_dir = config.scope_directory()
            if os.path.isdir(scope_dir):
                os.rmdir(scope_dir)

    def test_executor_removes_scope_directory(self, spill_root):
        """The executor stamps a scope per run and removes the whole
        scope tree when the query unwinds (spill_root fixture then
        asserts nothing leaked)."""
        source = make_source()
        executor = PartitionedExecutor(
            source, memory_budget_bytes=512, spill_dir=spill_root
        )
        result = executor.run(compile_query(GROUP_QUERY, RewriteConfig.all()).plan)
        assert result.stats.spill_events > 0
        assert os.listdir(spill_root) == []
        # the per-query scope is not pinned on the executor's base config
        assert executor._spill_config.scope is None

    def test_failing_manager_close_does_not_leak_scope(self, spill_root):
        """A manager whose cleanup itself raises (a cancelled query
        racing a spill-write error can leave run files already gone)
        must not skip the remaining managers or the scope-dir removal —
        the leak regression the executor's isolating finally fixes."""
        source = make_source()
        executor = PartitionedExecutor(
            source, memory_budget_bytes=512, spill_dir=spill_root
        )

        class BrokenManager:
            folded = False

            def fold_stats(self, stats):
                BrokenManager.folded = True
                raise OSError(5, "injected cleanup failure")

            def close(self):
                raise AssertionError("fold_stats already raised")

        original_context = executor._context

        def context_with_broken_manager(*args, **kwargs):
            ctx = original_context(*args, **kwargs)
            if not any(
                isinstance(m, BrokenManager) for m in executor._open_spills
            ):
                executor._open_spills.insert(0, BrokenManager())
            return ctx

        executor._context = context_with_broken_manager
        result = executor.run(
            compile_query(GROUP_QUERY, RewriteConfig.all()).plan
        )
        assert BrokenManager.folded
        assert result.stats.spill_events > 0
        assert os.listdir(spill_root) == []  # scope dir still removed

    def test_permanent_spill_fault_leaves_no_scope(self, spill_root):
        """A spill write that fails hard unwinds the query without
        leaking the per-query scope directory (the fixture asserts the
        root is empty afterwards)."""
        from repro.resilience import FaultPlan

        plan = FaultPlan().fail_spill(0, permanent=True)
        source = plan.wrap(make_source())
        with pytest.raises(Exception):
            run(
                source,
                GROUP_QUERY,
                spill_root=spill_root,
                memory_budget_bytes=512,
            )
        assert os.listdir(spill_root) == []

    def test_concurrent_queries_one_root(self, spill_root):
        """Many spilling queries through one spill root, concurrently —
        byte-identical results and an empty root afterwards."""
        from concurrent.futures import ThreadPoolExecutor

        source = make_source()
        expected = run(source, GROUP_QUERY).items

        def one_query(_):
            return run(
                source,
                GROUP_QUERY,
                spill_root=spill_root,
                memory_budget_bytes=512,
            ).items

        with ThreadPoolExecutor(max_workers=4) as pool:
            for items in pool.map(one_query, range(8)):
                assert items == expected


class TestTrackerDisciplines:
    def test_try_allocate_declines_without_charging(self):
        tracker = MemoryTracker(budget=100)
        assert tracker.try_allocate(60)
        assert not tracker.try_allocate(60)
        assert tracker.used == 60

    def test_force_allocate_records_overdraft(self):
        tracker = MemoryTracker(budget=100)
        tracker.force_allocate(150)
        assert tracker.used == 150
        assert tracker.overdraft_bytes == 50

    def test_release_flags_underflow(self):
        tracker = MemoryTracker()
        tracker.allocate(10)
        tracker.release(25)
        assert tracker.used == 0
        assert tracker.has_underflow
        assert tracker.underflow_bytes == 15

    def test_unbudgeted_try_allocate_always_succeeds(self):
        tracker = MemoryTracker()
        assert tracker.try_allocate(10**9)
        assert tracker.overdraft_bytes == 0
