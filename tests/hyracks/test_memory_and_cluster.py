"""Unit tests for memory tracking and the cluster makespan model."""

import pytest

from repro.errors import MemoryBudgetExceededError
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.memory import MemoryTracker


class TestMemoryTracker:
    def test_tracks_peak(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.allocate(50)
        tracker.release(120)
        tracker.allocate(10)
        assert tracker.used == 40
        assert tracker.peak == 150

    def test_release_never_negative(self):
        tracker = MemoryTracker()
        tracker.allocate(10)
        tracker.release(100)
        assert tracker.used == 0

    def test_budget_enforced(self):
        tracker = MemoryTracker(budget=100)
        tracker.allocate(90)
        with pytest.raises(MemoryBudgetExceededError):
            tracker.allocate(20)

    def test_budget_error_details(self):
        tracker = MemoryTracker(budget=10, context="unit test")
        with pytest.raises(MemoryBudgetExceededError) as excinfo:
            tracker.allocate(25)
        assert excinfo.value.used_bytes == 25
        assert excinfo.value.budget_bytes == 10
        assert "unit test" in str(excinfo.value)

    def test_reset(self):
        tracker = MemoryTracker()
        tracker.allocate(10)
        tracker.reset()
        assert tracker.used == 0 and tracker.peak == 0


class TestClusterSpec:
    def test_defaults_mirror_paper_testbed(self):
        spec = ClusterSpec()
        assert spec.cores_per_node == 4
        assert spec.hyperthreads_per_core == 2
        assert spec.partitions_per_node == 4
        assert spec.total_partitions == 4

    def test_partitions_on_own_cores(self):
        spec = ClusterSpec(nodes=1, cores_per_node=4, partitions_per_node=4)
        # 4 equal partitions, one per core: makespan = one partition.
        assert spec.makespan([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_hyperthreads_serialize(self):
        spec = ClusterSpec(nodes=1, cores_per_node=4, partitions_per_node=8)
        # 8 partitions of 0.5s on 4 cores: two per core, sequential,
        # plus the oversubscription overhead.
        makespan = spec.makespan([0.5] * 8)
        assert makespan == pytest.approx(1.0 * 1.025, rel=0.01)

    def test_speedup_flattens_at_hyperthreads(self):
        # Fixed total work of 4s split into p partitions, like Figure 17.
        times = {}
        for partitions in (1, 2, 4, 8):
            spec = ClusterSpec().single_node(partitions)
            times[partitions] = spec.makespan([4.0 / partitions] * partitions)
        assert times[2] == pytest.approx(times[1] / 2)
        assert times[4] == pytest.approx(times[1] / 4)
        assert times[8] >= times[4]  # the plateau

    def test_multi_node_divides_work(self):
        one = ClusterSpec(nodes=1).makespan([1.0] * 4)
        four = ClusterSpec(nodes=4).makespan([0.25] * 16)
        assert four < one / 3

    def test_lpt_balances_uneven_partitions(self):
        spec = ClusterSpec(nodes=1, cores_per_node=2, partitions_per_node=3)
        # 3 partitions (3s, 2s, 1s) on 2 cores: LPT puts 3 alone, 2+1
        # together -> makespan ~3s (times a small oversubscription fee).
        makespan = spec.makespan([3.0, 2.0, 1.0])
        assert 3.0 <= makespan <= 3.2

    def test_network_cost(self):
        spec = ClusterSpec(
            nodes=2, network_bandwidth_bytes_per_s=1e6, network_latency_s=0.0
        )
        base = spec.makespan([1.0] * 8)
        with_exchange = spec.makespan([1.0] * 8, exchange_bytes=1_000_000)
        assert with_exchange == pytest.approx(base + 0.5)  # 2 parallel links

    def test_global_phase_added(self):
        spec = ClusterSpec()
        assert spec.makespan([1.0] * 4, global_seconds=2.0) == pytest.approx(3.0)

    def test_empty_partition_list(self):
        assert ClusterSpec().makespan([], global_seconds=1.5) == 1.5

    def test_with_nodes_preserves_shape(self):
        spec = ClusterSpec(cores_per_node=8).with_nodes(5)
        assert spec.nodes == 5
        assert spec.cores_per_node == 8
