"""Unit tests for the frame layer."""

import pytest

from repro.errors import FrameOverflowError
from repro.hyracks.frames import FrameWriter, frame_stream, unframe
from repro.hyracks.tuples import sizeof_tuple


def tuples_of_size(count, payload="x" * 100):
    return [{"v": [payload + str(i)]} for i in range(count)]


class TestFrameWriter:
    def test_packs_multiple_tuples_per_frame(self):
        frames = []
        writer = FrameWriter(frame_bytes=4096, on_frame=frames.append)
        for tup in tuples_of_size(10):
            writer.write(tup)
        writer.flush()
        assert sum(len(f) for f in frames) == 10
        assert len(frames) < 10

    def test_respects_capacity(self):
        frames = []
        writer = FrameWriter(frame_bytes=1024, on_frame=frames.append)
        for tup in tuples_of_size(50):
            writer.write(tup)
        writer.flush()
        for frame in frames:
            assert frame.used <= frame.capacity

    def test_oversized_tuple_raises_by_default(self):
        writer = FrameWriter(frame_bytes=128)
        with pytest.raises(FrameOverflowError):
            writer.write({"v": ["y" * 1000]})

    def test_big_object_path(self):
        frames = []
        writer = FrameWriter(
            frame_bytes=128, allow_big_objects=True, on_frame=frames.append
        )
        writer.write({"v": ["y" * 1000]})
        writer.flush()
        assert writer.big_object_count == 1
        assert len(frames) == 1
        assert frames[0].capacity > 128

    def test_counters(self):
        writer = FrameWriter(frame_bytes=1 << 20)
        tuples = tuples_of_size(5)
        for tup in tuples:
            writer.write(tup)
        writer.flush()
        assert writer.tuples_written == 5
        assert writer.bytes_written == sum(sizeof_tuple(t) for t in tuples)
        assert writer.frames_emitted == 1

    def test_flush_empty_is_noop(self):
        frames = []
        writer = FrameWriter(on_frame=frames.append)
        writer.flush()
        assert frames == []


class TestFrameStream:
    def test_roundtrip(self):
        tuples = tuples_of_size(123)
        frames = frame_stream(tuples, frame_bytes=2048)
        assert list(unframe(frames)) == tuples

    def test_lazy_emission(self):
        # The generator must emit frames before the input is exhausted.
        produced = []

        def source():
            for tup in tuples_of_size(1000):
                produced.append(tup)
                yield tup

        stream = frame_stream(source(), frame_bytes=1024)
        next(stream)
        assert len(produced) < 1000

    def test_empty_input(self):
        assert list(frame_stream([])) == []
