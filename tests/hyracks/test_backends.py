"""Execution backends: three-way parity, picklability, and speedup."""

import json
import os
import pickle

import pytest

from repro import (
    FaultPlan,
    InMemorySource,
    JsonProcessor,
    ProcessBackend,
    ResilienceConfig,
    RetryPolicy,
    SequentialBackend,
    ThreadBackend,
)
from repro.data.catalog import CollectionCatalog
from repro.errors import PartitionExecutionError
from repro.hyracks.backends import (
    BackendError,
    PipelinedWork,
    WorkUnit,
    execute_work_unit,
    resolve_backend,
    stable_bucket,
)
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.executor import QueryResult
from repro.resilience import TransientFaultError

BACKEND_NAMES = ["sequential", "thread", "process"]

QUERY = 'for $r in collection("/events") return $r("v")'
COUNT_QUERY = 'count(for $r in collection("/events") return $r)'
GROUP_QUERY = (
    'for $r in collection("/events") '
    'group by $g := $r("g") return count($r("v"))'
)
JOIN_QUERY = (
    "avg( "
    'for $a in collection("/events") '
    'for $b in collection("/events") '
    'where $a("g") eq $b("g") and $a("side") eq "l" and $b("side") eq "r" '
    'return $b("v") - $a("v") )'
)


def make_source(on_malformed="fail", partitions=4, per_partition=6):
    collections = {
        "/events": [
            [
                "\n".join(
                    json.dumps(
                        {
                            "v": p * 100 + i,
                            "g": i % 3,
                            "side": "l" if i % 2 else "r",
                        }
                    )
                    for i in range(per_partition)
                )
            ]
            for p in range(partitions)
        ]
    }
    return InMemorySource(collections, on_malformed=on_malformed)


def run_backend(backend, query=QUERY, plan=None, config=None, **kwargs):
    processor = JsonProcessor(
        source=make_source(**{k: kwargs.pop(k) for k in list(kwargs) if k == "on_malformed"}),
        fault_plan=plan,
        resilience=config,
        backend=backend,
        **kwargs,
    )
    with processor:
        return processor.execute(query)


def fingerprint(result: QueryResult) -> dict:
    """Everything that must be byte-identical across backends."""
    return {
        "items": result.items,
        "strategy": result.strategy,
        "injected": result.injected_seconds,
        "stats": (
            result.stats.items_scanned,
            result.stats.scanned_item_bytes,
            result.stats.exchange_tuples,
            result.stats.exchange_bytes,
        ),
        "degradation": result.degradation.to_dict(),
    }


class TestCleanParity:
    @pytest.mark.parametrize(
        "query", [QUERY, COUNT_QUERY, GROUP_QUERY, JOIN_QUERY]
    )
    def test_backends_agree_on_clean_runs(self, query):
        reference = fingerprint(run_backend("sequential", query))
        for name in ("thread", "process"):
            assert fingerprint(run_backend(name, query)) == reference

    def test_result_records_backend_and_parallel_wall(self):
        for name in BACKEND_NAMES:
            result = run_backend(name)
            assert result.backend == name
            assert result.parallel_wall_seconds > 0.0
            assert result.parallel_wall_seconds <= result.wall_seconds

    def test_max_workers_cap(self):
        result = run_backend("process", max_workers=1)
        assert result.items == run_backend("sequential").items


class TestFaultParity:
    """Identical degradation under a fixed fault seed, every backend."""

    def scenario_retry(self):
        plan = FaultPlan(seed=7).fail_partition(1, times=2).delay_partition(3, 0.5)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=3, base_backoff_seconds=0.01, seed=7),
        )
        return plan, config

    def scenario_skip_partition(self):
        plan = FaultPlan(seed=11).fail_partition(2, permanent=True)
        config = ResilienceConfig(partition_policy="skip_partition")
        return plan, config

    def scenario_retry_then_skip(self):
        plan = FaultPlan(seed=13).fail_partition(0, permanent=True)
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=4, base_backoff_seconds=0.01, seed=13),
            on_exhausted="skip",
        )
        return plan, config

    def scenario_corruption(self):
        plan = FaultPlan(seed=5).corrupt_records(1, fraction=0.5)
        config = ResilienceConfig(partition_policy="fail_fast")
        return plan, config

    def scenario_retries_and_worker_loss(self):
        # The parity gap satellite: retries on two partitions, a seeded
        # delay, and a worker kill in one run — the merged report
        # (retry ordering AND the backend-neutral worker-loss event)
        # must come out identical on every backend.
        plan = (
            FaultPlan(seed=17)
            .fail_partition(1, times=2)
            .fail_partition(3, times=1)
            .delay_partition(0, 0.25)
            .kill_worker(2, attempt=1)
        )
        config = ResilienceConfig(
            partition_policy="retry",
            retry=RetryPolicy(max_attempts=3, base_backoff_seconds=0.01, seed=17),
        )
        return plan, config

    @pytest.mark.parametrize(
        "scenario",
        [
            "retry",
            "skip_partition",
            "retry_then_skip",
            "corruption",
            "retries_and_worker_loss",
        ],
    )
    @pytest.mark.parametrize("query", [QUERY, GROUP_QUERY])
    def test_degradation_identical_across_backends(self, scenario, query):
        make_scenario = getattr(self, f"scenario_{scenario}")
        on_malformed = "skip_record" if scenario == "corruption" else "fail"
        results = {}
        for name in BACKEND_NAMES:
            plan, config = make_scenario()
            results[name] = fingerprint(
                run_backend(
                    name,
                    query,
                    plan=plan,
                    config=config,
                    on_malformed=on_malformed,
                )
            )
        assert results["thread"] == results["sequential"]
        assert results["process"] == results["sequential"]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fail_fast_raises_first_partition_in_order(self, name):
        # Two failing partitions: the coordinator must surface the
        # lower-numbered one no matter which worker finishes first.
        plan = (
            FaultPlan(seed=3)
            .fail_partition(1, times=1)
            .fail_partition(3, times=1)
        )
        with pytest.raises(PartitionExecutionError) as excinfo:
            run_backend(name, plan=plan)
        error = excinfo.value
        assert error.partition == 1
        assert error.collections == ("/events",)
        assert isinstance(error.__cause__, TransientFaultError)


class TestPicklability:
    def test_work_unit_round_trip_with_catalog(self, tmp_path):
        collection = tmp_path / "events" / "partition0"
        collection.mkdir(parents=True)
        (collection / "data.json").write_text('{"v": 1}\n{"v": 2}')
        catalog = CollectionCatalog(str(tmp_path))
        processor = JsonProcessor(source=catalog)
        plan = processor.compile(QUERY).plan
        unit = WorkUnit(
            plan=plan,
            partition=0,
            work=PipelinedWork(plan),
            source=catalog,
            functions=None,
            memory_budget=None,
            resilience=ResilienceConfig(),
        )
        clone = pickle.loads(pickle.dumps(unit))
        direct = execute_work_unit(unit)
        via_pickle = execute_work_unit(clone)
        assert direct.value == via_pickle.value == [1, 2]
        assert via_pickle.stats.items_scanned == direct.stats.items_scanned

    def test_partition_error_survives_pickle_with_cause(self):
        cause = TransientFaultError("injected")
        error = PartitionExecutionError(
            2, cause, collections=("/events",), attempts=3
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.partition == 2
        assert clone.attempts == 3
        assert str(clone) == str(error)
        assert isinstance(clone.__cause__, TransientFaultError)

    def test_unpicklable_source_gets_clear_backend_error(self):
        source = make_source()
        source.poison = lambda: None  # lambdas cannot pickle
        processor = JsonProcessor(source=source, backend="process")
        with processor, pytest.raises(BackendError, match="not\\s+picklable"):
            processor.execute(QUERY)


class TestResolution:
    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert resolve_backend(None).name == "thread"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None).name == "sequential"

    def test_instance_passthrough_rejects_max_workers(self):
        backend = SequentialBackend()
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError, match="max_workers"):
            resolve_backend(ThreadBackend(), max_workers=2)

    def test_backend_instances_are_context_managers(self):
        with ProcessBackend(max_workers=1) as backend:
            assert backend.run_units([]) is not None

    def test_stable_bucket_is_deterministic(self):
        assert stable_bucket(("a", 1), 4) == stable_bucket(("a", 1), 4)
        assert 0 <= stable_bucket(("x",), 3) < 3


class TestSimulatedSeconds:
    def test_sequential_smooths_jitter(self):
        cluster = ClusterSpec(nodes=1, cores_per_node=2)
        result = QueryResult(
            [], partition_seconds=[1.0, 3.0], backend="sequential"
        )
        smoothed = result.simulated_seconds(cluster)
        raw = result.simulated_seconds(cluster, smooth=False)
        # Smoothing places two mean-sized (2.0s) partitions on two
        # cores; raw placement is bounded by the 3.0s straggler.
        assert smoothed == pytest.approx(cluster.makespan([2.0, 2.0]))
        assert raw == pytest.approx(cluster.makespan([1.0, 3.0]))
        assert smoothed < raw

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_parallel_backends_never_smooth(self, name):
        cluster = ClusterSpec(nodes=1, cores_per_node=2)
        result = QueryResult([], partition_seconds=[1.0, 3.0], backend=name)
        # Measured contention is real skew, not jitter: smooth is ignored.
        assert result.simulated_seconds(cluster) == pytest.approx(
            cluster.makespan([1.0, 3.0])
        )
        assert result.simulated_seconds(cluster) == result.simulated_seconds(
            cluster, smooth=False
        )


@pytest.mark.benchmark
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least two cores",
)
class TestSpeedup:
    def test_process_backend_speeds_up_q0(self, tmp_path):
        from repro.data.generator import SensorDataConfig, write_sensor_collection

        write_sensor_collection(
            str(tmp_path),
            "sensors",
            partitions=4,
            bytes_per_partition=1 << 20,
            config=SensorDataConfig(seed=42),
        )
        query = (
            'for $r in collection("/sensors")("root")()("results")() '
            'where $r("dataType") eq "TMIN" return $r("value")'
        )

        def timed(backend):
            with JsonProcessor.from_directory(
                str(tmp_path), backend=backend
            ) as processor:
                processor.execute(query)  # warm caches / pools
                result = processor.execute(query)
            return result

        sequential = timed("sequential")
        process = timed("process")
        assert process.items == sequential.items
        speedup = (
            sequential.parallel_wall_seconds / process.parallel_wall_seconds
        )
        assert speedup >= 1.5
