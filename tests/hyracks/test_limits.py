"""Query deadlines and cooperative cancellation."""

import json
import os
import pickle
import time

import pytest

from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.data.catalog import InMemorySource
from repro.hyracks.limits import (
    CHECK_STRIDE,
    CancellationToken,
    ExecutionLimits,
    QueryDeadline,
    resolve_deadline_seconds,
)
from repro.processor import JsonProcessor


def make_source(records: int = 200):
    rows = [
        {"date": f"d{i % 11}", "dataType": "TMIN", "station": f"S{i % 5}",
         "value": i}
        for i in range(records)
    ]
    text = json.dumps({"root": [{"results": rows}]})
    return InMemorySource(collections={"/s": [[text], [text]]})


GROUP_QUERY = (
    'for $r in collection("/s")("root")()("results")() '
    'group by $d := $r("date") return count($r("station"))'
)


class TestResolveDeadline:
    def test_none_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEADLINE", raising=False)
        assert resolve_deadline_seconds(None) is None

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        assert resolve_deadline_seconds(None) == 2.5

    def test_env_zero_means_no_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "0")
        assert resolve_deadline_seconds(None) is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        assert resolve_deadline_seconds(7.0) == 7.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            resolve_deadline_seconds(-1.0)


class TestQueryDeadline:
    def test_remaining_and_expiry(self):
        deadline = QueryDeadline.start(60.0)
        assert 0 < deadline.remaining() <= 60.0
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expired_raises_with_details(self):
        deadline = QueryDeadline(0.001)
        time.sleep(0.005)
        assert deadline.expired()
        with pytest.raises(QueryTimeoutError) as exc_info:
            deadline.check()
        error = exc_info.value
        assert error.deadline_seconds == 0.001
        assert error.elapsed_seconds >= 0.001
        assert error.retryable is False

    def test_pickle_preserves_absolute_expiry(self):
        deadline = QueryDeadline.start(60.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expires_at == deadline.expires_at
        assert clone.deadline_seconds == deadline.deadline_seconds


class TestCancellationToken:
    def test_cancel_then_check_raises(self):
        token = CancellationToken()
        token.check()  # not cancelled yet
        token.cancel("operator abort")
        assert token.cancelled
        with pytest.raises(QueryCancelledError) as exc_info:
            token.check()
        assert "operator abort" in str(exc_info.value)
        assert exc_info.value.retryable is False

    def test_flag_file_crosses_processes(self, tmp_path):
        flag = str(tmp_path / "cancel.flag")
        token = CancellationToken(flag_path=flag)
        # Simulate the coordinator's cancel arriving via the filesystem:
        # a fresh token object (as a forked worker would hold) sees it.
        other = pickle.loads(pickle.dumps(token))
        assert not other.cancelled
        token.cancel("stop")
        assert os.path.exists(flag)
        assert other.cancelled

    def test_pickle_carries_cancelled_snapshot(self):
        token = CancellationToken()
        token.cancel()
        clone = pickle.loads(pickle.dumps(token))
        assert clone.cancelled


class TestExecutionLimits:
    def test_checkpoint_is_strided(self):
        token = CancellationToken()
        limits = ExecutionLimits(token=token)
        token.cancel()
        # The first CHECK_STRIDE - 1 checkpoints are free.
        for _ in range(CHECK_STRIDE - 1):
            limits.checkpoint()
        with pytest.raises(QueryCancelledError):
            limits.checkpoint()

    def test_check_is_immediate(self):
        token = CancellationToken()
        limits = ExecutionLimits(token=token)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            limits.check()

    def test_inactive_limits(self):
        limits = ExecutionLimits()
        assert not limits.active
        assert limits.remaining_seconds() is None
        limits.check()

    def test_pickle_roundtrip(self):
        limits = ExecutionLimits(
            QueryDeadline.start(60.0), CancellationToken()
        )
        clone = pickle.loads(pickle.dumps(limits))
        assert clone.active
        assert clone.remaining_seconds() is not None


class TestErrorsPickle:
    def test_timeout_error(self):
        error = QueryTimeoutError(5.0, 6.2)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.deadline_seconds == 5.0
        assert clone.elapsed_seconds == 6.2

    def test_cancelled_error(self):
        error = QueryCancelledError("why")
        clone = pickle.loads(pickle.dumps(error))
        assert "why" in str(clone)


class TestQueryLevelLimits:
    def test_deadline_exceeded_raises_and_reports(self, tmp_path):
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=2048,
            spill_dir=str(tmp_path),
            deadline_seconds=1e-6,
        )
        with pytest.raises(QueryTimeoutError) as exc_info:
            processor.execute(GROUP_QUERY)
        report = exc_info.value.degradation
        assert report is not None
        assert report.cancellations
        assert report.cancellations[0].kind == "timeout"
        assert os.listdir(str(tmp_path)) == []  # zero temp files

    def test_pre_cancelled_token_raises(self, tmp_path):
        token = CancellationToken()
        token.cancel("shed load")
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=2048,
            spill_dir=str(tmp_path),
        )
        with pytest.raises(QueryCancelledError) as exc_info:
            processor.execute(GROUP_QUERY, cancellation=token)
        assert exc_info.value.degradation.cancellations[0].kind == "cancelled"
        assert os.listdir(str(tmp_path)) == []

    def test_generous_deadline_reports_slack(self):
        processor = JsonProcessor(
            source=make_source(20), deadline_seconds=300.0
        )
        result = processor.execute(GROUP_QUERY)
        assert result.deadline_slack_seconds is not None
        assert 0 < result.deadline_slack_seconds <= 300.0

    def test_no_deadline_means_no_slack(self):
        result = JsonProcessor(source=make_source(20)).execute(GROUP_QUERY)
        assert result.deadline_slack_seconds is None

    def test_env_deadline_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "0.000001")
        processor = JsonProcessor(source=make_source())
        with pytest.raises(QueryTimeoutError):
            processor.execute(GROUP_QUERY)

    def test_timeout_never_retried(self, tmp_path):
        from repro.resilience.policies import ResilienceConfig
        from repro.resilience.retry import RetryPolicy

        processor = JsonProcessor(
            source=make_source(),
            deadline_seconds=1e-6,
            resilience=ResilienceConfig(
                partition_policy="retry", retry=RetryPolicy(max_attempts=5)
            ),
        )
        with pytest.raises(QueryTimeoutError) as exc_info:
            processor.execute(GROUP_QUERY)
        # A query-global limit is not a partition fault: no retries.
        assert exc_info.value.degradation.retry_count == 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_deadline_crosses_backends(self, tmp_path, backend):
        processor = JsonProcessor(
            source=make_source(),
            memory_budget_bytes=2048,
            spill_dir=str(tmp_path),
            deadline_seconds=1e-6,
            backend=backend,
            max_workers=2,
        )
        try:
            with pytest.raises(QueryTimeoutError):
                processor.execute(GROUP_QUERY)
        finally:
            processor.close()
        assert os.listdir(str(tmp_path)) == []
