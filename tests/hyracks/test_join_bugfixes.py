"""Regression tests for the join-semantics and limits bugfix sweep.

Three fixes, each with a failing-before/passing-after test:

- the non-spill nested-loop build now checkpoints limits with a stride,
  so cancellation can unwind while the inner side is still streaming
  (before: ``list(right_stream)`` consumed the whole input first);
- a join keyed on a multi-item sequence raises the same
  ``ItemTypeError`` on every physical path (naive nested loop, hash,
  exchange across partitions, grace/spill) instead of only on some;
- ``build_tuples``/``probe_tuples`` profile counters follow the
  *physical* build side chosen by the cost phase, and dropped
  empty-key tuples are counted as ``join_keys_dropped``.
"""

import json

import pytest

from repro import JsonProcessor
from repro.algebra.context import EvaluationContext
from repro.algebra.expressions import Literal
from repro.algebra.operators import EmptyTupleSource, Join
from repro.algebra.rules import RewriteConfig
from repro.data.catalog import InMemorySource
from repro.errors import ItemTypeError, QueryCancelledError, ReproError
from repro.hyracks.limits import CancellationToken, ExecutionLimits
from repro.hyracks.operators import _NLJOIN_CHECK_STRIDE, _nested_loop_join

MULTI_SEQ_MESSAGE = "value comparison 'eq' over a multi-item sequence"


# ---------------------------------------------------------------------------
# Fix 1: nested-loop build-side cancellation
# ---------------------------------------------------------------------------


class TestNestedLoopBuildCancellation:
    def test_cancel_unwinds_mid_build(self):
        token = CancellationToken()
        consumed = []

        def right_stream(total=50_000):
            for index in range(total):
                if index == 100:
                    token.cancel("test cancel")
                consumed.append(index)
                yield {"r": [index]}

        op = Join(EmptyTupleSource(), EmptyTupleSource(), Literal([True]))
        ctx = EvaluationContext(limits=ExecutionLimits(token=token))
        joined = _nested_loop_join(
            iter([{"l": [0]}]), right_stream(), op, ctx
        )
        with pytest.raises(QueryCancelledError):
            list(joined)
        # The regression: without the strided checkpoint the build loop
        # materialized all 50k tuples before anything could raise.
        assert 100 < len(consumed) < 50_000

    def test_uncancelled_build_joins_everything(self):
        op = Join(EmptyTupleSource(), EmptyTupleSource(), Literal([True]))
        ctx = EvaluationContext(
            limits=ExecutionLimits(token=CancellationToken())
        )
        left = [{"l": [i]} for i in range(3)]
        right = ({"r": [i]} for i in range(2 * _NLJOIN_CHECK_STRIDE + 1))
        joined = list(_nested_loop_join(iter(left), right, op, ctx))
        assert len(joined) == 3 * (2 * _NLJOIN_CHECK_STRIDE + 1)


# ---------------------------------------------------------------------------
# Fix 2: multi-item join keys raise the same error on every path
# ---------------------------------------------------------------------------


MEASUREMENTS = [
    {"station": "a", "attributes": ["x", "y"]},
    {"station": "b", "attributes": ["x"]},
    {"station": "c", "attributes": []},
    {"station": "d", "attributes": ["x"]},
]

SELF_JOIN = (
    'for $a in collection("/m")() '
    'for $b in collection("/m")() '
    'where $a("attributes")() eq $b("attributes")() '
    'return $b("station")'
)


def measurements_source(rows, partitions=1):
    parts = [[] for _ in range(partitions)]
    for index, row in enumerate(rows):
        parts[index % partitions].append(row)
    return InMemorySource(
        {"/m": [[json.dumps(part)] for part in parts]}, stats_sample=0
    )


def assert_multiseq_error(run):
    with pytest.raises(ReproError) as info:
        run()
    node, seen = info.value, set()
    while node is not None and id(node) not in seen:
        if isinstance(node, ItemTypeError) and MULTI_SEQ_MESSAGE in str(node):
            return
        seen.add(id(node))
        node = node.__cause__ or node.__context__
    pytest.fail(
        f"expected ItemTypeError({MULTI_SEQ_MESSAGE!r}) in the cause "
        f"chain, got {info.value!r}"
    )


class TestMultiItemJoinKeys:
    def test_naive_nested_loop_raises(self):
        processor = JsonProcessor(
            source=measurements_source(MEASUREMENTS),
            rewrite=RewriteConfig.none(),
        )
        assert_multiseq_error(lambda: processor.evaluate(SELF_JOIN))

    def test_hash_join_raises(self):
        processor = JsonProcessor(source=measurements_source(MEASUREMENTS))
        assert_multiseq_error(lambda: processor.evaluate(SELF_JOIN))

    def test_exchange_path_raises(self):
        with JsonProcessor(
            source=measurements_source(MEASUREMENTS, partitions=2),
            backend="thread",
            max_workers=2,
        ) as processor:
            assert_multiseq_error(lambda: processor.evaluate(SELF_JOIN))

    def test_grace_spill_path_raises(self):
        processor = JsonProcessor(
            source=measurements_source(MEASUREMENTS * 20),
            memory_budget_bytes=2048,
        )
        assert_multiseq_error(lambda: processor.evaluate(SELF_JOIN))

    def test_single_item_keys_still_join(self):
        rows = [row for row in MEASUREMENTS if len(row["attributes"]) <= 1]
        expected = None
        for config in (RewriteConfig.none(), RewriteConfig.all()):
            processor = JsonProcessor(
                source=measurements_source(rows), rewrite=config
            )
            result = sorted(processor.evaluate(SELF_JOIN))
            if expected is None:
                # b and d share the "x" attribute; c's empty sequence
                # never compares equal (and never errors).
                assert result == ["b", "b", "d", "d"]
                expected = result
            assert result == expected


# ---------------------------------------------------------------------------
# Fix 3: profile counters follow the physical build side
# ---------------------------------------------------------------------------


SMALL = [{"k": i % 5, "s": f"s{i}"} for i in range(5)]
BIG = [{"k": i % 5, "v": i} for i in range(200)] + [
    {"v": 1000 + i} for i in range(10)  # no key: dropped, not joined
]

COUNTER_JOIN = (
    'for $s in collection("/small")() '
    'for $b in collection("/big")() '
    'where $s("k") eq $b("k") '
    'return $b("v")'
)


def counter_source():
    return InMemorySource(
        {
            "/small": [[json.dumps(SMALL)]],
            "/big": [[json.dumps(BIG)]],
        },
        stats_sample=10_000,
    )


def join_counters(processor):
    profile = processor.profile(COUNTER_JOIN)
    nodes = profile.find("JOIN")
    assert nodes, "no JOIN operator in the profile"
    merged: dict[str, int] = {}
    for node in nodes:
        for name, value in node.counters.items():
            merged[name] = merged.get(name, 0) + value
    return merged


class TestJoinCounters:
    def test_default_build_side_is_right(self):
        counters = join_counters(
            JsonProcessor(source=counter_source(), cost=False)
        )
        assert counters["build_tuples"] == len(BIG)
        assert counters["probe_tuples"] == len(SMALL)

    def test_counters_follow_cost_chosen_build_side(self):
        # The cost phase builds on the small side; the counters must
        # report the physical roles, not the syntactic left/right.
        counters = join_counters(
            JsonProcessor(source=counter_source(), cost=True)
        )
        assert counters["build_tuples"] == len(SMALL)
        assert counters["probe_tuples"] == len(BIG)

    @pytest.mark.parametrize("cost", [True, False])
    def test_dropped_keys_are_counted(self, cost):
        counters = join_counters(
            JsonProcessor(source=counter_source(), cost=cost)
        )
        assert counters["join_keys_dropped"] == 10
