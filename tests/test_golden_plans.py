"""Golden plan tests: pin the exact plan each rule toggle produces.

Every (paper query, rewrite toggle) pair has a checked-in ``explain()``
report under ``tests/golden_plans/``, plus a ``cost`` pseudo-toggle
compiled against the deterministic demo statistics snapshot.  A failure
here means a rewrite rule, the translator, or the cost model changed
the plan shape — if intentional, regenerate with
``PYTHONPATH=src python tools/update_golden_plans.py`` and review the
diff.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tools.update_golden_plans import (
    GOLDEN_DIR,
    all_combos,
    golden_name,
    render,
)

COMBOS = all_combos()


def test_every_combo_has_a_golden_file():
    expected = {golden_name(q, t) for q, t in COMBOS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert actual == expected


@pytest.mark.parametrize(
    "query_name, toggle", COMBOS, ids=[f"{q}-{t}" for q, t in COMBOS]
)
def test_plan_matches_golden(query_name, toggle):
    golden = (GOLDEN_DIR / golden_name(query_name, toggle)).read_text()
    assert render(query_name, toggle) == golden, (
        f"plan for {query_name} under toggle {toggle!r} changed; if "
        "intentional, regenerate via tools/update_golden_plans.py"
    )


def test_toggles_change_the_plan():
    """Sanity: the toggles are not vacuous — for the grouped queries,
    disabling a family really does alter the rewritten plan."""
    q1_all = render("Q1", "all")
    assert render("Q1", "none") != q1_all
    assert render("Q1", "no-groupby") != q1_all
    assert render("Q0", "no-path") != render("Q0", "all")


def test_cost_changes_the_demo_plans():
    """Sanity: the cost phase is not vacuous — each demo join picks up
    a different physical annotation from the demo statistics."""
    assert "exchange=broadcast" in render("QJbroadcast", "cost")
    assert "skew=" in render("QJskew", "cost")
    for name in ("QJbroadcast", "QJskew", "QJorder"):
        assert render(name, "cost") != render(name, "all").replace(
            "toggle 'all'", "toggle 'cost'"
        )


def test_cost_leaves_symmetric_paper_queries_alone():
    """The paper queries are self-joins over one collection: stats are
    present for ``/sensors``, but no decision fires — only the header
    line may differ from the ``all`` golden."""
    for query_name in ("Q0", "Q1", "Q2"):
        costed = render(query_name, "cost")
        baseline = render(query_name, "all")
        assert costed.replace("toggle 'cost'", "toggle 'all'") == baseline
