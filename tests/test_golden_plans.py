"""Golden plan tests: pin the exact plan each rule toggle produces.

Every (paper query, rewrite toggle) pair has a checked-in ``explain()``
report under ``tests/golden_plans/``.  A failure here means a rewrite
rule (or the translator) changed the plan shape — if intentional,
regenerate with ``PYTHONPATH=src python tools/update_golden_plans.py``
and review the diff.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.algebra.rules import TOGGLE_CONFIGS
from repro.bench.queries import ALL_QUERIES

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tools.update_golden_plans import GOLDEN_DIR, golden_name, render

COMBOS = [
    (query_name, toggle)
    for query_name in ALL_QUERIES
    for toggle in TOGGLE_CONFIGS
]


def test_every_combo_has_a_golden_file():
    expected = {golden_name(q, t) for q, t in COMBOS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert actual == expected


@pytest.mark.parametrize(
    "query_name, toggle", COMBOS, ids=[f"{q}-{t}" for q, t in COMBOS]
)
def test_plan_matches_golden(query_name, toggle):
    golden = (GOLDEN_DIR / golden_name(query_name, toggle)).read_text()
    assert render(query_name, toggle) == golden, (
        f"plan for {query_name} under toggle {toggle!r} changed; if "
        "intentional, regenerate via tools/update_golden_plans.py"
    )


def test_toggles_change_the_plan():
    """Sanity: the toggles are not vacuous — for the grouped queries,
    disabling a family really does alter the rewritten plan."""
    q1_all = render("Q1", "all")
    assert render("Q1", "none") != q1_all
    assert render("Q1", "no-groupby") != q1_all
    assert render("Q0", "no-path") != render("Q0", "all")
