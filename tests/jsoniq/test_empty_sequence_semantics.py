"""Empty-sequence semantics: comparisons and functions over ``()``.

XQuery 3.1 §3.7.2 (general comparisons): a general comparison where one
operand is the empty sequence is **false** — there is no pair of items
to satisfy the comparison — so a predicate on a missing object key must
silently select nothing, never raise or coerce to null.  The same rule
makes an equi-join drop tuples whose key is missing: ``() eq ()`` is
false, so two records both lacking the join key must NOT match.

XPath F&O: string functions with ``xs:string?`` parameters treat an
empty-sequence argument as the zero-length string (5.4.7/5.4.8
upper/lower-case, 5.5.1 contains, 5.5.2 starts-with, 5.4.3 substring);
``fn:number(())`` is NaN (4.5.1), which this NaN-free engine maps to
the empty sequence.
"""

import pytest

from repro import JsonProcessor
from repro.jsoniq.functions import BUILTIN_FUNCTIONS


def call(name, *args):
    return BUILTIN_FUNCTIONS[(name, len(args))](list(args))


RECORDS = (
    '{"station": "S1", "value": 4}\n'
    '{"station": "S2"}\n'  # no value key
    '{"station": "S3", "value": null}\n'
    '{"value": 9}'  # no station key
)


@pytest.fixture
def processor():
    return JsonProcessor.in_memory(collections={"/m": [[RECORDS]]})


def q(processor, body):
    return processor.evaluate(f'for $m in collection("/m") {body}')


class TestGeneralComparisonWithEmpty:
    def test_predicate_on_missing_key_is_false(self, processor):
        # $m("value") is () for S2; the comparison must be false, not an
        # error and not a null coercion.
        got = q(processor, 'where $m("value") eq 4 return $m("station")')
        assert got == ["S1"]

    def test_ordering_comparison_with_missing_key(self, processor):
        # S2 (no value) is filtered out; the matching record without a
        # station returns (), which contributes nothing.
        got = q(processor, 'where $m("value") gt 3 return $m("station")')
        assert got == ["S1"]

    def test_ne_against_missing_key_is_also_false(self, processor):
        # () ne anything is false too — no pair of items exists.  null
        # ne 4 is true (null is an item, incomparable to a number).
        got = q(processor, 'where $m("value") ne 4 return $m("station")')
        assert got == ["S3"]

    def test_literal_empty_comparisons(self):
        processor = JsonProcessor()
        assert processor.evaluate("if (() eq ()) then 1 else 2") == [2]
        assert processor.evaluate("if (1 eq ()) then 1 else 2") == [2]
        assert processor.evaluate("if (() ne 1) then 1 else 2") == [2]

    def test_null_is_not_empty(self, processor):
        # null is an item: null eq null is true, unlike () eq ().
        got = q(processor, 'where $m("value") eq null return $m("station")')
        assert got == ["S3"]


class TestJoinOnMissingKeys:
    def test_missing_join_keys_do_not_match_each_other(self):
        left = '{"k": 1, "tag": "a"}\n{"tag": "b"}'
        right = '{"k": 1, "tag": "x"}\n{"tag": "y"}'
        processor = JsonProcessor.in_memory(
            collections={"/l": [[left]], "/r": [[right]]}
        )
        got = processor.evaluate(
            'for $l in collection("/l") for $r in collection("/r") '
            'where $l("k") eq $r("k") '
            'return [$l("tag"), $r("tag")]'
        )
        assert got == [["a", "x"]]

    def test_missing_join_keys_hash_exchange_path(self):
        # Same semantics through the partitioned two-phase hash join
        # (ExchangeWork buckets + per-bucket join) on the process backend.
        left = ['{"k": 1, "tag": "a"}\n{"tag": "b"}', '{"tag": "c"}']
        right = ['{"k": 1, "tag": "x"}', '{"tag": "y"}\n{"k": 2, "tag": "z"}']
        with JsonProcessor.in_memory(
            collections={"/l": [[t] for t in left], "/r": [[t] for t in right]},
            backend="process",
            max_workers=2,
        ) as processor:
            got = processor.evaluate(
                'for $l in collection("/l") for $r in collection("/r") '
                'where $l("k") eq $r("k") '
                'return [$l("tag"), $r("tag")]'
            )
        assert got == [["a", "x"]]


class TestEmptyArgumentFunctions:
    def test_number_of_empty_is_empty(self):
        # F&O 4.5.1: number(()) is NaN; the NaN-free variant returns ().
        assert call("number", []) == []
        # JSONiq: number(null) is NaN too — same mapping.
        assert call("number", [None]) == []

    def test_string_functions_treat_empty_as_zero_length(self):
        assert call("upper-case", []) == [""]
        assert call("lower-case", []) == [""]
        assert call("substring", [], [1]) == [""]
        assert call("contains", [], ["x"]) == [False]
        assert call("contains", ["x"], []) == [True]
        assert call("starts-with", [], ["x"]) == [False]
        assert call("starts-with", ["x"], []) == [True]

    def test_number_over_missing_key_in_query(self, processor):
        # number(()) and number(null) are both (); gt is then false.
        got = q(
            processor,
            'where number($m("value")) gt 3 return $m("station")',
        )
        assert got == ["S1"]
