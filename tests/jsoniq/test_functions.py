"""Unit tests for the builtin function library."""

import datetime

import pytest

from repro.errors import ItemTypeError
from repro.jsoniq.functions import BUILTIN_FUNCTIONS, parse_datetime


def call(name, *args):
    return BUILTIN_FUNCTIONS[(name, len(args))](list(args))


class TestAggregates:
    def test_count(self):
        assert call("count", [1, 2, 3]) == [3]
        assert call("count", []) == [0]

    def test_sum(self):
        assert call("sum", [1, 2, 3.5]) == [6.5]
        assert call("sum", []) == [0]

    def test_avg(self):
        assert call("avg", [2, 4]) == [3]
        assert call("avg", []) == []

    def test_min_max(self):
        assert call("min", [3, 1, 2]) == [1]
        assert call("max", [3, 1, 2]) == [3]
        assert call("min", []) == []

    def test_aggregate_type_errors(self):
        with pytest.raises(ItemTypeError):
            call("sum", ["x"])


class TestDateTime:
    def test_compact_format(self):
        assert parse_datetime("20131225T00:00") == datetime.datetime(2013, 12, 25)

    def test_compact_with_seconds(self):
        assert parse_datetime("20131225T10:30:15") == datetime.datetime(
            2013, 12, 25, 10, 30, 15
        )

    def test_iso_format(self):
        assert parse_datetime("2013-12-25T01:02:03") == datetime.datetime(
            2013, 12, 25, 1, 2, 3
        )

    def test_invalid(self):
        with pytest.raises(ItemTypeError):
            parse_datetime("not a date")

    def test_datetime_function(self):
        assert call("dateTime", ["20031225T00:00"]) == [
            datetime.datetime(2003, 12, 25)
        ]

    def test_datetime_empty_propagates(self):
        assert call("dateTime", []) == []

    def test_datetime_passthrough(self):
        dt = datetime.datetime(2000, 1, 1)
        assert call("dateTime", [dt]) == [dt]

    def test_components(self):
        dt = datetime.datetime(2013, 12, 25, 10, 30)
        assert call("year-from-dateTime", [dt]) == [2013]
        assert call("month-from-dateTime", [dt]) == [12]
        assert call("day-from-dateTime", [dt]) == [25]
        assert call("hours-from-dateTime", [dt]) == [10]
        assert call("minutes-from-dateTime", [dt]) == [30]

    def test_component_type_error(self):
        with pytest.raises(ItemTypeError):
            call("year-from-dateTime", ["2013"])


class TestAtomization:
    def test_data_identity_on_atomics(self):
        assert call("data", ["x", 1, True, None]) == ["x", 1, True, None]

    def test_data_rejects_containers(self):
        with pytest.raises(ItemTypeError):
            call("data", [{"a": 1}])


class TestConversions:
    def test_string(self):
        assert call("string", [5]) == ["5"]
        assert call("string", [True]) == ["true"]
        assert call("string", [None]) == ["null"]
        assert call("string", []) == [""]

    def test_number(self):
        assert call("number", ["42"]) == [42]
        assert call("number", ["2.5"]) == [2.5]
        assert call("number", [True]) == [1]

    def test_number_invalid(self):
        with pytest.raises(ItemTypeError):
            call("number", ["abc"])

    def test_number_accepts_json_numeric_grammar(self):
        assert call("number", ["-17"]) == [-17]
        assert call("number", ["0"]) == [0]
        assert call("number", ["-0.5"]) == [-0.5]
        assert call("number", ["6.02e23"]) == [6.02e23]
        assert call("number", ["1E-3"]) == [0.001]
        # Exponent form is a float even when integral.
        assert call("number", ["1e2"]) == [100.0]
        assert isinstance(call("number", ["1e2"])[0], float)
        assert isinstance(call("number", ["42"])[0], int)

    @pytest.mark.parametrize(
        "text",
        [
            "inf",
            "-inf",
            "Infinity",
            "nan",
            "NaN",
            "1_000",
            "  12  ",
            "12\n",
            "+1",
            ".5",
            "1.",
            "01",
            "0x1f",
            "1e",
            "",
        ],
    )
    def test_number_rejects_non_json_spellings(self, text):
        # Python's float() is far more liberal than the JSON numeric
        # grammar; fn:number must not inherit that liberality.
        with pytest.raises(ItemTypeError):
            call("number", [text])

    def test_boolean_and_not(self):
        assert call("boolean", [1]) == [True]
        assert call("not", []) == [True]
        assert call("not", [True]) == [False]


class TestNumeric:
    def test_abs(self):
        assert call("abs", [-3]) == [3]

    def test_floor_ceiling(self):
        assert call("floor", [2.7]) == [2]
        assert call("ceiling", [2.1]) == [3]

    def test_round_half_up(self):
        assert call("round", [2.5]) == [3]
        assert call("round", [-2.5]) == [-2]

    def test_empty_propagates(self):
        assert call("abs", []) == []


class TestStrings:
    def test_concat(self):
        assert call("concat", ["a"], ["b"], [1]) == ["ab1"]

    def test_concat_skips_empty(self):
        assert call("concat", ["a"], [], ["c"]) == ["ac"]

    def test_string_join(self):
        assert call("string-join", ["a", "b"], [","]) == ["a,b"]

    def test_substring(self):
        assert call("substring", ["hello"], [2]) == ["ello"]
        assert call("substring", ["hello"], [2], [3]) == ["ell"]

    def test_substring_xquery_spec_examples(self):
        # The worked examples from the XQuery F&O spec for fn:substring.
        assert call("substring", ["motor car"], [6]) == [" car"]
        assert call("substring", ["metadata"], [4], [3]) == ["ada"]
        assert call("substring", ["12345"], [1.5], [2.6]) == ["234"]
        assert call("substring", ["12345"], [0], [3]) == ["12"]
        assert call("substring", ["12345"], [5], [-3]) == [""]
        assert call("substring", ["12345"], [-3], [5]) == ["1"]

    def test_substring_rounds_not_truncates(self):
        # round(1.5) = 2, round(2.6) = 3 — truncation would give "123".
        assert call("substring", ["abcde"], [2.5]) == ["cde"]
        assert call("substring", ["abcde"], [1.4]) == ["abcde"]

    def test_substring_infinite_and_nan_args(self):
        inf = float("inf")
        nan = float("nan")
        assert call("substring", ["12345"], [-42], [inf]) == ["12345"]
        assert call("substring", ["12345"], [-inf], [inf]) == [""]
        assert call("substring", ["12345"], [inf]) == [""]
        assert call("substring", ["12345"], [nan]) == [""]
        assert call("substring", ["12345"], [1], [nan]) == [""]

    def test_string_length(self):
        assert call("string-length", ["abc"]) == [3]
        assert call("string-length", []) == [0]

    def test_contains_and_starts_with(self):
        assert call("contains", ["hello"], ["ell"]) == [True]
        assert call("starts-with", ["hello"], ["he"]) == [True]
        assert call("starts-with", ["hello"], ["lo"]) == [False]

    def test_case_functions(self):
        assert call("upper-case", ["aBc"]) == ["ABC"]
        assert call("lower-case", ["aBc"]) == ["abc"]


class TestSequences:
    def test_empty_exists(self):
        assert call("empty", []) == [True]
        assert call("exists", [1]) == [True]

    def test_head_tail(self):
        assert call("head", [1, 2, 3]) == [1]
        assert call("head", []) == []
        assert call("tail", [1, 2, 3]) == [2, 3]

    def test_reverse(self):
        assert call("reverse", [1, 2, 3]) == [3, 2, 1]

    def test_distinct_values(self):
        assert call("distinct-values", [1, 2, 1, 3, 2]) == [1, 2, 3]

    def test_distinct_values_keeps_bool_and_int_apart(self):
        assert call("distinct-values", [1, True]) == [1, True]

    def test_distinct_values_unifies_int_and_float(self):
        # XQuery numeric equality: 1 eq 1.0, so they are one value.
        assert call("distinct-values", [1, 1.0, True, "1", 2]) == [1, True, "1", 2]

    def test_distinct_values_unifies_zero_spellings(self):
        assert call("distinct-values", [0, False, -0.0, 0.0]) == [0, False]

    def test_distinct_values_dedups_nan(self):
        import math

        nan = float("nan")
        result = call("distinct-values", [nan, 1, nan])
        assert len(result) == 2
        assert math.isnan(result[0])
        assert result[1] == 1


class TestJsonFunctions:
    def test_keys(self):
        assert call("keys", [{"a": 1, "b": 2}]) == ["a", "b"]

    def test_members(self):
        assert call("members", [[1, 2], [3]]) == [1, 2, 3]

    def test_size(self):
        assert call("size", [[1, 2, 3]]) == [3]
        assert call("size", []) == []

    def test_size_type_error(self):
        with pytest.raises(ItemTypeError):
            call("size", [{"a": 1}])

    def test_flatten(self):
        assert call("flatten", [[1, [2, [3]]], 4]) == [1, 2, 3, 4]

    def test_null(self):
        assert call("null") == [None]
