"""Unit tests for the JSONiq lexer."""

import pytest

from repro.errors import LexerError
from repro.jsoniq.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.EOF

    def test_variable(self):
        (token,) = tokenize("$author")[:-1]
        assert token.kind is TokenKind.VARIABLE
        assert token.text == "author"

    def test_variable_with_underscore(self):
        (token,) = tokenize("$r_min")[:-1]
        assert token.text == "r_min"

    def test_string(self):
        (token,) = tokenize('"TMIN"')[:-1]
        assert token.kind is TokenKind.STRING
        assert token.text == "TMIN"

    def test_string_escapes(self):
        (token,) = tokenize(r'"a\"b\n"')[:-1]
        assert token.text == 'a"b\n'

    def test_integer(self):
        (token,) = tokenize("2003")[:-1]
        assert token.kind is TokenKind.INTEGER

    def test_decimal(self):
        assert tokenize("3.25")[0].kind is TokenKind.DECIMAL
        assert tokenize("1e3")[0].kind is TokenKind.DECIMAL

    def test_punctuation(self):
        assert kinds("( ) { } [ ] , :") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.COLON,
        ]

    def test_two_char_operators(self):
        assert kinds(":= != <= >=") == [
            TokenKind.BIND,
            TokenKind.NOT_EQUAL,
            TokenKind.LESS_EQUAL,
            TokenKind.GREATER_EQUAL,
        ]


class TestHyphenatedNames:
    def test_hyphenated_function_name_is_one_token(self):
        assert texts("year-from-dateTime") == ["year-from-dateTime"]

    def test_minus_between_spaces_is_operator(self):
        assert kinds("$a - 1") == [
            TokenKind.VARIABLE,
            TokenKind.MINUS,
            TokenKind.INTEGER,
        ]

    def test_minus_after_rparen_is_operator(self):
        found = kinds('$a("v") - $b("v")')
        assert TokenKind.MINUS in found

    def test_minus_before_digit_is_operator(self):
        assert kinds("json-doc") == [TokenKind.NAME]
        assert kinds("a-1") == [TokenKind.NAME, TokenKind.MINUS, TokenKind.INTEGER]


class TestCommentsAndWhitespace:
    def test_xquery_comment_skipped(self):
        assert texts("1 (: a comment :) 2") == ["1", "2"]

    def test_multiline_input(self):
        assert len(kinds("for $x in\n  $y\nreturn $x")) == 6


class TestPositions:
    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"abc')

    def test_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_lone_dollar(self):
        with pytest.raises(LexerError):
            tokenize("$ x")
