"""Unit tests for the JSONiq query parser."""

import pytest

from repro.errors import ParseError
from repro.jsoniq.ast import (
    ArrayConstructorNode,
    BinaryOpNode,
    FlworNode,
    ForClause,
    FunctionCallNode,
    GroupByClause,
    IfNode,
    LetClause,
    LiteralNode,
    LookupNode,
    ObjectConstructorNode,
    SequenceNode,
    UnaryMinusNode,
    VarNode,
    WhereClause,
)
from repro.jsoniq.parser import parse_query


class TestPrimaries:
    def test_integer(self):
        assert parse_query("42") == LiteralNode(42)

    def test_decimal(self):
        assert parse_query("3.5") == LiteralNode(3.5)

    def test_string(self):
        assert parse_query('"TMIN"') == LiteralNode("TMIN")

    def test_booleans_and_null(self):
        assert parse_query("true") == LiteralNode(True)
        assert parse_query("false") == LiteralNode(False)
        assert parse_query("null") == LiteralNode(None)

    def test_true_constructor_form(self):
        assert parse_query("true()") == LiteralNode(True)

    def test_variable(self):
        assert parse_query("$x") == VarNode("x")

    def test_empty_sequence(self):
        assert parse_query("()") == SequenceNode(())

    def test_parenthesized_single(self):
        assert parse_query("(1)") == LiteralNode(1)

    def test_comma_sequence(self):
        assert parse_query("(1, 2)") == SequenceNode(
            (LiteralNode(1), LiteralNode(2))
        )


class TestLookups:
    def test_value_lookup(self):
        node = parse_query('$x("author")')
        assert node == LookupNode(VarNode("x"), LiteralNode("author"))

    def test_keys_or_members(self):
        assert parse_query("$x()") == LookupNode(VarNode("x"), None)

    def test_chained_lookups(self):
        node = parse_query('$d("bookstore")("book")()')
        assert isinstance(node, LookupNode) and node.key is None
        assert isinstance(node.base, LookupNode)
        assert node.base.key == LiteralNode("book")

    def test_lookup_on_function_result(self):
        node = parse_query('json-doc("b.json")("bookstore")')
        assert isinstance(node, LookupNode)
        assert node.base == FunctionCallNode("json-doc", (LiteralNode("b.json"),))

    def test_integer_lookup(self):
        assert parse_query("$a(2)") == LookupNode(VarNode("a"), LiteralNode(2))


class TestFunctionCalls:
    def test_no_args(self):
        assert parse_query("null()") == FunctionCallNode("null", ())

    def test_hyphenated_name(self):
        node = parse_query("year-from-dateTime($d)")
        assert node == FunctionCallNode("year-from-dateTime", (VarNode("d"),))

    def test_multiple_args(self):
        node = parse_query('contains($s, "x")')
        assert len(node.args) == 2


class TestOperators:
    def test_keyword_comparison(self):
        node = parse_query("$a eq 12")
        assert node == BinaryOpNode("eq", VarNode("a"), LiteralNode(12))

    @pytest.mark.parametrize(
        "symbol,name",
        [("=", "eq"), ("!=", "ne"), ("<", "lt"), ("<=", "le"), (">", "gt"), (">=", "ge")],
    )
    def test_symbol_comparisons(self, symbol, name):
        node = parse_query(f"1 {symbol} 2")
        assert node.op == name

    def test_precedence_and_over_or(self):
        node = parse_query("$a or $b and $c")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_precedence_arithmetic_over_comparison(self):
        node = parse_query("$a + 1 eq 2 * 3")
        assert node.op == "eq"
        assert node.left.op == "+"
        assert node.right.op == "*"

    def test_div_idiv_mod(self):
        assert parse_query("6 div 3").op == "div"
        assert parse_query("6 idiv 3").op == "idiv"
        assert parse_query("6 mod 3").op == "mod"

    def test_unary_minus(self):
        assert parse_query("-$x") == UnaryMinusNode(VarNode("x"))

    def test_subtraction_binds_left(self):
        node = parse_query("1 - 2 - 3")
        assert node.op == "-" and node.left.op == "-"


class TestConstructors:
    def test_object(self):
        node = parse_query('{"a": 1, "b": $x}')
        assert node == ObjectConstructorNode(
            (("a", LiteralNode(1)), ("b", VarNode("x")))
        )

    def test_object_name_keys(self):
        node = parse_query("{a: 1}")
        assert node.pairs[0][0] == "a"

    def test_empty_object(self):
        assert parse_query("{}") == ObjectConstructorNode(())

    def test_array(self):
        node = parse_query("[1, 2]")
        assert node == ArrayConstructorNode((LiteralNode(1), LiteralNode(2)))

    def test_empty_array(self):
        assert parse_query("[]") == ArrayConstructorNode(())


class TestFlwor:
    def test_minimal_for(self):
        node = parse_query("for $x in $y return $x")
        assert isinstance(node, FlworNode)
        assert node.clauses == (ForClause("x", VarNode("y")),)
        assert node.return_expr == VarNode("x")

    def test_let(self):
        node = parse_query("let $a := 1 return $a")
        assert node.clauses == (LetClause("a", LiteralNode(1)),)

    def test_multiple_for_bindings_with_comma(self):
        node = parse_query("for $a in $x, $b in $y return $a")
        assert [c.variable for c in node.clauses] == ["a", "b"]

    def test_consecutive_for_clauses(self):
        node = parse_query("for $a in $x for $b in $y return $a")
        assert len(node.clauses) == 2

    def test_where(self):
        node = parse_query('for $x in $y where $x eq 1 return $x')
        assert isinstance(node.clauses[1], WhereClause)

    def test_group_by_with_binding(self):
        node = parse_query(
            'for $x in $y group by $k := $x("a") return count($x)'
        )
        group = node.clauses[1]
        assert isinstance(group, GroupByClause)
        assert group.keys[0][0] == "k"
        assert group.keys[0][1] is not None

    def test_group_by_without_binding(self):
        node = parse_query("for $x in $y group by $x return count($x)")
        assert node.clauses[1].keys[0][1] is None

    def test_nested_flwor_in_function(self):
        node = parse_query("count(for $i in $x return $i)")
        assert isinstance(node, FunctionCallNode)
        assert isinstance(node.args[0], FlworNode)

    def test_if_expression(self):
        node = parse_query("if ($a eq 1) then 2 else 3")
        assert isinstance(node, IfNode)

    def test_paper_q0_parses(self):
        parse_query(
            'for $r in collection("/sensors")("root")()("results")() '
            'let $datetime := dateTime(data($r("date"))) '
            "where year-from-dateTime($datetime) ge 2003 "
            "and month-from-dateTime($datetime) eq 12 "
            "and day-from-dateTime($datetime) eq 25 "
            "return $r"
        )

    def test_paper_q2_parses(self):
        parse_query(
            "avg( for $r_min in collection(\"/s\")(\"root\")()(\"results\")() "
            'for $r_max in collection("/s")("root")()("results")() '
            'where $r_min("station") eq $r_max("station") '
            'and $r_min("dataType") eq "TMIN" '
            'return $r_max("value") - $r_min("value") ) div 10'
        )


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_query("1 2")

    def test_missing_return(self):
        with pytest.raises(ParseError):
            parse_query("for $x in $y")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_query("(1")

    def test_bad_object_key(self):
        with pytest.raises(ParseError):
            parse_query("{1: 2}")

    def test_missing_in(self):
        with pytest.raises(ParseError):
            parse_query("for $x $y return 1")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("")
