"""Unit tests for AST → naive plan translation (paper figure shapes)."""

import pytest

from repro.errors import TranslationError, UnboundVariableError
from repro.algebra.expressions import (
    CollectionExpr,
    DataExpr,
    IterateExpr,
    JsonDocExpr,
    PathStepExpr,
    PromoteExpr,
    TreatExpr,
    VariableRef,
)
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    Select,
    Subplan,
    Unnest,
)
from repro.jsonlib.path import KeysOrMembers
from repro.jsoniq.parser import parse_query
from repro.jsoniq.translator import ast_free_variables, translate


def plan_of(text):
    return translate(parse_query(text))


def chain_of(plan):
    """Operators from root to leaf along the first-input chain."""
    ops = []
    node = plan.root
    while True:
        ops.append(node)
        if not node.inputs:
            return ops
        node = node.inputs[0]


class TestFigure3Shape:
    """json-doc path query -> Figure 3's naive plan."""

    def test_operator_sequence(self):
        plan = plan_of('json-doc("b.json")("bookstore")("book")()')
        names = [op.name for op in chain_of(plan)]
        assert names == [
            "DISTRIBUTE-RESULT",
            "UNNEST",
            "ASSIGN",  # keys-or-members (two-step, first half)
            "ASSIGN",  # json-doc + value steps
            "EMPTY-TUPLE-SOURCE",
        ]

    def test_promote_data_around_argument(self):
        plan = plan_of('json-doc("b.json")("bookstore")("book")()')
        assigns = plan.operators_of(Assign)
        doc_assign = [
            a
            for a in assigns
            if a.expression.contains(lambda e: isinstance(e, JsonDocExpr))
        ]
        assert doc_assign
        assert doc_assign[0].expression.contains(
            lambda e: isinstance(e, PromoteExpr)
        )
        assert doc_assign[0].expression.contains(
            lambda e: isinstance(e, DataExpr)
        )

    def test_two_step_keys_or_members(self):
        plan = plan_of('json-doc("b.json")("bookstore")("book")()')
        (unnest,) = plan.operators_of(Unnest)
        assert isinstance(unnest.expression, IterateExpr)
        km_assign = unnest.input_op
        assert isinstance(km_assign, Assign)
        assert isinstance(km_assign.expression, PathStepExpr)
        assert isinstance(km_assign.expression.step, KeysOrMembers)


class TestFigure5Shape:
    """collection query -> Figure 5's naive plan."""

    def test_collection_assign_and_iterate(self):
        plan = plan_of('for $x in collection("/b")("bookstore")("book")() return $x')
        names = [op.name for op in chain_of(plan)]
        assert names == [
            "DISTRIBUTE-RESULT",
            "ASSIGN",  # return expr
            "UNNEST",  # iterate over keys-or-members
            "ASSIGN",  # keys-or-members
            "ASSIGN",  # value steps over the file
            "UNNEST",  # iterate over the collection (per file)
            "ASSIGN",  # collection()
            "EMPTY-TUPLE-SOURCE",
        ]
        coll_assigns = [
            op
            for op in plan.operators_of(Assign)
            if isinstance(op.expression, CollectionExpr)
        ]
        assert len(coll_assigns) == 1


class TestFigure9Shape:
    """group-by query -> Figure 9's naive plan."""

    QUERY = (
        'for $x in collection("/b")("bookstore")("book")() '
        'group by $author := $x("author") '
        'return count($x("title"))'
    )

    def test_group_by_with_sequence_aggregate(self):
        plan = plan_of(self.QUERY)
        (group,) = plan.operators_of(GroupBy)
        nested = group.nested_root
        assert isinstance(nested, Aggregate)
        assert [spec.function for spec in nested.specs] == ["sequence"]

    def test_treat_above_group_by(self):
        plan = plan_of(self.QUERY)
        treat_assigns = [
            op
            for op in plan.operators_of(Assign)
            if isinstance(op.expression, TreatExpr)
        ]
        assert len(treat_assigns) == 1
        assert treat_assigns[0].expression.type_name == "item"

    def test_key_assign_below_group_by(self):
        plan = plan_of(self.QUERY)
        (group,) = plan.operators_of(GroupBy)
        below = group.input_op
        assert isinstance(below, Assign)
        assert below.variable == "author"


class TestNestedFlwor:
    def test_subplan_for_nested_aggregate(self):
        plan = plan_of(
            'for $x in collection("/b")("root")() '
            'group by $k := $x("k") '
            "return count(for $j in $x return $j)"
        )
        assert len(plan.operators_of(Subplan)) == 1

    def test_top_level_aggregate_inlined(self):
        plan = plan_of('count(for $x in collection("/b")("root")() return $x)')
        assert plan.operators_of(Subplan) == []
        aggregates = plan.operators_of(Aggregate)
        assert len(aggregates) == 1
        assert aggregates[0].specs[0].function == "count"

    def test_nested_flwor_as_plain_sequence(self):
        plan = plan_of(
            'for $x in collection("/b")("root")() '
            "return [for $j in $x return $j]"
        )
        (subplan,) = plan.operators_of(Subplan)
        assert isinstance(subplan.nested_root, Aggregate)
        assert subplan.nested_root.specs[0].function == "sequence"


class TestJoins:
    def test_independent_second_for_becomes_join(self):
        plan = plan_of(
            'for $a in collection("/x")("r")() '
            'for $b in collection("/y")("r")() '
            "return 1"
        )
        assert len(plan.operators_of(Join)) == 1

    def test_dependent_second_for_stays_unnest(self):
        plan = plan_of(
            'for $a in collection("/x")("r")() '
            "for $b in $a return $b"
        )
        assert plan.operators_of(Join) == []

    def test_where_becomes_select(self):
        plan = plan_of(
            'for $a in collection("/x")("r")() where $a eq 1 return $a'
        )
        assert len(plan.operators_of(Select)) == 1


class TestScoping:
    def test_unbound_variable_rejected(self):
        with pytest.raises(UnboundVariableError):
            plan_of("for $x in $nope return $x")

    def test_shadowing_gets_fresh_names(self):
        plan = plan_of(
            'for $x in collection("/a")("r")() '
            "return count(for $x in $x return $x)"
        )
        # Two binders named $x must map to distinct plan variables.
        binders = [op.variable for op in plan.operators_of(Unnest)]
        assert len(binders) == len(set(binders))
        assert "x" in binders

    def test_let_binds(self):
        plan = plan_of("let $a := 5 return $a + 1")
        assert any(
            op.variable == "a"
            for op in plan.operators_of(Assign)
        )

    def test_order_by_becomes_sort(self):
        from repro.algebra.operators import Sort

        plan = plan_of(
            'for $x in collection("/a")("r")() order by $x descending return $x'
        )
        (sort,) = plan.operators_of(Sort)
        assert sort.specs[0][1] is True  # descending

    def test_dynamic_lookup_keys_rejected(self):
        with pytest.raises(TranslationError):
            plan_of("let $k := \"a\" return {\"a\": 1}($k)")


class TestAstFreeVariables:
    def test_flwor_binding(self):
        ast = parse_query("for $x in $src return $x($k)")
        assert ast_free_variables(ast) == {"src", "k"}

    def test_let_binding(self):
        ast = parse_query("let $a := $b return $a")
        assert ast_free_variables(ast) == {"b"}

    def test_group_by_key_expression(self):
        ast = parse_query("for $x in $s group by $g := $x($k) return $g")
        assert ast_free_variables(ast) == {"s", "k"}

    def test_distribute_result_root(self):
        plan = plan_of("1 + 1")
        assert isinstance(plan.root, DistributeResult)
        assert isinstance(chain_of(plan)[-1], EmptyTupleSource)
