"""Processor/backend lifecycle: close is idempotent and closing is final."""

import json

import pytest

from repro.compiler.pipeline import compile_query
from repro.algebra.rules import RewriteConfig
from repro.data.catalog import InMemorySource
from repro.errors import ProcessorClosedError, ReproError
from repro.hyracks.executor import PartitionedExecutor
from repro.processor import JsonProcessor


def make_source():
    rows = [{"v": i} for i in range(10)]
    text = json.dumps({"root": [{"results": rows}]})
    return InMemorySource(collections={"/s": [[text], [text]]})


COUNT_QUERY = (
    'count(for $r in collection("/s")("root")()("results")() return $r)'
)


class TestProcessorLifecycle:
    def test_double_close_is_a_noop(self):
        processor = JsonProcessor(make_source())
        processor.close()
        processor.close()

    def test_execute_after_close_raises(self):
        processor = JsonProcessor(make_source())
        processor.close()
        with pytest.raises(ProcessorClosedError) as exc_info:
            processor.execute(COUNT_QUERY)
        assert "processor" in str(exc_info.value)
        with pytest.raises(ProcessorClosedError):
            processor.evaluate(COUNT_QUERY)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_exception_inside_with_block_shuts_pools_down(self, backend):
        with pytest.raises(ReproError):
            with JsonProcessor(
                make_source(), backend=backend, max_workers=2
            ) as processor:
                processor.evaluate(COUNT_QUERY)  # pool is now warm
                held = processor._executor._backend
                assert held._pool is not None
                processor.evaluate('count(collection("/missing")())')
        # __exit__ ran close() even though the block unwound via the error
        assert held._pool is None
        with pytest.raises(ProcessorClosedError):
            processor.evaluate(COUNT_QUERY)

    def test_close_after_error_keeps_working_until_closed(self):
        processor = JsonProcessor(make_source())
        with pytest.raises(ReproError):
            processor.evaluate('count(collection("/missing")())')
        # a failed query does not poison the processor
        assert processor.evaluate(COUNT_QUERY) == [20]
        processor.close()


class TestExecutorLifecycle:
    def test_run_after_close_raises(self):
        executor = PartitionedExecutor(make_source())
        plan = compile_query(COUNT_QUERY, RewriteConfig.all()).plan
        assert executor.run(plan).items == [20]
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(ProcessorClosedError) as exc_info:
            executor.run(plan)
        assert "executor" in str(exc_info.value)
