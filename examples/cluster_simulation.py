"""Cluster simulation: speed-up, scale-up, and the hyperthread plateau.

Reproduces the paper's parallelism story interactively: every
partition's work runs for real, and a :class:`ClusterSpec` composes the
simulated makespan — including the Figure 17 effect where 8
hyperthreaded partitions on 4 physical cores stop helping.

Run:  python examples/cluster_simulation.py
"""

import tempfile

from repro import ClusterSpec, CollectionCatalog, JsonProcessor
from repro import SensorDataConfig, write_sensor_collection
from repro.bench import queries


def build_catalog(base_dir: str, partitions: int) -> CollectionCatalog:
    write_sensor_collection(
        base_dir,
        "sensors",
        partitions=partitions,
        bytes_per_partition=40_000,
        config=SensorDataConfig(
            seed=11, start_year=2003, year_span=2, target_file_bytes=8 * 1024
        ),
    )
    return CollectionCatalog(base_dir)


def regrouped(catalog: CollectionCatalog, partitions: int) -> CollectionCatalog:
    """The same files, dealt into a different number of partitions."""
    files = catalog.files("/sensors")
    regroup = CollectionCatalog()
    regroup.register("/sensors", [files[i::partitions] for i in range(partitions)])
    return regroup


def main() -> None:
    base_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    catalog = build_catalog(base_dir, partitions=36)
    query = queries.q1()

    print("== single node: partitions vs simulated time (Figure 17) ==")
    for partitions in (1, 2, 4, 8):
        processor = JsonProcessor(regrouped(catalog, partitions))
        result = processor.execute(query)
        cluster = ClusterSpec().single_node(partitions)
        label = f"{partitions} partition(s)" + (" [HT]" if partitions == 8 else "")
        print(f"  {label:22s} {result.simulated_seconds(cluster):.3f}s")

    print("\n== cluster speed-up: fixed data, 1-9 nodes (Figure 20) ==")
    for nodes in (1, 3, 5, 7, 9):
        processor = JsonProcessor(regrouped(catalog, 4 * nodes))
        result = processor.execute(query)
        cluster = ClusterSpec(nodes=nodes)
        print(
            f"  {nodes} node(s): {result.simulated_seconds(cluster):.3f}s "
            f"(exchange {result.stats.exchange_bytes}B, "
            f"strategy {result.strategy})"
        )

    print("\n== scale-up: data grows with the cluster (Figure 21) ==")
    all_files = catalog.files("/sensors")
    per_node = len(all_files) // 9
    for nodes in (1, 3, 5, 7, 9):
        subset = CollectionCatalog()
        files = all_files[: per_node * nodes]
        subset.register(
            "/sensors", [files[i :: 4 * nodes] for i in range(4 * nodes)]
        )
        processor = JsonProcessor(subset)
        result = processor.execute(query)
        cluster = ClusterSpec(nodes=nodes)
        print(
            f"  {nodes} node(s), {len(files)} files: "
            f"{result.simulated_seconds(cluster):.3f}s"
        )


if __name__ == "__main__":
    main()
