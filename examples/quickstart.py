"""Quickstart: query raw JSON with JSONiq, no load phase.

Runs the paper's bookstore examples (Listings 1-5) against an in-memory
document, prints results, and shows how the rewrite rules transform the
logical plan (the Figure 3 -> Figure 4 story).

Run:  python examples/quickstart.py
"""

from repro import InMemorySource, JsonProcessor, RewriteConfig
from repro.data.generator import generate_bookstore_document
from repro.jsonlib.serializer import dumps

BOOKS_URI = "books.json"


def main() -> None:
    # The bookstore document of the paper's Listing 1.
    bookstore = generate_bookstore_document()
    source = InMemorySource(documents={BOOKS_URI: dumps(bookstore)})
    processor = JsonProcessor(source)

    # Listing 2: all books in the file.
    books_query = f'json-doc("{BOOKS_URI}")("bookstore")("book")()'
    print("== all books (Listing 2) ==")
    for book in processor.evaluate(books_query):
        print(f"  {book['title']} by {book['author']} (${book['price']})")

    # A FLWOR with a predicate.
    print("\n== cheap books ==")
    cheap = processor.evaluate(
        f'for $b in json-doc("{BOOKS_URI}")("bookstore")("book")() '
        'where number($b("price")) lt 35 '
        'return $b("title")'
    )
    for title in cheap:
        print(f"  {title}")

    # Listing 4: books per author via group by.
    print("\n== books per author (Listing 4) ==")
    counts = processor.evaluate(
        f'for $x in json-doc("{BOOKS_URI}")("bookstore")("book")() '
        'group by $author := $x("author") '
        'return {"author": $author, "books": count($x("title"))}'
    )
    for row in counts:
        print(f"  {row['author']}: {row['books']}")

    # How the rewrite rules change the plan (Figure 3 -> Figure 4).
    print("\n== plan before/after the rewrite rules ==")
    naive = JsonProcessor(source, rewrite=RewriteConfig.none())
    print("-- naive (two-step keys-or-members, promote/data):")
    print(naive.compile(books_query).naive_plan.explain())
    print("-- rewritten (merged UNNEST, coercions gone):")
    print(processor.compile(books_query).plan.explain())


if __name__ == "__main__":
    main()
