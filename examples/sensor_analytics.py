"""Sensor analytics: the paper's NOAA workload end to end.

Generates a synthetic GHCN-like collection (the Listing 6 structure),
runs the paper's five evaluation queries (Q0, Q0b, Q1, Q1b, Q2) with all
rewrite rules on, and contrasts one of them against its naive execution
— timing and memory included.

Run:  python examples/sensor_analytics.py
"""

import tempfile

from repro import JsonProcessor, RewriteConfig, SensorDataConfig
from repro import CollectionCatalog, write_sensor_collection
from repro.bench import queries


def main() -> None:
    base_dir = tempfile.mkdtemp(prefix="repro-sensors-")
    config = SensorDataConfig(
        seed=42, start_year=2003, year_span=3, target_file_bytes=48 * 1024
    )
    print(f"generating sensor data under {base_dir} ...")
    write_sensor_collection(
        base_dir, "sensors", partitions=4, bytes_per_partition=150_000,
        config=config,
    )
    catalog = CollectionCatalog(base_dir)
    size_kb = catalog.total_bytes("/sensors") // 1024
    print(
        f"collection /sensors: {catalog.partition_count('/sensors')} "
        f"partitions, {size_kb}KB total\n"
    )

    processor = JsonProcessor(catalog)
    for name, query_fn in queries.ALL_QUERIES.items():
        result = processor.execute(query_fn())
        preview = result.items[:3]
        print(
            f"{name}: {len(result.items)} item(s) in "
            f"{result.wall_seconds:.3f}s [{result.strategy}] "
            f"e.g. {preview}"
        )

    # The same query, naive vs rewritten.
    print("\n== Q1 naive vs rewritten ==")
    naive = JsonProcessor(catalog, rewrite=RewriteConfig.none())
    naive_result = naive.execute(queries.q1())
    fast_result = processor.execute(queries.q1())
    assert sorted(naive_result.items) == sorted(fast_result.items)
    print(
        f"naive:     {naive_result.wall_seconds:.3f}s, "
        f"peak memory {naive_result.peak_memory_bytes}B "
        f"[{naive_result.strategy}]"
    )
    print(
        f"rewritten: {fast_result.wall_seconds:.3f}s, "
        f"peak memory {fast_result.peak_memory_bytes}B "
        f"[{fast_result.strategy}]"
    )

    print("\n== Q1 rewritten plan ==")
    print(processor.explain(queries.q1()))


if __name__ == "__main__":
    main()
