"""Engine comparison: on-the-fly querying vs load-first systems.

Runs the paper's Q1 against all four engines of Section 5 on the same
synthetic sensor collection:

- **VXQuery** (this library): queries the raw files directly;
- **MongoDB-like document store**: must load (and compress) first;
- **SparkSQL-like engine**: must load everything into memory first —
  and fails outright when the data exceeds its budget;
- **AsterixDB-like engine**: same runtime as VXQuery but without the
  pipelining rules, in external and load modes.

Run:  python examples/engine_comparison.py
"""

import os
import tempfile
import time

from repro import CollectionCatalog, JsonProcessor, SensorDataConfig
from repro import write_sensor_collection
from repro.baselines import AdmEngine, DocumentStore, InMemorySQLEngine
from repro.bench import queries, workloads
from repro.bench.reference import reference_q1
from repro.errors import MemoryBudgetExceededError


def main() -> None:
    base_dir = tempfile.mkdtemp(prefix="repro-engines-")
    config = SensorDataConfig(
        seed=3, start_year=2003, year_span=2, target_file_bytes=32 * 1024
    )
    write_sensor_collection(
        base_dir, "sensors", partitions=2, bytes_per_partition=150_000,
        config=config,
    )
    catalog = CollectionCatalog(base_dir)
    expected = reference_q1(catalog.read_collection("/sensors"))
    print(f"dataset: {catalog.total_bytes('/sensors') // 1024}KB, "
          f"{len(expected)} groups expected\n")

    # VXQuery: no load phase at all.
    processor = JsonProcessor(catalog)
    result = processor.execute(queries.q1())
    assert sorted(result.items) == sorted(expected.values())
    print(f"VXQuery        load: {'—':>7}   query: {result.wall_seconds:.3f}s")

    # MongoDB-like: load, then query the compressed store.
    store = DocumentStore()
    load = store.load_files("sensors", catalog.files("/sensors"))
    started = time.perf_counter()
    counts = workloads.mongo_q1(store, "sensors")
    mongo_seconds = time.perf_counter() - started
    assert counts == expected
    print(f"DocumentStore  load: {load.seconds:.3f}s   query: {mongo_seconds:.3f}s"
          f"   (store {load.stored_bytes // 1024}KB compressed)")

    # SparkSQL-like: load everything into memory, then query.
    sql = InMemorySQLEngine()
    sql_load = sql.load_files("sensors", catalog.files("/sensors"))
    started = time.perf_counter()
    groups = workloads.spark_q1(sql, "sensors", wrapped=True)
    sql_seconds = time.perf_counter() - started
    assert groups == expected
    print(f"SQL engine     load: {sql_load.seconds:.3f}s   query: {sql_seconds:.3f}s"
          f"   (holds {sql_load.memory_bytes // 1024}KB in memory)")

    # ... and what happens when the data does not fit.
    tiny = InMemorySQLEngine(memory_budget_bytes=50_000)
    try:
        tiny.load_files("sensors", catalog.files("/sensors"))
    except MemoryBudgetExceededError as error:
        print(f"SQL engine (50KB budget): load fails — {error}")

    # AsterixDB-like: same runtime, no pipelining rules.
    adm = AdmEngine(catalog, mode="external")
    adm_result = adm.execute(queries.q1())
    assert sorted(adm_result.items) == sorted(expected.values())
    print(f"ADM (external) load: {'—':>7}   query: {adm_result.wall_seconds:.3f}s")

    loaded = AdmEngine(
        catalog, mode="load", storage_dir=os.path.join(base_dir, "adm")
    )
    adm_load = loaded.load("/sensors")
    adm_loaded_result = loaded.execute(queries.q1())
    assert sorted(adm_loaded_result.items) == sorted(expected.values())
    print(f"ADM (load)     load: {adm_load.seconds:.3f}s   "
          f"query: {adm_loaded_result.wall_seconds:.3f}s")


if __name__ == "__main__":
    main()
