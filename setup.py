"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to the legacy setuptools develop
path in offline environments.
"""

from setuptools import setup

setup()
