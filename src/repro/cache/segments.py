"""Binary columnar segment files for projected scan results.

A *segment* is the full projected output of scanning one source (a file
on disk or one in-memory text) under one projection path and one
malformed-input policy, together with everything needed to replay the
scan's observable side effects: the projection hit/skip counter deltas
and the skipped-record events a degradation report would have seen.

Layout on disk (one file per segment, named by the SHA-256 of the
cache key)::

    RSEG1\\n <pickled header dict> <per-column payload>

Uniform lists of flat dicts — the shape every paper query projects —
are shredded column-wise: each key's values become one column, and
all-float / all-int columns are packed as raw ``array('d')`` /
``array('q')`` bytes (true binary columnar storage; strings and mixed
columns fall back to a pickled list).  Non-uniform results are stored
as pickled rows.  Warm loads therefore deserialize at C speed and
never touch JSON.

Concurrency: writes go to a unique temp file in the cache directory
and are published with :func:`os.replace`, so concurrent partition
workers (threads or processes) are lock-free — readers only ever see
complete segments, and double-writes of the same key are idempotent
last-writer-wins.  A :class:`SegmentCache` holds only its directory
path (plus a picklable fault hook), so it pickles into process-backend
work units for free.  Every store is best-effort: an I/O error skips
that one write, and only a *run* of consecutive I/O errors (a full or
dead disk) turns the cache off — see the :class:`SegmentCache`
docstring.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
import zlib
from array import array
from dataclasses import dataclass

from repro.jsonlib.path import KeysOrMembers, Path, ValueByIndex, ValueByKey

_MAGIC = b"RSEG1\n"

# Exceptions that prove the segment file itself is defective (torn,
# bit-flipped, or structurally malformed) and therefore safe to delete:
# the magic/key/CRC ValueErrors raised below, pickle's own failure modes
# on torn bytes, and shape errors from a header/payload that decoded to
# the wrong structure.  Anything else (MemoryError on a huge payload, a
# KeyboardInterrupt, an environment-dependent ImportError) may strike a
# perfectly valid file and must NOT trigger deletion.
_DEFECT_ERRORS = (
    ValueError,
    KeyError,
    TypeError,
    IndexError,
    EOFError,
    pickle.UnpicklingError,
)


def canonical_projection(path: Path) -> str:
    """Stable textual key for a projection path."""
    parts = []
    for step in path:
        if isinstance(step, ValueByKey):
            parts.append("k=" + step.key)
        elif isinstance(step, ValueByIndex):
            parts.append("i=" + str(step.index))
        elif isinstance(step, KeysOrMembers):
            parts.append("*")
        else:  # future step kinds must not silently alias existing keys
            parts.append(repr(step))
    return "/".join(parts)


def file_fingerprint(file_path: str) -> tuple:
    """Stat-based fingerprint of an on-disk source.

    Size, mtime_ns, ctime_ns and inode: truncating, appending or
    touching the file changes the fingerprint, which changes the cache
    key — stale segments are simply never matched again (no explicit
    invalidation pass is needed).  Atomic-replace rewrites change the
    inode, and in-place rewrites change ctime even when an application
    back-dates mtime.

    Staleness window: a same-size in-place rewrite that lands within
    the filesystem's timestamp granularity (coarse-mtime filesystems,
    or sub-resolution back-to-back writes) is undetectable by ``stat``
    alone and would serve the old segment.  For correctness-critical
    runs on such inputs, fingerprint the bytes instead::

        fingerprint = text_fingerprint(open(path, encoding="utf-8").read())
    """
    stat = os.stat(file_path)
    return (
        "stat",
        stat.st_size,
        stat.st_mtime_ns,
        stat.st_ctime_ns,
        stat.st_ino,
    )


def text_fingerprint(text: str) -> tuple:
    """Content fingerprint of an in-memory source: content hash."""
    return ("sha256", hashlib.sha256(text.encode("utf-8")).hexdigest())


def content_file_fingerprint(file_path: str) -> tuple:
    """Content fingerprint of an on-disk source: hash of its bytes.

    Closes :func:`file_fingerprint`'s same-size in-place rewrite
    staleness window at the cost of reading the file on every lookup —
    the right trade for a long-lived server, where inputs are rewritten
    underneath the process.  Because only the bytes matter, touching a
    file (or copying it to a new inode with identical contents) keeps
    its segments warm instead of invalidating them.
    """
    hasher = hashlib.sha256()
    size = 0
    with open(file_path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            size += len(chunk)
            hasher.update(chunk)
    return ("content", size, hasher.hexdigest())


@dataclass
class CachedSegment:
    """A loaded segment: items plus the scan's replayable side effects."""

    items: list
    #: ``ScanCounters.as_dict()`` of the producing scan; a hit replays
    #: only the ``matched``/``skipped`` fields (see ``ScanCounters.absorb``)
    #: so projection accounting is byte-identical with a cold scan.
    counters: dict
    #: ``(offset, message)`` pairs for records the producing scan
    #: skipped under ``on_malformed="skip_record"``.
    skip_events: list


def _shred(items: list):
    """Split uniform flat-dict rows into columns; None if not uniform.

    Uniform means every row has the *same keys in the same insertion
    order*: ``load`` rebuilds rows as ``dict(zip(keys, row))``, so a
    row whose keys merely match as a set would come back reordered and
    serialize differently warm vs cold.  Such rows fall back to the
    pickled-rows layout, which preserves each dict verbatim.
    """
    if not items:
        return None
    first = items[0]
    if type(first) is not dict or not first:
        return None
    keys = tuple(first)
    columns: list[list] = [[] for _ in keys]
    for item in items:
        if type(item) is not dict or tuple(item) != keys:
            return None
        for column, key in zip(columns, keys):
            column.append(item[key])
    return keys, columns


def _pack_column(values: list):
    """Pack a column: raw f8/i8 bytes when homogeneous, pickle otherwise."""
    kinds = set(map(type, values))
    if kinds == {float}:
        return ("f8", array("d", values).tobytes())
    if kinds == {int}:
        try:
            return ("i8", array("q", values).tobytes())
        except OverflowError:
            pass
    return ("py", values)


def _unpack_column(kind: str, payload):
    if kind == "f8":
        column = array("d")
        column.frombytes(payload)
        return column.tolist()
    if kind == "i8":
        column = array("q")
        column.frombytes(payload)
        return column.tolist()
    return payload


class SegmentCache:
    """On-disk segment store keyed by (source, fingerprint, projection).

    The malformed-input policy is part of the key: a segment produced
    under ``skip_record`` carries skip events that a ``fail`` scan of
    the same bytes would instead have raised, so segments never cross
    policies.

    Crash safety: every store pickles the payload to bytes first, puts
    a CRC32 of those bytes in the header, writes to a unique temp file,
    fsyncs, and publishes with :func:`os.replace` — a crash can only
    ever leave behind a temp file, never a half-written ``.seg``, and a
    torn or bit-flipped segment (filesystem damage) fails the checksum
    and is classified as *corrupt* (a miss that also deletes the bad
    file so the next complete store repairs it).

    I/O degradation: a store or load that hits :class:`OSError` (a full
    disk, a failing device, or an injected ``fault_hook`` fault) is
    absorbed — the store is skipped, the load is a miss — and counted;
    after ``max_io_errors`` *consecutive* failures the cache turns
    itself off for the rest of the process (``disabled_reason`` is
    set), so a dead cache directory costs one bounded burst of errors
    rather than one error per scan forever.  ``fault_hook`` must be
    picklable (e.g. a bound method of a
    :class:`~repro.resilience.faults.FaultPlan`) for the process
    backend, where the cache ships inside work units.
    """

    #: consecutive OSErrors tolerated before the cache turns itself off.
    max_io_errors = 3

    def __init__(self, cache_dir: str, fingerprint_mode: str = "stat"):
        from repro.cache.config import validate_fingerprint_mode

        self.cache_dir = cache_dir
        self.fingerprint_mode = validate_fingerprint_mode(fingerprint_mode)
        #: one-arg callable (``"store"`` | ``"load"``) invoked before
        #: every store/load I/O; raising :class:`OSError` from it
        #: injects a cache I/O fault (see ``FaultPlan.fail_cache_io``).
        self.fault_hook = None
        #: non-None once the cache has turned itself off; every later
        #: store is skipped and every later load is a miss.
        self.disabled_reason: str | None = None
        self._io_errors = 0

    def _io_failed(self, operation: str, error: OSError) -> None:
        self._io_errors += 1
        if self._io_errors >= self.max_io_errors and self.disabled_reason is None:
            self.disabled_reason = (
                f"segment cache disabled after {self._io_errors} consecutive "
                f"I/O errors (last: {operation}: {error})"
            )

    def _io_ok(self) -> None:
        self._io_errors = 0

    def source_fingerprint(self, file_path: str) -> tuple:
        """Fingerprint an on-disk source under this cache's mode.

        ``stat`` mode keys by :func:`file_fingerprint` (fast, with the
        documented same-size in-place rewrite window); ``content`` mode
        keys by :func:`content_file_fingerprint` (reads the bytes, no
        staleness window).  The mode is part of the fingerprint tuple
        itself, so switching modes never serves a segment keyed under
        the other mode.
        """
        if self.fingerprint_mode == "content":
            return content_file_fingerprint(file_path)
        return file_fingerprint(file_path)

    # -- keys ------------------------------------------------------------------

    def _segment_path(self, source_id, fingerprint, projection, policy) -> str:
        key = repr((source_id, fingerprint, projection, policy))
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.cache_dir, digest + ".seg")

    # -- store / load ----------------------------------------------------------

    def store(
        self,
        source_id: str,
        fingerprint: tuple,
        projection: str,
        policy: str,
        items: list,
        counters: dict,
        skip_events: list,
    ) -> bool:
        """Write one segment atomically; returns False on I/O failure.

        The payload is serialized up front and its CRC32 recorded in the
        header, the temp file is fsynced before :func:`os.replace`
        publishes it, and any :class:`OSError` (including one injected
        by ``fault_hook``) feeds the consecutive-failure counter that
        can turn the cache off.
        """
        if self.disabled_reason is not None:
            return False
        shredded = _shred(items)
        if shredded is not None:
            keys, columns = shredded
            header = {
                "key": (source_id, fingerprint, projection, policy),
                "counters": counters,
                "skip_events": skip_events,
                "layout": "columnar",
                "columns": keys,
                "rows": len(items),
            }
            payload = [_pack_column(column) for column in columns]
        else:
            header = {
                "key": (source_id, fingerprint, projection, policy),
                "counters": counters,
                "skip_events": skip_events,
                "layout": "rows",
            }
            payload = items
        payload_bytes = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        header["crc32"] = zlib.crc32(payload_bytes)
        try:
            if self.fault_hook is not None:
                self.fault_hook("store")
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix="seg-", suffix=".tmp", dir=self.cache_dir
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC)
                    pickle.dump(header, handle, pickle.HIGHEST_PROTOCOL)
                    handle.write(payload_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(
                    temp_path,
                    self._segment_path(source_id, fingerprint, projection, policy),
                )
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._io_failed("store", error)
            return False
        self._io_ok()
        return True

    def load(
        self,
        source_id: str,
        fingerprint: tuple,
        projection: str,
        policy: str,
    ) -> CachedSegment | None:
        """Load a segment; None on miss, stale fingerprint, or bad file.

        Any defect in the file — wrong magic, truncation, a header that
        is not the expected dict, a malformed payload — is a cache miss,
        never an error: the caller falls back to a cold scan and the
        next complete store overwrites the bad file.

        Trust note: segments are unpickled, and unpickling executes
        code chosen by whoever wrote the file.  Point the cache only at
        directories that are no more writable than the code you run.
        """
        segment, _status = self.load_classified(
            source_id, fingerprint, projection, policy
        )
        return segment

    def load_classified(
        self,
        source_id: str,
        fingerprint: tuple,
        projection: str,
        policy: str,
    ) -> tuple[CachedSegment | None, str]:
        """Load a segment and say why it hit or missed.

        Returns ``(segment, status)`` where status is one of:

        - ``"hit"`` — a complete, checksum-verified segment;
        - ``"miss"`` — no file for this key (or a pre-checksum legacy
          file, silently superseded), the cache is disabled, or parsing
          failed for a reason that does not prove the file defective
          (e.g. :class:`MemoryError`) — the file is kept for next time;
        - ``"corrupt"`` — a file existed but was demonstrably torn,
          bit-flipped, or otherwise defective; the bad file is deleted
          (best-effort) so the next complete store repairs it;
        - ``"io-error"`` — the read itself failed with an
          :class:`OSError` other than file-not-found (counted toward
          the cache's consecutive-failure disable budget).

        Every non-hit outcome is a miss to the caller's scan logic; the
        status only drives counters and degradation events.
        """
        if self.disabled_reason is not None:
            return None, "miss"
        segment_path = self._segment_path(
            source_id, fingerprint, projection, policy
        )
        try:
            if self.fault_hook is not None:
                self.fault_hook("load")
            with open(segment_path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._io_ok()
            return None, "miss"
        except OSError as error:
            self._io_failed("load", error)
            return None, "io-error"
        self._io_ok()
        try:
            if not raw.startswith(_MAGIC):
                raise ValueError("bad magic")
            buffer = memoryview(raw)[len(_MAGIC):]
            stream = io.BytesIO(buffer)
            header = pickle.load(stream)
            if (
                type(header) is not dict
                or header.get("key")
                != (source_id, fingerprint, projection, policy)
            ):
                # A key mismatch is a SHA-256 collision or hand-edited
                # file; treat it like any other defect.
                raise ValueError("header key mismatch")
            if "crc32" not in header:
                # Legacy pre-checksum segment: unverifiable, so rescan
                # (a plain miss, not damage) and let the next store
                # overwrite it in the new format.
                return None, "miss"
            payload_bytes = buffer[stream.tell():]
            if zlib.crc32(payload_bytes) != header["crc32"]:
                raise ValueError("payload checksum mismatch")
            payload = pickle.loads(payload_bytes)
            if header["layout"] == "columnar":
                keys = header["columns"]
                columns = [
                    _unpack_column(kind, data) for kind, data in payload
                ]
                items = [dict(zip(keys, row)) for row in zip(*columns)]
                if len(items) != header["rows"]:  # zero-column guard
                    items = [{} for _ in range(header["rows"])]
            else:
                items = payload
            segment = CachedSegment(
                items=items,
                counters=header["counters"],
                skip_events=header["skip_events"],
            )
        except _DEFECT_ERRORS:
            # Demonstrably torn/bit-flipped/malformed: delete the file
            # (best-effort) so the next complete store repairs it.
            try:
                os.unlink(segment_path)
            except OSError:
                pass
            return None, "corrupt"
        except Exception:
            # A transient, non-corruption failure (e.g. MemoryError
            # while unpickling a large payload): the file may be
            # perfectly valid, so keep it and treat this load as a
            # plain miss.
            return None, "miss"
        return segment, "hit"
