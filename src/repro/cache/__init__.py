"""Columnar segment cache: warm reruns skip JSON parsing entirely.

Layer 2 of the scan fast path (ROADMAP item 1).  The first scan of a
file under a given projection shreds the projected values into a binary
columnar segment keyed by ``(source id, content fingerprint, canonical
projection, malformed-input policy)``; later scans with an unchanged
fingerprint deserialize the segment straight into items — no JSON is
touched.  See :mod:`repro.cache.segments` for the format and
:mod:`repro.cache.config` for scan-mode / cache-directory resolution
(``REPRO_SCAN_MODE`` / ``REPRO_SEGMENT_CACHE``).
"""

from repro.cache.config import (
    SCAN_MODES,
    resolve_scan_mode,
    resolve_segment_cache,
)
from repro.cache.segments import (
    CachedSegment,
    SegmentCache,
    canonical_projection,
    file_fingerprint,
    text_fingerprint,
)

__all__ = [
    "SCAN_MODES",
    "resolve_scan_mode",
    "resolve_segment_cache",
    "CachedSegment",
    "SegmentCache",
    "canonical_projection",
    "file_fingerprint",
    "text_fingerprint",
]
