"""Scan-mode and segment-cache resolution (explicit > env > default).

Scan modes select the per-record projector used by every DATASCAN:

- ``ondemand`` (default) — the structural-index scanner
  (:mod:`repro.jsonlib.tape`): one tokenizing pass builds a tape, the
  projection navigates it lazily, non-projected subtrees are jumped by
  offset arithmetic.
- ``text`` — the raw-text skipper (:mod:`repro.jsonlib.textscan`),
  the canonical reference implementation.
- ``eager`` — parse every record fully, then navigate the materialized
  item (the pre-PR-7 naive baseline; kept for benchmarking and for the
  differential harness's scan-mode axis).

All three produce byte-identical items, errors, and degradation
records; they differ only in speed and in which diagnostic counters
they populate.
"""

from __future__ import annotations

from repro.envutil import env_setting
from repro.errors import ReproError

SCAN_MODES = ("ondemand", "text", "eager")

#: Environment default for :func:`resolve_scan_mode`.
SCAN_MODE_ENV = "REPRO_SCAN_MODE"

#: Environment default for :func:`resolve_segment_cache` (a directory
#: path; empty/unset disables the cache).
SEGMENT_CACHE_ENV = "REPRO_SEGMENT_CACHE"

#: How caches fingerprint on-disk sources: ``stat`` (size, timestamps,
#: inode — fast, with a same-size in-place rewrite staleness window) or
#: ``content`` (hash the bytes — no staleness window; the right choice
#: for a long-lived server).
FINGERPRINT_MODES = ("stat", "content")

#: Environment default for :func:`resolve_fingerprint_mode`.
FINGERPRINT_ENV = "REPRO_CACHE_FINGERPRINT"


def validate_scan_mode(mode: str) -> str:
    if mode not in SCAN_MODES:
        raise ReproError(
            f"unknown scan mode {mode!r}; expected one of {', '.join(SCAN_MODES)}"
        )
    return mode


def resolve_scan_mode(mode: str | None = None) -> str:
    """Resolve a scan mode: explicit argument > $REPRO_SCAN_MODE > ondemand."""
    if mode is not None:
        return validate_scan_mode(mode)
    env = env_setting(SCAN_MODE_ENV, "")
    if env:
        return validate_scan_mode(env)
    return "ondemand"


def validate_fingerprint_mode(mode: str) -> str:
    if mode not in FINGERPRINT_MODES:
        raise ReproError(
            f"unknown cache fingerprint mode {mode!r}; expected one of "
            f"{', '.join(FINGERPRINT_MODES)}"
        )
    return mode


def resolve_fingerprint_mode(mode: str | None = None) -> str:
    """Resolve a fingerprint mode: explicit > $REPRO_CACHE_FINGERPRINT > stat."""
    if mode is not None:
        return validate_fingerprint_mode(mode)
    env = env_setting(FINGERPRINT_ENV, "")
    if env:
        return validate_fingerprint_mode(env)
    return "stat"


def resolve_segment_cache(
    cache_dir: str | None = None, fingerprint_mode: str | None = None
):
    """Resolve a segment cache: explicit directory > $REPRO_SEGMENT_CACHE > off.

    Returns a :class:`~repro.cache.segments.SegmentCache` or ``None``
    (cache disabled).  *fingerprint_mode* resolves through
    :func:`resolve_fingerprint_mode`.
    """
    from repro.cache.segments import SegmentCache

    if cache_dir is None:
        cache_dir = env_setting(SEGMENT_CACHE_ENV, "")
    if not cache_dir:
        # An explicit empty string disables the cache even when the
        # environment sets a directory — same contract as
        # ``configure_scan(segment_cache_dir="")``.
        return None
    return SegmentCache(
        cache_dir, fingerprint_mode=resolve_fingerprint_mode(fingerprint_mode)
    )
