"""Scan-mode and segment-cache resolution (explicit > env > default).

Scan modes select the per-record projector used by every DATASCAN:

- ``ondemand`` (default) — the structural-index scanner
  (:mod:`repro.jsonlib.tape`): one tokenizing pass builds a tape, the
  projection navigates it lazily, non-projected subtrees are jumped by
  offset arithmetic.
- ``text`` — the raw-text skipper (:mod:`repro.jsonlib.textscan`),
  the canonical reference implementation.
- ``eager`` — parse every record fully, then navigate the materialized
  item (the pre-PR-7 naive baseline; kept for benchmarking and for the
  differential harness's scan-mode axis).

All three produce byte-identical items, errors, and degradation
records; they differ only in speed and in which diagnostic counters
they populate.
"""

from __future__ import annotations

import os

from repro.errors import ReproError

SCAN_MODES = ("ondemand", "text", "eager")

#: Environment default for :func:`resolve_scan_mode`.
SCAN_MODE_ENV = "REPRO_SCAN_MODE"

#: Environment default for :func:`resolve_segment_cache` (a directory
#: path; empty/unset disables the cache).
SEGMENT_CACHE_ENV = "REPRO_SEGMENT_CACHE"


def validate_scan_mode(mode: str) -> str:
    if mode not in SCAN_MODES:
        raise ReproError(
            f"unknown scan mode {mode!r}; expected one of {', '.join(SCAN_MODES)}"
        )
    return mode


def resolve_scan_mode(mode: str | None = None) -> str:
    """Resolve a scan mode: explicit argument > $REPRO_SCAN_MODE > ondemand."""
    if mode is not None:
        return validate_scan_mode(mode)
    env = os.environ.get(SCAN_MODE_ENV, "").strip()
    if env:
        return validate_scan_mode(env)
    return "ondemand"


def resolve_segment_cache(cache_dir: str | None = None):
    """Resolve a segment cache: explicit directory > $REPRO_SEGMENT_CACHE > off.

    Returns a :class:`~repro.cache.segments.SegmentCache` or ``None``
    (cache disabled).
    """
    from repro.cache.segments import SegmentCache

    if cache_dir is None:
        cache_dir = os.environ.get(SEGMENT_CACHE_ENV, "").strip()
    if not cache_dir:
        # An explicit empty string disables the cache even when the
        # environment sets a directory — same contract as
        # ``configure_scan(segment_cache_dir="")``.
        return None
    return SegmentCache(cache_dir)
