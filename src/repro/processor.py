"""The public query-engine facade.

:class:`JsonProcessor` is the library's front door — the counterpart of
an Apache VXQuery deployment: point it at partitioned JSON collections
and run JSONiq queries against the raw files, no load phase::

    from repro import JsonProcessor

    processor = JsonProcessor.from_directory("/data")
    result = processor.execute(
        'for $r in collection("/sensors")("root")()("results")() '
        'where $r("dataType") eq "TMIN" return $r("value")'
    )
    print(result.items)

Rule families can be toggled per processor (``rewrite=``) to reproduce
the paper's before/after experiments, and ``explain`` shows the naive
plan, the rewritten plan, and the rewrite trace.
"""

from __future__ import annotations

from repro.algebra.rules import RewriteConfig
from repro.compiler.pipeline import CompiledQuery, compile_query
from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.errors import ReproError
from repro.hyracks.executor import PartitionedExecutor, QueryResult
from repro.jsonlib.items import Item
from repro.resilience.faults import FaultPlan
from repro.resilience.policies import ResilienceConfig


class JsonProcessor:
    """A parallel JSONiq processor over raw, partitioned JSON files.

    Parameters
    ----------
    source:
        A :class:`~repro.algebra.context.DataSource` (a
        :class:`~repro.data.catalog.CollectionCatalog`, an
        :class:`~repro.data.catalog.InMemorySource`, or anything
        implementing the protocol).  Optional for queries that only use
        literals/constructors.
    rewrite:
        Which rewrite-rule families to apply (default: all).
    memory_budget_bytes:
        Optional per-plan-instance memory budget.  With spilling on (the
        default), blocking operators degrade to disk when the budget is
        hit; with ``spill=False``, exceeding it raises
        :class:`~repro.errors.MemoryBudgetExceededError`.
    functions:
        Override the builtin scalar-function library.
    resilience:
        Per-partition error handling
        (:class:`~repro.resilience.policies.ResilienceConfig`):
        ``fail_fast`` (default), ``retry``, or ``skip_partition``.  Its
        ``recovery`` field
        (:class:`~repro.resilience.policies.RecoveryPolicy`) governs
        worker-loss recovery on the pooled backends: crashed work units
        are rescheduled up to ``max_unit_attempts`` times, repeated pool
        loss steps the backend down the process→thread→sequential
        ladder, and straggling units earn speculative duplicates.  All
        recovery is recorded on the result's ``degradation`` report and
        ``stats``.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; when
        given, *source* is wrapped so the plan's faults are injected
        (testing and chaos experiments).  Besides data faults, the plan
        can kill workers (``kill_worker``) and stall partitions
        (``stall_partition``) to exercise the recovery path.
    backend:
        Execution backend for partition work: ``"sequential"``
        (default), ``"thread"``, ``"process"``, or an
        :class:`~repro.hyracks.backends.ExecutionBackend` instance.
        ``None`` consults the ``REPRO_BACKEND`` environment variable.
        All backends produce identical results and degradation reports;
        ``process`` runs partitions on real cores.
    max_workers:
        Worker cap for the named pooled backends (default: CPU count).
    spill:
        With a memory budget set, let blocking operators (GROUP-BY,
        JOIN, ORDER-BY, sequence aggregates) spill to disk when the
        budget is hit (the default) instead of raising.
    spill_dir:
        Root directory for spill run files (default: ``REPRO_SPILL_DIR``
        or the system temp dir).
    deadline_seconds:
        Per-query deadline; a query running past it raises a
        :class:`~repro.errors.QueryTimeoutError` and releases every
        spill file on the way out.  ``None`` consults the
        ``REPRO_DEADLINE`` environment variable.
    scan_mode:
        How DATASCAN projects raw JSON: ``"ondemand"`` (structural-index
        scanner, the default), ``"text"`` (raw-text skipper), or
        ``"eager"`` (parse fully, then navigate).  All three are
        byte-identical in results, errors and degradation reports.
        ``None`` leaves the source's own setting (which consults the
        ``REPRO_SCAN_MODE`` environment variable).
    segment_cache_dir:
        Directory for the binary columnar segment cache; warm reruns of
        an unchanged file × projection deserialize segments instead of
        scanning JSON.  ``None`` leaves the source's own setting
        (``REPRO_SEGMENT_CACHE`` environment variable); an empty string
        disables the cache explicitly.
    cache_fingerprint:
        How cached segments detect file changes: ``"stat"`` (size,
        timestamps, inode — fast, with a documented same-size in-place
        rewrite staleness window) or ``"content"`` (hash the bytes —
        slower per lookup, no staleness window; what a long-lived
        server should use).  ``None`` leaves the source's own setting
        (``REPRO_CACHE_FINGERPRINT`` environment variable, default
        ``stat``).
    cost:
        Cost-based join planning: when on and the source samples
        statistics (``stats_snapshot``), compilation runs the cost phase
        (:func:`repro.stats.cost.apply_cost_planning`) — build-side
        choice, join ordering, broadcast exchange, skew splitting.
        ``None`` consults the ``REPRO_COST`` environment variable (unset
        means on).  Purely a physical-plan decision: results are
        byte-identical with cost planning on or off.
    """

    def __init__(
        self,
        source=None,
        rewrite: RewriteConfig | None = None,
        memory_budget_bytes: int | None = None,
        functions=None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        backend=None,
        max_workers: int | None = None,
        spill: bool = True,
        spill_dir: str | None = None,
        deadline_seconds: float | None = None,
        scan_mode: str | None = None,
        segment_cache_dir: str | None = None,
        cache_fingerprint: str | None = None,
        cost: bool | None = None,
    ):
        if (
            scan_mode is not None
            or segment_cache_dir is not None
            or cache_fingerprint is not None
        ) and source is not None:
            configure = getattr(source, "configure_scan", None)
            if configure is None:
                raise ReproError(
                    "this data source does not support scan_mode/"
                    "segment_cache_dir configuration"
                )
            configure(
                scan_mode=scan_mode,
                segment_cache_dir=segment_cache_dir,
                fingerprint_mode=cache_fingerprint,
            )
        if fault_plan is not None:
            source = fault_plan.wrap(source)
        self.source = source
        self._closed = False
        self.rewrite = rewrite if rewrite is not None else RewriteConfig.all()
        from repro.stats.cost import resolve_cost_enabled

        self.cost = (
            resolve_cost_enabled(cost) if self.rewrite.cost else False
        )
        self._executor = PartitionedExecutor(
            source,
            functions=functions,
            two_step_aggregation=self.rewrite.two_step_aggregation,
            memory_budget_bytes=memory_budget_bytes,
            resilience=resilience,
            backend=backend,
            max_workers=max_workers,
            spill=spill,
            spill_dir=spill_dir,
            deadline_seconds=deadline_seconds,
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_directory(
        cls, base_dir: str, on_malformed: str = "fail", **kwargs
    ) -> "JsonProcessor":
        """Processor over ``<base_dir>/<collection>/partition<i>/*.json``."""
        return cls(
            source=CollectionCatalog(base_dir, on_malformed=on_malformed),
            **kwargs,
        )

    @classmethod
    def in_memory(
        cls,
        collections: dict[str, list[list[str]]] | None = None,
        documents: dict[str, str] | None = None,
        on_malformed: str = "fail",
        **kwargs,
    ) -> "JsonProcessor":
        """Processor over in-memory JSON texts (tests, notebooks)."""
        return cls(
            source=InMemorySource(collections, documents, on_malformed=on_malformed),
            **kwargs,
        )

    # -- query API ---------------------------------------------------------------

    def compile(self, query: str) -> CompiledQuery:
        """Compile *query* under this processor's rewrite configuration.

        When cost-based planning is on (the ``cost`` parameter, else
        ``REPRO_COST``, else the rewrite config) and the source can
        sample statistics, the cost phase runs against the source's
        current stats snapshot.
        """
        return compile_query(query, self.rewrite, stats=self._stats_snapshot())

    def _stats_snapshot(self):
        if not self.cost or self.source is None:
            return None
        snapshot = getattr(self.source, "stats_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    def execute(self, query: str, profile=None, cancellation=None) -> QueryResult:
        """Compile and run *query*; returns items plus measurements.

        *profile* enables operator-level profiling: ``True`` (wall
        clock), a clock name (``"wall"`` | ``"counter"`` | ``"none"``),
        or a :class:`~repro.observability.profile.ProfileConfig`; the
        default ``None`` consults the ``REPRO_PROFILE`` environment
        variable.  A profiled result carries
        ``result.profile`` — a
        :class:`~repro.observability.profile.QueryProfile` with the
        per-operator counters, timing spans, and the rewrite audit of
        this query's compilation.

        *cancellation* is an optional
        :class:`~repro.hyracks.limits.CancellationToken`; cancelling it
        (from another thread, or through its filesystem flag) makes the
        running query raise
        :class:`~repro.errors.QueryCancelledError` at the next frame
        boundary with all spill files and memory charges released.
        """
        if self._closed:
            from repro.errors import ProcessorClosedError

            raise ProcessorClosedError("processor")
        compiled = self.compile(query)
        result = self._executor.run(
            compiled.plan, profile=profile, cancellation=cancellation
        )
        if result.profile is not None:
            result.profile.rewrite = compiled.audit
        return result

    def profile(self, query: str, clock: str = "counter"):
        """Run *query* profiled and return just its ``QueryProfile``.

        Defaults to the deterministic ``counter`` clock (spans count
        clock reads, not wall time), so profiles of seeded runs are
        byte-identical across the sequential, thread, and process
        backends.
        """
        return self.execute(query, profile=clock).profile

    def evaluate(self, query: str) -> list[Item]:
        """Compile and run *query*; returns just the result items."""
        return self.execute(query).items

    def explain(
        self, query: str, show_trace: bool = False, profile: bool = False
    ) -> str:
        """The naive and rewritten plans (optionally the rewrite trace).

        With ``profile=True`` the query is also *executed* under the
        deterministic counter clock and the rendered operator profile
        (plus the rewrite audit) is appended to the report.
        """
        compiled = self.compile(query)
        report = compiled.explain(show_trace=show_trace)
        if profile:
            query_profile = self.profile(query)
            report += "\n\n" + query_profile.render()
        return report

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release backend worker pools (threads/processes).

        Idempotent — double-close is a no-op.  After close every
        ``execute``/``evaluate``/``profile`` raises
        :class:`~repro.errors.ProcessorClosedError` instead of silently
        re-creating worker pools.  ``__exit__`` routes through here, so
        a query that unwinds via an exception inside a ``with`` block
        still shuts the pools down.
        """
        if self._closed:
            return
        self._closed = True
        self._executor.close()

    def __enter__(self) -> "JsonProcessor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
