"""One resolution rule for every ``REPRO_*`` environment variable.

Before this module each consumer resolved its variable slightly
differently — ``spill.py`` used ``os.environ.get(VAR) or default`` (an
explicitly empty ``REPRO_SPILL_DIR=""`` silently fell back to the
built-in default) while ``cache/config.py`` treated an explicit ``""``
as "disable the feature".  A long-lived service cannot live with that
ambiguity, so every ``REPRO_*`` variable now resolves through
:func:`env_setting` under one documented contract:

1. an **explicit argument** at the call site always wins (callers check
   for it before consulting the environment);
2. otherwise a **set** variable supplies the value — and a variable
   explicitly set to the empty string (or whitespace) means "feature
   off / no override", it is *never* silently replaced by a built-in
   default;
3. otherwise (variable unset) the built-in default applies.

Variables resolved through this rule: ``REPRO_BACKEND``,
``REPRO_SPILL_DIR``, ``REPRO_DEADLINE``, ``REPRO_PROFILE``,
``REPRO_SCAN_MODE``, ``REPRO_SEGMENT_CACHE``,
``REPRO_CACHE_FINGERPRINT``, ``REPRO_STATS_SAMPLE``, ``REPRO_COST``.
For most of them the built-in default *is* the off/neutral setting, so
rules 2 and 3 currently coincide for an empty string — the contract
matters because it pins what a future non-neutral default must do, and
because callers must distinguish "unset" from "set but empty" to honour
it.  ``REPRO_STATS_SAMPLE`` and ``REPRO_COST`` are the first variables
where the rules *diverge*: both features default **on** (64 sampled
documents per partition; cost-based planning enabled), so unset means
on while set-but-empty (or ``0`` / ``off`` / ``false`` / ``no`` for
``REPRO_COST``) means explicitly off.
"""

from __future__ import annotations

import os


def env_setting(name: str, default: str | None = None) -> str | None:
    """Resolve one ``REPRO_*`` variable: unset → *default*, set → value.

    The value is stripped; a variable explicitly set to the empty
    string (or only whitespace) returns ``""``, which callers must
    treat as "feature off / no override" — never as "fall back to the
    built-in default".  Truthiness on the return value implements
    exactly that: ``env_setting(X) or fallback`` is **wrong** (it
    erases the set-but-empty case), the correct pattern is::

        value = env_setting(X)
        if value is None:   # unset
            value = built_in_default
        if not value:       # "" -> explicitly off
            return disabled
    """
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip()
