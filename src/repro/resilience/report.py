"""Graceful-degradation reporting.

A :class:`DegradationReport` accumulates everything a query execution
survived rather than computed: partitions skipped after exhausted
retries, records and files dropped by an ``on_malformed`` policy, and
every retry that was charged to the simulated clock.  It hangs off
:class:`~repro.hyracks.executor.QueryResult` so callers can distinguish
a complete answer from a degraded one.

Everything recorded here is deterministic under a fixed fault seed: no
wall-clock values, no unordered containers.  ``to_dict`` therefore
serializes byte-identically across runs of the same faulty scenario,
which ``tools/check_determinism.py`` exploits.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class SkippedPartition:
    """A partition dropped from the result."""

    partition: int
    collections: tuple[str, ...]
    attempts: int
    message: str


@dataclass(frozen=True)
class SkippedRecord:
    """A single malformed (or injected-corrupt) record dropped by a scan."""

    source: str
    offset: int | None
    message: str


@dataclass(frozen=True)
class SkippedFile:
    """A whole file dropped by the ``skip_file`` policy."""

    file_path: str
    message: str


@dataclass(frozen=True)
class RetryEvent:
    """One retry of a failed partition, with its simulated backoff."""

    partition: int
    attempt: int
    backoff_seconds: float
    message: str


@dataclass(frozen=True)
class CancellationEvent:
    """A query-global limit (deadline or cancel) observed by a partition."""

    partition: int
    kind: str  # "timeout" | "cancelled"
    message: str


@dataclass(frozen=True)
class WorkerLossEvent:
    """A worker died mid-partition and the unit was rescheduled.

    Deterministic under a seeded :class:`~repro.resilience.faults.FaultPlan`
    kill schedule: the attempt number counts unit executions across
    worker restarts, and the recovery layer records losses in partition
    order within each pool breakage.  Deliberately backend-neutral
    (``os._exit`` under the process backend and the simulated crash
    under thread/sequential record the same event), so crash-injected
    reports stay byte-identical across backends.
    """

    partition: int
    attempt: int
    message: str


@dataclass(frozen=True)
class CacheEvent:
    """A segment-cache defect the scan degraded around.

    ``kind`` is ``"corrupt"`` (a torn/bit-flipped segment failed its
    checksum and the scan fell back to a cold read), ``"io-error"`` (a
    cache read failed with an OSError and became a miss), or
    ``"disabled"`` (consecutive I/O failures — e.g. a full disk —
    turned the cache off for the rest of the process).  Never partial:
    every cache event means the query did *more* work, not less.
    """

    kind: str  # "corrupt" | "io-error" | "disabled"
    source: str
    message: str


@dataclass(frozen=True)
class LadderStep:
    """One step down the backend degradation ladder after repeated loss."""

    from_backend: str
    to_backend: str
    message: str


@dataclass
class DegradationReport:
    """What a query execution skipped, retried, and survived."""

    skipped_partitions: list[SkippedPartition] = field(default_factory=list)
    skipped_records: list[SkippedRecord] = field(default_factory=list)
    skipped_files: list[SkippedFile] = field(default_factory=list)
    retries: list[RetryEvent] = field(default_factory=list)
    cancellations: list[CancellationEvent] = field(default_factory=list)
    worker_losses: list[WorkerLossEvent] = field(default_factory=list)
    ladder_steps: list[LadderStep] = field(default_factory=list)
    cache_events: list[CacheEvent] = field(default_factory=list)

    def __post_init__(self):
        # Dedup keys: a retried partition attempt may re-skip the same
        # record/file; the degradation it causes is still one skip.
        # Cache events dedup the same way: one corrupt segment is one
        # event however many attempts re-probe it.
        self._seen_records: set = set()
        self._seen_files: set = set()
        self._seen_cache: set = set()

    # -- recording ------------------------------------------------------------

    def record_skipped_partition(
        self,
        partition: int,
        collections: tuple[str, ...],
        attempts: int,
        cause: Exception,
    ) -> None:
        self.skipped_partitions.append(
            SkippedPartition(partition, tuple(collections), attempts, str(cause))
        )

    def record_skipped_record(
        self, source: str, offset: int | None, message: str
    ) -> None:
        key = (source, offset)
        if key in self._seen_records:
            return
        self._seen_records.add(key)
        self.skipped_records.append(SkippedRecord(source, offset, message))

    def record_skipped_file(self, file_path: str, cause: Exception) -> None:
        if file_path in self._seen_files:
            return
        self._seen_files.add(file_path)
        self.skipped_files.append(SkippedFile(file_path, str(cause)))

    def record_retry(
        self, partition: int, attempt: int, backoff_seconds: float, cause: Exception
    ) -> None:
        self.retries.append(
            RetryEvent(partition, attempt, backoff_seconds, str(cause))
        )

    def record_skip(self, source: str, offset: int | None, message: str) -> None:
        """Callback-shaped alias used by the jsonlib scanners."""
        self.record_skipped_record(source, offset, message)

    def record_cancellation(self, partition: int, cause: Exception) -> None:
        """Record a deadline/cancel observed while executing *partition*.

        The query unwinds with an error rather than a result, but the
        report (attached to the raised error as ``error.degradation``)
        still says which partition hit the limit first.
        """
        from repro.errors import QueryTimeoutError

        kind = "timeout" if isinstance(cause, QueryTimeoutError) else "cancelled"
        self.cancellations.append(
            CancellationEvent(partition, kind, str(cause))
        )

    def record_worker_loss(
        self, partition: int, attempt: int, message: str
    ) -> None:
        """Record a dead worker whose unit the recovery layer rescheduled."""
        self.worker_losses.append(WorkerLossEvent(partition, attempt, message))

    def record_ladder_step(
        self, from_backend: str, to_backend: str, message: str
    ) -> None:
        """Record one step down the backend degradation ladder."""
        self.ladder_steps.append(LadderStep(from_backend, to_backend, message))

    def record_cache_event(self, kind: str, source: str, message: str) -> None:
        """Record a segment-cache defect (corrupt file, I/O error, cache-off)."""
        key = (kind, source)
        if key in self._seen_cache:
            return
        self._seen_cache.add(key)
        self.cache_events.append(CacheEvent(kind, source, message))

    def absorb(self, other: "DegradationReport") -> None:
        """Merge *other*'s events into this report (coordinator-side).

        The parallel execution backends give every partition its own
        report and merge them in partition order, so the combined report
        is byte-identical to a sequential run's.  Record/file dedup keys
        apply across the merge, exactly as they would within one report.
        """
        self.skipped_partitions.extend(other.skipped_partitions)
        for record in other.skipped_records:
            key = (record.source, record.offset)
            if key not in self._seen_records:
                self._seen_records.add(key)
                self.skipped_records.append(record)
        for skipped_file in other.skipped_files:
            if skipped_file.file_path not in self._seen_files:
                self._seen_files.add(skipped_file.file_path)
                self.skipped_files.append(skipped_file)
        self.retries.extend(other.retries)
        self.cancellations.extend(other.cancellations)
        self.worker_losses.extend(other.worker_losses)
        self.ladder_steps.extend(other.ladder_steps)
        for event in other.cache_events:
            key = (event.kind, event.source)
            if key not in self._seen_cache:
                self._seen_cache.add(key)
                self.cache_events.append(event)

    # -- inspection -----------------------------------------------------------

    @property
    def is_partial(self) -> bool:
        """True when the result is missing data (not merely retried)."""
        return bool(
            self.skipped_partitions or self.skipped_records or self.skipped_files
        )

    @property
    def is_degraded(self) -> bool:
        """True when anything at all was skipped, retried, or recovered."""
        return self.is_partial or bool(
            self.retries
            or self.worker_losses
            or self.ladder_steps
            or self.cache_events
        )

    @property
    def retry_count(self) -> int:
        return len(self.retries)

    @property
    def warnings(self) -> list[str]:
        """Human-readable degradation summary, one line per event."""
        lines: list[str] = []
        for skip in self.skipped_partitions:
            names = ", ".join(skip.collections) or "<unknown>"
            lines.append(
                f"skipped partition {skip.partition} of {names} after "
                f"{skip.attempts} attempt(s): {skip.message}"
            )
        for rec in self.skipped_records:
            at = f" at offset {rec.offset}" if rec.offset is not None else ""
            lines.append(f"skipped record in {rec.source}{at}: {rec.message}")
        for skipped_file in self.skipped_files:
            lines.append(
                f"skipped file {skipped_file.file_path}: {skipped_file.message}"
            )
        for retry in self.retries:
            lines.append(
                f"retried partition {retry.partition} (attempt {retry.attempt}, "
                f"backoff {retry.backoff_seconds:.6f}s): {retry.message}"
            )
        for cancel in self.cancellations:
            lines.append(
                f"partition {cancel.partition} hit a query limit "
                f"({cancel.kind}): {cancel.message}"
            )
        for loss in self.worker_losses:
            lines.append(
                f"worker for partition {loss.partition} died "
                f"(attempt {loss.attempt}), rescheduled: {loss.message}"
            )
        for step in self.ladder_steps:
            lines.append(
                f"degraded backend {step.from_backend} -> {step.to_backend} "
                f"after repeated worker loss: {step.message}"
            )
        for event in self.cache_events:
            lines.append(
                f"segment cache {event.kind} at {event.source}: {event.message}"
            )
        return lines

    def to_dict(self) -> dict:
        """A JSON-serializable, deterministically ordered view."""
        return {
            "partial": self.is_partial,
            "skipped_partitions": [asdict(s) for s in self.skipped_partitions],
            "skipped_records": [asdict(s) for s in self.skipped_records],
            "skipped_files": [asdict(s) for s in self.skipped_files],
            "retries": [asdict(r) for r in self.retries],
            "cancellations": [asdict(c) for c in self.cancellations],
            "worker_losses": [asdict(w) for w in self.worker_losses],
            "ladder_steps": [asdict(s) for s in self.ladder_steps],
            "cache_events": [asdict(e) for e in self.cache_events],
        }
