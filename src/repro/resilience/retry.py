"""Retry policy with deterministic exponential backoff.

Backoff is charged to the **simulated clock** — the executor adds it to
a partition's injected seconds so :meth:`ClusterSpec.makespan
<repro.hyracks.cluster.ClusterSpec.makespan>` accounts for retry time —
and never slept for real.  Jitter comes from a seeded RNG keyed on
``(seed, attempt)`` so two runs of the same faulty scenario charge
byte-identical backoff.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass


def stable_seed(*parts) -> int:
    """A process-stable integer seed from arbitrary printable parts.

    Python's ``hash()`` of strings is randomized per process, so every
    seeded decision in this package derives from CRC32 instead.
    """
    return zlib.crc32(":".join(str(part) for part in parts).encode("utf-8"))


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) a failed partition is re-executed.

    ``max_attempts`` counts the first try: the default of 3 means one
    initial attempt plus up to two retries.  The backoff before retry
    *n* is ``base_backoff_seconds * multiplier**(n - 1)``, inflated by a
    deterministic jitter of up to ``jitter`` (a fraction).
    """

    max_attempts: int = 3
    base_backoff_seconds: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_seconds < 0 or self.jitter < 0:
            raise ValueError("backoff and jitter must be non-negative")

    def backoff_seconds(self, attempt: int) -> float:
        """Simulated backoff charged before retrying after failure *attempt*."""
        base = self.base_backoff_seconds * self.multiplier ** (attempt - 1)
        if not self.jitter:
            return base
        rng = random.Random(stable_seed("backoff", self.seed, attempt))
        return base * (1.0 + self.jitter * rng.random())
