"""Fault tolerance for partitioned execution.

The paper's engine queries *raw* JSON in situ — it meets dirty data and
flaky partitions at query time, not at load time.  This package gives
the reproduction a production posture for that reality:

- :mod:`~repro.resilience.faults` — a deterministic, seedable
  fault-injection layer (:class:`FaultPlan`) for testing it all;
- :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff on a simulated clock;
- :mod:`~repro.resilience.policies` — :class:`ResilienceConfig`
  (``fail_fast`` | ``retry`` | ``skip_partition``) and the scan-level
  ``on_malformed`` policies (``fail`` | ``skip_record`` | ``skip_file``);
- :mod:`~repro.resilience.report` — :class:`DegradationReport`, the
  record of everything a query survived, attached to every
  :class:`~repro.hyracks.executor.QueryResult`.

A five-line tour::

    plan = FaultPlan(seed=7).fail_partition(2, times=2)
    processor = JsonProcessor(
        source=plan.wrap(catalog),
        resilience=ResilienceConfig(partition_policy="retry"),
    )
    result = processor.execute(query)
    print(result.degradation.warnings)
"""

from repro.resilience.faults import (
    CorruptRecordError,
    FaultInjectingSource,
    FaultPlan,
    InjectedFaultError,
    PermanentFaultError,
    TransientFaultError,
)
from repro.resilience.policies import (
    ON_MALFORMED_POLICIES,
    PARTITION_POLICIES,
    RecoveryPolicy,
    ResilienceConfig,
    validate_on_malformed,
)
from repro.resilience.report import (
    DegradationReport,
    LadderStep,
    RetryEvent,
    SkippedFile,
    SkippedPartition,
    SkippedRecord,
    WorkerLossEvent,
)
from repro.resilience.retry import RetryPolicy, stable_seed

__all__ = [
    "CorruptRecordError",
    "DegradationReport",
    "FaultInjectingSource",
    "FaultPlan",
    "InjectedFaultError",
    "LadderStep",
    "ON_MALFORMED_POLICIES",
    "PARTITION_POLICIES",
    "PermanentFaultError",
    "RecoveryPolicy",
    "ResilienceConfig",
    "RetryEvent",
    "RetryPolicy",
    "SkippedFile",
    "SkippedPartition",
    "SkippedRecord",
    "TransientFaultError",
    "WorkerLossEvent",
    "stable_seed",
    "validate_on_malformed",
]
