"""Deterministic, seedable fault injection for partitioned scans.

A :class:`FaultPlan` describes which partitions misbehave and how:
raise a transient error for the first *n* attempts, raise permanently,
run slow (a straggler delay charged to the simulated clock), or corrupt
a fraction of the records they scan.  ``plan.wrap(source)`` returns a
:class:`FaultInjectingSource` that implements the
:class:`~repro.algebra.context.DataSource` protocol and injects the
plan's faults on the way through — the engine under test cannot tell an
injected fault from a real one.

Every decision is a pure function of the plan's seed (via CRC32, never
``hash()``), so two runs of the same plan inject byte-identical faults;
only the transient-attempt counters are stateful, and :meth:`FaultPlan.reset`
rewinds them.
"""

from __future__ import annotations

import errno
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.errors import JsonSyntaxError, RuntimeExecutionError
from repro.jsonlib.path import Path
from repro.resilience.retry import stable_seed


class InjectedFaultError(RuntimeExecutionError):
    """Base class for errors raised by fault injection."""

    retryable = True


class TransientFaultError(InjectedFaultError):
    """An injected fault that goes away after a bounded number of attempts."""

    retryable = True


class PermanentFaultError(InjectedFaultError):
    """An injected fault that never goes away; retrying cannot help."""

    retryable = False


class CorruptRecordError(JsonSyntaxError):
    """An injected corrupt record, surfaced as malformed JSON."""


def _normalize(name: str) -> str:
    return "/" + name.strip("/")


@dataclass
class PartitionFault:
    """One partition's injected failure behaviour."""

    partition: int
    collection: str | None  # None matches any collection
    permanent: bool
    failures: int  # attempts that fail (ignored when permanent)
    message: str

    def matches(self, collection: str, partition: int) -> bool:
        if self.partition != partition:
            return False
        return self.collection is None or self.collection == collection


@dataclass
class CorruptionFault:
    """A fraction of one partition's records surfaced as corrupt."""

    partition: int
    collection: str | None
    fraction: float

    def matches(self, collection: str, partition: int) -> bool:
        if self.partition != partition:
            return False
        return self.collection is None or self.collection == collection


@dataclass
class SpillFault:
    """One partition's spill writes fail (transiently or permanently)."""

    partition: int
    permanent: bool
    failures: int  # spill writes that fail (ignored when permanent)
    message: str


@dataclass
class CacheIOFault:
    """Segment-cache I/O operations fail (transiently or permanently).

    ``operation`` of ``None`` matches both stores and loads; the
    injected error is a real :class:`OSError` with ``errno.ENOSPC``, so
    the cache layer exercises exactly the code path a full disk takes
    (skip the store / miss the load, count the failure, and turn the
    cache off after its consecutive-error budget).
    """

    operation: str | None  # "store" | "load" | None = both
    permanent: bool
    failures: int  # cache I/O attempts that fail (ignored when permanent)
    message: str


@dataclass
class KillFault:
    """One partition's worker dies abruptly on a specific attempt.

    ``attempt`` counts unit-level executions across worker restarts
    (the recovery layer's global attempt number, 1-based), so a kill
    scheduled for attempt 1 fires exactly once even though the fresh
    worker process that re-runs the partition holds a fresh copy of the
    plan: the decision is a pure function of (partition, attempt), with
    no stateful counters to lose in the crash.
    """

    partition: int
    attempt: int
    message: str


@dataclass
class StallFault:
    """One partition's worker stalls (really sleeps) before executing.

    Unlike :meth:`FaultPlan.delay_partition` — which charges a
    *simulated* straggler delay — a stall burns wall-clock time, which
    is what the speculative-execution watchdog reacts to.  ``attempt``
    of ``None`` stalls every attempt; an integer stalls only that
    unit-level attempt (so a speculative duplicate, running as the next
    attempt, escapes the stall).
    """

    partition: int
    attempt: int | None
    seconds: float


class FaultPlan:
    """A seeded schedule of faults to inject into a data source."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._failures: list[PartitionFault] = []
        self._corruptions: list[CorruptionFault] = []
        self._spill_faults: list[SpillFault] = []
        self._cache_faults: list[CacheIOFault] = []
        self._kills: list[KillFault] = []
        self._stalls: list[StallFault] = []
        self._delays: dict[int, float] = {}
        self._attempts: dict[tuple[str, int], int] = {}

    # -- declaring faults -------------------------------------------------------

    def fail_partition(
        self,
        partition: int,
        times: int = 1,
        permanent: bool = False,
        collection: str | None = None,
        message: str | None = None,
    ) -> "FaultPlan":
        """Make *partition* raise on its first *times* attempts (or always)."""
        if message is None:
            kind = "permanent" if permanent else "transient"
            message = f"injected {kind} fault on partition {partition}"
        self._failures.append(
            PartitionFault(
                partition,
                None if collection is None else _normalize(collection),
                permanent,
                times,
                message,
            )
        )
        return self

    def fail_spill(
        self,
        partition: int,
        times: int = 1,
        permanent: bool = False,
        message: str | None = None,
    ) -> "FaultPlan":
        """Make *partition*'s first *times* spill writes raise (or all).

        The error surfaces from the spilling operator's run-file write,
        so a retrying resilience policy re-derives every run from the
        source data on the next attempt — which is why spill runs are
        safe to drop wholesale on failure.
        """
        if message is None:
            kind = "permanent" if permanent else "transient"
            message = f"injected {kind} spill-write fault on partition {partition}"
        self._spill_faults.append(
            SpillFault(partition, permanent, times, message)
        )
        return self

    def fail_cache_io(
        self,
        times: int = 1,
        permanent: bool = False,
        operation: str | None = None,
        message: str | None = None,
    ) -> "FaultPlan":
        """Make the first *times* segment-cache I/O attempts fail (or all).

        Wire the plan into a cache with
        ``cache.fault_hook = plan.cache_io_attempt`` (``wrap()`` does
        this automatically when the wrapped source exposes a
        ``segment_cache``).  The injected :class:`OSError` (ENOSPC)
        never reaches the query: the cache absorbs it — a failed store
        is skipped, a failed load is a miss — and ``permanent=True``
        drives the cache into its disabled (cache-off) state after its
        consecutive-error budget, which is the full-disk degradation
        scenario.  Transient counters are process-local: under the
        process backend each worker counts its own attempts, so use
        ``permanent=True`` for cross-backend-deterministic schedules.
        """
        if operation not in (None, "store", "load"):
            raise ValueError(
                f"operation must be 'store', 'load', or None, got {operation!r}"
            )
        if message is None:
            kind = "permanent" if permanent else "transient"
            what = operation or "i/o"
            message = f"injected {kind} cache {what} fault"
        self._cache_faults.append(
            CacheIOFault(operation, permanent, times, message)
        )
        return self

    def kill_worker(
        self, partition: int, attempt: int = 1, message: str | None = None
    ) -> "FaultPlan":
        """Make *partition*'s worker die abruptly on unit attempt *attempt*.

        Under the process backend the worker calls ``os._exit`` (a real
        abrupt death that breaks the pool); under the thread and
        sequential backends the same schedule raises
        :class:`~repro.errors.WorkerCrashError` so recovery behaves
        identically across backends.  Attempts are 1-based and count
        unit executions across worker restarts.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        if message is None:
            message = (
                f"injected worker kill on partition {partition} "
                f"(attempt {attempt})"
            )
        self._kills.append(KillFault(partition, attempt, message))
        return self

    def stall_partition(
        self, partition: int, seconds: float, attempt: int | None = 1
    ) -> "FaultPlan":
        """Make *partition*'s worker sleep *seconds* of real wall time.

        This is the straggler the speculative-execution watchdog is
        built for.  The default ``attempt=1`` stalls only the first
        unit attempt, so a speculative duplicate (running as the next
        attempt) escapes the stall and wins; ``attempt=None`` stalls
        every attempt.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds!r}")
        self._stalls.append(StallFault(partition, attempt, seconds))
        return self

    def delay_partition(self, partition: int, seconds: float) -> "FaultPlan":
        """Make *partition* a straggler: charge *seconds* per attempt."""
        self._delays[partition] = self._delays.get(partition, 0.0) + seconds
        return self

    def corrupt_records(
        self, partition: int, fraction: float, collection: str | None = None
    ) -> "FaultPlan":
        """Corrupt a deterministic *fraction* of *partition*'s records."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        self._corruptions.append(
            CorruptionFault(
                partition,
                None if collection is None else _normalize(collection),
                fraction,
            )
        )
        return self

    def reset(self) -> None:
        """Rewind the transient-attempt counters (for repeat runs)."""
        self._attempts.clear()

    # -- injection hooks --------------------------------------------------------

    def begin_attempt(self, collection: str, partition: int | None) -> None:
        """Count an attempt on (collection, partition); raise if a fault is due.

        Faults are partition-scoped: scans over all partitions at once
        (``partition=None``, the global strategy) pass through untouched.
        """
        if partition is None:
            return
        collection = _normalize(collection)
        key = (collection, partition)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        for fault in self._failures:
            if not fault.matches(collection, partition):
                continue
            if fault.permanent:
                raise PermanentFaultError(fault.message)
            if attempt <= fault.failures:
                raise TransientFaultError(
                    f"{fault.message} (attempt {attempt} of {fault.failures})"
                )

    def should_corrupt(
        self, collection: str, partition: int | None, index: int
    ) -> bool:
        """Whether record *index* of (collection, partition) is corrupted.

        Deterministic: depends only on the plan seed and the coordinates.
        """
        if partition is None:
            return False
        collection = _normalize(collection)
        for fault in self._corruptions:
            if not fault.matches(collection, partition):
                continue
            if fault.fraction >= 1.0:
                return True
            draw = stable_seed("corrupt", self.seed, collection, partition, index)
            if (draw % 1_000_000) / 1_000_000.0 < fault.fraction:
                return True
        return False

    def spill_write_attempt(self, partition: int | None) -> None:
        """Count one spill write on *partition*; raise if a fault is due."""
        if partition is None or not self._spill_faults:
            return
        key = ("__spill__", partition)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        for fault in self._spill_faults:
            if fault.partition != partition:
                continue
            if fault.permanent:
                raise PermanentFaultError(fault.message)
            if attempt <= fault.failures:
                raise TransientFaultError(
                    f"{fault.message} (spill write {attempt} of {fault.failures})"
                )

    def cache_io_attempt(self, operation: str = "store") -> None:
        """Count one segment-cache I/O; raise ``OSError`` if a fault is due.

        This is the ``SegmentCache.fault_hook`` shape: a bound method,
        so it pickles with the plan into process-backend work units.
        """
        if not self._cache_faults:
            return
        key = ("__cache_io__", 0)
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        for fault in self._cache_faults:
            if fault.operation is not None and fault.operation != operation:
                continue
            if fault.permanent:
                raise OSError(errno.ENOSPC, fault.message)
            if attempt <= fault.failures:
                raise OSError(
                    errno.ENOSPC,
                    f"{fault.message} (cache i/o {attempt} of {fault.failures})",
                )

    def injected_delay(self, partition: int | None) -> float:
        """Straggler seconds charged to *partition* per attempt."""
        if partition is None:
            return 0.0
        return self._delays.get(partition, 0.0)

    def worker_kill_message(
        self, partition: int | None, attempt: int
    ) -> str | None:
        """The kill message due for (partition, unit attempt), or None.

        Pure function of the schedule — no counters — so the decision
        is identical in a fresh worker process after a crash.
        """
        if partition is None:
            return None
        for fault in self._kills:
            if fault.partition == partition and fault.attempt == attempt:
                return fault.message
        return None

    def stall_seconds(self, partition: int | None, attempt: int) -> float:
        """Wall-clock stall seconds due for (partition, unit attempt)."""
        if partition is None:
            return 0.0
        return sum(
            fault.seconds
            for fault in self._stalls
            if fault.partition == partition
            and (fault.attempt is None or fault.attempt == attempt)
        )

    def wrap(self, source) -> "FaultInjectingSource":
        """A :class:`FaultInjectingSource` injecting this plan into *source*.

        When the wrapped source exposes a ``segment_cache``, the plan's
        cache-I/O schedule is hooked into it too.
        """
        wrapped = FaultInjectingSource(self, source)
        wrapped._hook_segment_cache()
        return wrapped


class FaultInjectingSource:
    """DataSource wrapper that injects a :class:`FaultPlan`'s faults.

    Partition failures raise at scan start; corrupt records either raise
    a :class:`CorruptRecordError` or — when the wrapped source's
    ``on_malformed`` policy is ``skip_record`` — are dropped and recorded
    in the attached degradation report, exactly like a really-malformed
    record would be.
    """

    def __init__(self, plan: FaultPlan, source):
        self.plan = plan
        self._source = source
        self._local = threading.local()

    # -- resilience wiring ------------------------------------------------------

    @property
    def _report(self):
        return getattr(self._local, "report", None)

    @property
    def on_malformed(self) -> str:
        return getattr(self._source, "on_malformed", "fail")

    def attach_degradation(self, report) -> None:
        """Attach (or detach, with None) the per-query degradation report.

        The attachment is per thread, mirroring the catalogs'.
        """
        self._local.report = report
        attach = getattr(self._source, "attach_degradation", None)
        if attach is not None:
            attach(report)

    def configure_scan(
        self, scan_mode=None, segment_cache_dir=None, fingerprint_mode=None
    ) -> None:
        """Delegate scan-mode/segment-cache configuration to the inner source.

        Any segment cache the inner source ends up with (including one
        just built here) gets the plan's cache-I/O fault hook.
        """
        configure = getattr(self._source, "configure_scan", None)
        if configure is not None:
            configure(
                scan_mode=scan_mode,
                segment_cache_dir=segment_cache_dir,
                fingerprint_mode=fingerprint_mode,
            )
        self._hook_segment_cache()

    @property
    def segment_cache(self):
        """The inner source's segment cache (None when caching is off)."""
        return getattr(self._source, "segment_cache", None)

    def _hook_segment_cache(self) -> None:
        cache = self.segment_cache
        if cache is not None:
            cache.fault_hook = self.plan.cache_io_attempt

    def check_cache_io(self, operation: str = "store") -> None:
        """Cache-I/O hook: raise ``OSError`` if the plan schedules a fault."""
        self.plan.cache_io_attempt(operation)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def injected_delay(self, partition: int | None) -> float:
        return self.plan.injected_delay(partition)

    def check_spill_fault(self, partition: int | None) -> None:
        """Spill-write hook: raise if the plan schedules a spill fault."""
        self.plan.spill_write_attempt(partition)

    def check_worker_kill(
        self, partition: int | None, attempt: int
    ) -> str | None:
        """Kill hook: the scheduled kill message for this attempt, or None."""
        return self.plan.worker_kill_message(partition, attempt)

    def injected_stall(self, partition: int | None, attempt: int) -> float:
        """Stall hook: real wall-clock seconds to sleep before this attempt."""
        return self.plan.stall_seconds(partition, attempt)

    # -- DataSource protocol ----------------------------------------------------

    def partition_count(self, name: str) -> int:
        return self._source.partition_count(name)

    def files(self, name: str, partition: int | None = None):
        return self._source.files(name, partition)

    def total_bytes(self, name: str, partition: int | None = None) -> int:
        return self._source.total_bytes(name, partition)

    def read_document(self, uri: str):
        return self._source.read_document(uri)

    def read_collection(self, name: str, partition: int | None = None) -> list:
        self.plan.begin_attempt(name, partition)
        items = self._source.read_collection(name, partition)
        return [
            item
            for index, item in enumerate(items)
            if not self._corrupted(name, partition, index)
        ]

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator:
        # A generator, so the fault raises when the scan is *pulled*
        # (inside the executor's per-partition attempt), not when the
        # plan is built.
        self.plan.begin_attempt(name, partition)
        for index, item in enumerate(
            self._source.scan_collection(name, path, partition)
        ):
            if self._corrupted(name, partition, index):
                continue
            yield item

    def stream_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator:
        self.plan.begin_attempt(name, partition)
        for index, item in enumerate(
            self._source.stream_collection(name, path, partition)
        ):
            if self._corrupted(name, partition, index):
                continue
            yield item

    # -- internals --------------------------------------------------------------

    def _corrupted(self, name: str, partition: int | None, index: int) -> bool:
        """Apply the on-malformed policy to an injected-corrupt record.

        Returns True when the record must be dropped; raises when the
        policy is not ``skip_record``.
        """
        if not self.plan.should_corrupt(name, partition, index):
            return False
        message = f"injected corrupt record {index}"
        if self.on_malformed == "skip_record":
            if self._report is not None:
                self._report.record_skipped_record(
                    f"{_normalize(name)}[partition {partition}]", index, message
                )
            return True
        raise CorruptRecordError(message, offset=index)
