"""Error-handling policies for partitioned execution and raw scans.

Two independent knobs:

- the **partition policy** (:class:`ResilienceConfig`) decides what the
  executor does when a whole partition's work raises — fail the query
  (``fail_fast``, today's behaviour and the default), re-execute the
  partition under a :class:`~repro.resilience.retry.RetryPolicy`
  (``retry``), or drop the partition from the result
  (``skip_partition``);
- the **on-malformed policy** (a string on the data source) decides what
  a raw scan does with malformed JSON — raise (``fail``), resync past
  the broken record (``skip_record``), or drop the whole file
  (``skip_file``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.retry import RetryPolicy

PARTITION_POLICIES = ("fail_fast", "retry", "skip_partition")
ON_MALFORMED_POLICIES = ("fail", "skip_record", "skip_file")
ON_EXHAUSTED_POLICIES = ("fail", "skip")


def validate_on_malformed(value: str) -> str:
    """Validate and return an ``on_malformed`` policy string."""
    if value not in ON_MALFORMED_POLICIES:
        raise ValueError(
            f"on_malformed must be one of {ON_MALFORMED_POLICIES}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-partition error handling for the partitioned executor.

    Parameters
    ----------
    partition_policy:
        ``fail_fast`` | ``retry`` | ``skip_partition``.
    retry:
        The :class:`RetryPolicy` used by the ``retry`` policy.
    on_exhausted:
        What ``retry`` does once attempts run out (or the error is not
        retryable): ``fail`` raises, ``skip`` degrades to skipping the
        partition.
    """

    partition_policy: str = "fail_fast"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    on_exhausted: str = "fail"

    def __post_init__(self):
        if self.partition_policy not in PARTITION_POLICIES:
            raise ValueError(
                f"partition_policy must be one of {PARTITION_POLICIES}, "
                f"got {self.partition_policy!r}"
            )
        if self.on_exhausted not in ON_EXHAUSTED_POLICIES:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED_POLICIES}, "
                f"got {self.on_exhausted!r}"
            )
