"""Error-handling policies for partitioned execution and raw scans.

Three independent knobs:

- the **partition policy** (:class:`ResilienceConfig`) decides what the
  executor does when a whole partition's work raises — fail the query
  (``fail_fast``, today's behaviour and the default), re-execute the
  partition under a :class:`~repro.resilience.retry.RetryPolicy`
  (``retry``), or drop the partition from the result
  (``skip_partition``);
- the **on-malformed policy** (a string on the data source) decides what
  a raw scan does with malformed JSON — raise (``fail``), resync past
  the broken record (``skip_record``), or drop the whole file
  (``skip_file``);
- the **recovery policy** (:class:`RecoveryPolicy`) decides what the
  execution backend does when a *worker* dies or straggles: how many
  times a crashed work unit may be rescheduled, when repeated pool loss
  steps the backend down the process→thread→sequential degradation
  ladder, and when a slow unit earns a speculative duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.retry import RetryPolicy

PARTITION_POLICIES = ("fail_fast", "retry", "skip_partition")
ON_MALFORMED_POLICIES = ("fail", "skip_record", "skip_file")
ON_EXHAUSTED_POLICIES = ("fail", "skip")


def validate_on_malformed(value: str) -> str:
    """Validate and return an ``on_malformed`` policy string."""
    if value not in ON_MALFORMED_POLICIES:
        raise ValueError(
            f"on_malformed must be one of {ON_MALFORMED_POLICIES}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class RecoveryPolicy:
    """Worker-loss recovery and straggler mitigation for the backends.

    Parameters
    ----------
    enabled:
        Master switch.  When False the backends keep the pre-recovery
        behaviour: a dead process-pool worker aborts the whole query
        with a :class:`~repro.errors.BackendError`.
    max_unit_attempts:
        How many times one work unit may *start* (first run plus
        crash reschedules).  A unit that kills its worker this many
        times raises :class:`~repro.errors.RecoveryExhaustedError`
        instead of looping.
    max_losses_per_tier:
        Worker losses tolerated on one ladder tier before the backend
        steps down (process→thread→sequential) for the remaining units.
    speculate:
        Launch a speculative duplicate for straggling units
        (first-result-wins; the result stays byte-identical because the
        duplicate runs the same deterministic work).
    speculative_multiplier / speculative_floor_seconds:
        A unit speculates once it has run longer than
        ``max(multiplier * median_completed_seconds, floor_seconds)``.
    min_speculation_samples:
        Completed units required before the median is trusted.
    watchdog_interval_seconds:
        How often the coordinator's wait loop wakes to check stragglers.
    clock:
        Name in the :data:`repro.observability.clock.CLOCKS` registry
        the watchdog reads (``wall`` by default; tests can register and
        name an injectable clock).
    """

    enabled: bool = True
    max_unit_attempts: int = 3
    max_losses_per_tier: int = 2
    speculate: bool = True
    speculative_multiplier: float = 4.0
    speculative_floor_seconds: float = 0.5
    min_speculation_samples: int = 2
    watchdog_interval_seconds: float = 0.05
    clock: str = "wall"

    def __post_init__(self):
        from repro.observability.clock import CLOCKS

        if self.max_unit_attempts < 1:
            raise ValueError(
                f"max_unit_attempts must be >= 1, got {self.max_unit_attempts!r}"
            )
        if self.max_losses_per_tier < 0:
            raise ValueError(
                f"max_losses_per_tier must be >= 0, "
                f"got {self.max_losses_per_tier!r}"
            )
        if self.watchdog_interval_seconds <= 0:
            raise ValueError(
                f"watchdog_interval_seconds must be > 0, "
                f"got {self.watchdog_interval_seconds!r}"
            )
        if self.clock not in CLOCKS:
            raise ValueError(
                f"clock must be one of {sorted(CLOCKS)}, got {self.clock!r}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-partition error handling for the partitioned executor.

    Parameters
    ----------
    partition_policy:
        ``fail_fast`` | ``retry`` | ``skip_partition``.
    retry:
        The :class:`RetryPolicy` used by the ``retry`` policy.
    on_exhausted:
        What ``retry`` does once attempts run out (or the error is not
        retryable): ``fail`` raises, ``skip`` degrades to skipping the
        partition.
    recovery:
        The :class:`RecoveryPolicy` governing worker-loss recovery,
        the degradation ladder, and speculative execution.
    """

    partition_policy: str = "fail_fast"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    on_exhausted: str = "fail"
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def __post_init__(self):
        if self.partition_policy not in PARTITION_POLICIES:
            raise ValueError(
                f"partition_policy must be one of {PARTITION_POLICIES}, "
                f"got {self.partition_policy!r}"
            )
        if self.on_exhausted not in ON_EXHAUSTED_POLICIES:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED_POLICIES}, "
                f"got {self.on_exhausted!r}"
            )
