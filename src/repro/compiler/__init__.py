"""Compiler: query text → AST → naive plan → rewritten plan."""

from repro.compiler.pipeline import CompiledQuery, compile_query

__all__ = ["CompiledQuery", "compile_query"]
