"""The compilation pipeline.

Mirrors VXQuery's frontend flow (Section 3.1): the query string is
parsed into an AST, translated into a naive logical plan, and rewritten
by the configured rule families.  The :class:`CompiledQuery` keeps every
stage — including the per-rule rewrite trace — for ``explain`` output
and for the before/after experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import LogicalPlan
from repro.algebra.rules import RewriteConfig, rule_pipeline
from repro.jsoniq.ast import AstNode
from repro.jsoniq.parser import parse_query
from repro.jsoniq.translator import translate
from repro.observability.rewrite_audit import RewriteAudit


@dataclass
class CompiledQuery:
    """A query through every compilation stage."""

    text: str
    ast: AstNode
    naive_plan: LogicalPlan
    plan: LogicalPlan
    config: RewriteConfig
    trace: list[tuple[str, LogicalPlan]] = field(default_factory=list)
    audit: RewriteAudit = field(default_factory=RewriteAudit)
    #: fingerprint of the stats snapshot the cost phase ran against
    #: (None when compiled without statistics).
    stats_fingerprint: str | None = None

    def explain(self, show_trace: bool = False) -> str:
        """Human-readable compilation report."""
        lines = [
            "== naive plan ==",
            self.naive_plan.explain(),
            "",
            f"== rewritten plan ({self._config_label()}) ==",
            self.plan.explain(),
        ]
        if show_trace and self.trace:
            lines.append("")
            lines.append("== rewrite trace ==")
            for index, (rule_name, _) in enumerate(self.trace, 1):
                lines.append(f"{index:3d}. {rule_name}")
        return "\n".join(lines)

    def _config_label(self) -> str:
        enabled = [
            name
            for name, on in (
                ("path", self.config.path),
                ("pipelining", self.config.pipelining),
                ("group-by", self.config.groupby),
                ("two-step-agg", self.config.two_step_aggregation),
            )
            if on
        ]
        return "+".join(enabled) if enabled else "built-ins only"


def compile_query(
    text: str, config: RewriteConfig | None = None, stats=None
) -> CompiledQuery:
    """Compile *text* under *config* (default: all rule families on).

    When *stats* (a :class:`~repro.stats.sampling.StatsSnapshot`) is
    given and ``config.cost`` is on, the cost-based planning phase runs
    after the rewrite fixpoint; its decisions land in the trace and the
    audit like rule firings, and the snapshot's fingerprint is kept on
    the result (it is part of the service plan-cache key).
    """
    if config is None:
        config = RewriteConfig.all()
    ast = parse_query(text)
    naive_plan = translate(ast)
    trace: list[tuple[str, LogicalPlan]] = []
    audit = RewriteAudit()
    plan = rule_pipeline(config).rewrite(naive_plan, trace=trace, audit=audit)
    stats_fingerprint = None
    if config.cost and stats is not None and stats:
        from repro.stats.cost import apply_cost_planning

        plan = apply_cost_planning(plan, stats, audit=audit, trace=trace)
        stats_fingerprint = stats.fingerprint()
    return CompiledQuery(
        text=text,
        ast=ast,
        naive_plan=naive_plan,
        plan=plan,
        config=config,
        trace=trace,
        audit=audit,
        stats_fingerprint=stats_fingerprint,
    )
