"""An AsterixDB-like engine.

AsterixDB shares VXQuery's infrastructure (Hyracks + Algebricks), so
this baseline shares this package's runtime — with the one difference
the paper identifies (Section 5.3): it **lacks the JSONiq pipelining
rules**.  Where VXQuery's projecting DATASCAN streams matched sub-items
out of the raw text, AsterixDB "waits to first gather all the
measurements in the array before it moves them to the next stage", and
it always converts input to its internal ADM data model.

Two modes, both evaluated in the paper:

- ``external`` — queries raw files without loading, but each top-level
  document is fully materialized (parsed to an item) before navigation;
- ``load`` — a load phase converts every file to binary ADM
  (:mod:`repro.baselines.adm_codec`); queries then decode ADM instead of
  parsing JSON, which is faster per document (the paper's
  "optimized to work better for data that is already in its own data
  model") at the price of the Table 1 load times.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LoadError
from repro.algebra.rules import RewriteConfig
from repro.baselines.adm_codec import decode_items, encode_item
from repro.hyracks.executor import QueryResult
from repro.jsonlib.items import Item, sizeof_item
from repro.jsonlib.path import Path, navigate
from repro.processor import JsonProcessor


@dataclass
class AdmLoadReport:
    """What an ADM load phase did."""

    documents: int = 0
    input_bytes: int = 0
    stored_bytes: int = 0
    seconds: float = 0.0


class MaterializingSource:
    """A DataSource wrapper that defeats projection pushdown.

    ``scan_collection`` materializes each top-level document completely
    and only then navigates the path — exactly the behaviour of a system
    without the pipelining rules.  Everything else delegates.
    """

    def __init__(self, inner, memory=None):
        self._inner = inner
        self.memory = memory

    def partition_count(self, name: str) -> int:
        return self._inner.partition_count(name)

    def read_document(self, uri: str) -> Item:
        return self._inner.read_document(uri)

    def read_collection(self, name: str, partition: int | None = None):
        return self._inner.read_collection(name, partition)

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        # An empty path makes the inner scan yield whole top-level
        # documents, fully built — the materialization the pipelining
        # rules avoid.
        for document in self._inner.scan_collection(name, Path(), partition):
            if self.memory is not None:
                n_bytes = sizeof_item(document)
                self.memory.allocate(n_bytes)
                yield from navigate(document, path)
                self.memory.release(n_bytes)
            else:
                yield from navigate(document, path)


class AdmStorage:
    """Binary ADM storage: one ``.adm`` file per partition."""

    def __init__(self, directory: str):
        self.directory = directory
        self._partitions: dict[str, list[str]] = {}

    def store(self, name: str, source, memory=None) -> AdmLoadReport:
        """Convert *source*'s collection *name* into ADM partition files."""
        started = time.perf_counter()
        report = AdmLoadReport()
        key = name.strip("/")
        target_dir = os.path.join(self.directory, key)
        os.makedirs(target_dir, exist_ok=True)
        paths = []
        for partition in range(source.partition_count(name)):
            buffer = bytearray()
            for document in source.scan_collection(name, Path(), partition):
                encode_item(document, buffer)
                report.documents += 1
            path = os.path.join(target_dir, f"partition{partition}.adm")
            with open(path, "wb") as handle:
                handle.write(buffer)
            report.stored_bytes += len(buffer)
            paths.append(path)
        self._partitions[key] = paths
        report.seconds = time.perf_counter() - started
        return report

    # -- DataSource over ADM files ------------------------------------------------

    def partition_count(self, name: str) -> int:
        return len(self._paths(name))

    def stored_bytes(self, name: str) -> int:
        """On-disk size of the converted collection (Figure 18b)."""
        return sum(os.path.getsize(path) for path in self._paths(name))

    def read_document(self, uri: str) -> Item:
        raise LoadError("ADM storage holds collections, not documents")

    def read_collection(self, name: str, partition: int | None = None):
        items: list[Item] = []
        paths = (
            self._paths(name)
            if partition is None
            else [self._paths(name)[partition]]
        )
        for path in paths:
            with open(path, "rb") as handle:
                items.extend(decode_items(handle.read()))
        return items

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        adm_paths = (
            self._paths(name)
            if partition is None
            else [self._paths(name)[partition]]
        )
        for adm_path in adm_paths:
            with open(adm_path, "rb") as handle:
                buffer = handle.read()
            for document in decode_items(buffer):
                yield from navigate(document, path)

    def _paths(self, name: str) -> list[str]:
        key = name.strip("/")
        if key not in self._partitions:
            raise LoadError(f"collection {name!r} has not been loaded into ADM")
        return self._partitions[key]


class AdmEngine:
    """The AsterixDB-like engine: VXQuery's runtime minus pipelining.

    Parameters
    ----------
    source:
        The raw-JSON data source (catalog or in-memory).
    mode:
        ``"external"`` queries raw files directly; ``"load"`` requires a
        :meth:`load` call first and then queries binary ADM.
    storage_dir:
        Where ``load`` mode writes its ``.adm`` files.
    """

    def __init__(self, source, mode: str = "external", storage_dir: str | None = None):
        if mode not in ("external", "load"):
            raise LoadError(f"unknown AdmEngine mode {mode!r}")
        self.mode = mode
        self._raw_source = source
        self._storage = None
        if mode == "load":
            if storage_dir is None:
                raise LoadError("load mode requires a storage_dir")
            self._storage = AdmStorage(storage_dir)
            self._processor = None
        else:
            self._processor = JsonProcessor(
                source=MaterializingSource(source),
                rewrite=RewriteConfig.all(),
            )

    def load(self, name: str) -> AdmLoadReport:
        """Convert collection *name* to ADM (load mode only)."""
        if self._storage is None:
            raise LoadError("external mode has no load phase")
        report = self._storage.store(name, self._raw_source)
        self._processor = JsonProcessor(
            source=MaterializingSource(self._storage),
            rewrite=RewriteConfig.all(),
        )
        return report

    def execute(self, query: str) -> QueryResult:
        """Run a JSONiq query (after :meth:`load` in load mode)."""
        if self._processor is None:
            raise LoadError("call load() before querying in load mode")
        return self._processor.execute(query)

    def stored_bytes(self, name: str) -> int:
        """Converted collection size (load mode)."""
        if self._storage is None:
            raise LoadError("external mode stores nothing")
        return self._storage.stored_bytes(name)
