"""A binary codec for the ADM-like internal data model.

AsterixDB converts external JSON into its internal binary ADM format on
load.  This module provides the equivalent: a compact tag-length binary
encoding of JSON items, written from scratch.  The AsterixDB(load)
baseline serializes collections into ``.adm`` files with it, and its
query path decodes them instead of re-parsing JSON text — which is why
the load-mode engine queries faster than the external-data mode, as in
the paper's comparison.

Format (little-endian):

=====  =========================================
tag    payload
=====  =========================================
0x00   null
0x01   false
0x02   true
0x03   int64
0x04   float64
0x05   string: u32 byte length + UTF-8 bytes
0x06   array: u32 count + encoded members
0x07   object: u32 count + (string key + item)*
0x08   bigint: string payload (ints beyond 64 bits)
=====  =========================================
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import ReproError
from repro.jsonlib.items import Item

_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STRING = 0x05
_TAG_ARRAY = 0x06
_TAG_OBJECT = 0x07
_TAG_BIGINT = 0x08

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_pack_i64 = struct.Struct("<q").pack
_pack_f64 = struct.Struct("<d").pack
_pack_u32 = struct.Struct("<I").pack
_unpack_i64 = struct.Struct("<q").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from
_unpack_u32 = struct.Struct("<I").unpack_from


class AdmDecodeError(ReproError):
    """Corrupt or truncated ADM data."""


def _encode_string(text: str, out: bytearray) -> None:
    data = text.encode("utf-8")
    out += _pack_u32(len(data))
    out += data


def encode_item(item: Item, out: bytearray) -> None:
    """Append the encoding of *item* to *out*."""
    if item is None:
        out.append(_TAG_NULL)
    elif item is True:
        out.append(_TAG_TRUE)
    elif item is False:
        out.append(_TAG_FALSE)
    elif isinstance(item, int):
        if _INT64_MIN <= item <= _INT64_MAX:
            out.append(_TAG_INT)
            out += _pack_i64(item)
        else:
            out.append(_TAG_BIGINT)
            _encode_string(str(item), out)
    elif isinstance(item, float):
        out.append(_TAG_FLOAT)
        out += _pack_f64(item)
    elif isinstance(item, str):
        out.append(_TAG_STRING)
        _encode_string(item, out)
    elif isinstance(item, list):
        out.append(_TAG_ARRAY)
        out += _pack_u32(len(item))
        for member in item:
            encode_item(member, out)
    elif isinstance(item, dict):
        out.append(_TAG_OBJECT)
        out += _pack_u32(len(item))
        for key, value in item.items():
            _encode_string(key, out)
            encode_item(value, out)
    else:
        raise ReproError(f"cannot encode {type(item).__name__} as ADM")


def encode_items(items) -> bytes:
    """Encode a sequence of items into one contiguous buffer."""
    out = bytearray()
    for item in items:
        encode_item(item, out)
    return bytes(out)


def _decode_string(buffer, offset: int) -> tuple[str, int]:
    (length,) = _unpack_u32(buffer, offset)
    offset += 4
    end = offset + length
    if end > len(buffer):
        raise AdmDecodeError("truncated string payload")
    return bytes(buffer[offset:end]).decode("utf-8"), end


def decode_item(buffer, offset: int = 0) -> tuple[Item, int]:
    """Decode one item starting at *offset*; returns (item, next offset)."""
    if offset >= len(buffer):
        raise AdmDecodeError("unexpected end of ADM data")
    tag = buffer[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        return _unpack_i64(buffer, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        return _unpack_f64(buffer, offset)[0], offset + 8
    if tag == _TAG_STRING:
        return _decode_string(buffer, offset)
    if tag == _TAG_BIGINT:
        text, offset = _decode_string(buffer, offset)
        return int(text), offset
    if tag == _TAG_ARRAY:
        (count,) = _unpack_u32(buffer, offset)
        offset += 4
        members = []
        for _ in range(count):
            member, offset = decode_item(buffer, offset)
            members.append(member)
        return members, offset
    if tag == _TAG_OBJECT:
        (count,) = _unpack_u32(buffer, offset)
        offset += 4
        obj = {}
        for _ in range(count):
            key, offset = _decode_string(buffer, offset)
            value, offset = decode_item(buffer, offset)
            obj[key] = value
        return obj, offset
    raise AdmDecodeError(f"unknown ADM tag 0x{tag:02x}")


def decode_items(buffer) -> Iterator[Item]:
    """Decode every item in *buffer*, in order."""
    offset = 0
    view = memoryview(buffer)
    while offset < len(view):
        item, offset = decode_item(view, offset)
        yield item
