"""A SparkSQL-like in-memory engine.

Reproduces the behaviours the paper measures against SparkSQL
(Section 5.3, Figure 19, Tables 2-3):

- a **load phase** that parses every JSON file and converts it to an
  internal row table (schema inference by flattening), whose cost grows
  with input size (Table 2);
- **everything lives in memory** with a JVM-like per-row overhead, so
  memory use is a large multiple of the input size (Table 3) and inputs
  beyond the memory budget simply cannot be loaded (the paper could not
  run Spark past ~1-2 GB on a 16 GB node);
- query execution over loaded rows is fast — Spark wins on small inputs
  when its load time is ignored, and loses once loading is counted or
  data grows (the Figure 19 crossover).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import LoadError, MemoryBudgetExceededError
from repro.hyracks.memory import MemoryTracker
from repro.jsonlib.items import Item, sizeof_item
from repro.jsonlib.parser import parse_many

# JVM object headers, boxed fields, string interning misses... the paper's
# Table 3 shows Spark holding ~7-14x the raw input size; the flattened
# Python dict rows below land in that band with this factor applied.
_ROW_OVERHEAD_FACTOR = 2.5


@dataclass
class SqlLoadReport:
    """What a load did: rows, bytes held in memory, seconds."""

    rows: int = 0
    input_bytes: int = 0
    memory_bytes: int = 0
    seconds: float = 0.0


@dataclass
class _Table:
    rows: list[dict] = field(default_factory=list)
    memory_bytes: int = 0


def flatten_record(record: Item, prefix: str = "") -> Iterable[dict]:
    """Schema-inferring flattening of one JSON value into flat rows.

    Nested objects contribute dotted columns; a nested *array of
    objects* is exploded (one output row per element, recursively) — the
    way the paper's sensor files become a measurements table.  Multiple
    exploding fields combine as a cartesian product, like chained
    ``explode`` calls.
    """
    if isinstance(record, list):
        for element in record:
            yield from flatten_record(element, prefix)
        return
    if not isinstance(record, dict):
        yield {prefix or "value": record}
        return
    # Each field contributes a list of row fragments; the record's rows
    # are the cartesian product of the fragments, merged.
    fragment_lists: list[list[dict]] = []
    for key, value in record.items():
        column = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            fragment_lists.append(list(flatten_record(value, column)))
        elif isinstance(value, list) and value and isinstance(value[0], dict):
            fragments: list[dict] = []
            for element in value:
                fragments.extend(flatten_record(element, column))
            fragment_lists.append(fragments)
        else:
            fragment_lists.append([{column: value}])
    rows = [{}]
    for fragments in fragment_lists:
        if not fragments:
            continue
        if len(fragments) == 1:
            for row in rows:
                row.update(fragments[0])
            continue
        rows = [
            {**row, **fragment} for row in rows for fragment in fragments
        ]
    yield from rows


class InMemorySQLEngine:
    """Load-then-query engine over flattened in-memory rows."""

    def __init__(self, memory_budget_bytes: int | None = None):
        self.memory = MemoryTracker(memory_budget_bytes, context="sql engine")
        self._tables: dict[str, _Table] = {}

    # -- load phase ---------------------------------------------------------------

    def load_texts(self, name: str, texts: Iterable[str]) -> SqlLoadReport:
        """Parse and flatten JSON texts into table *name*.

        Raises :class:`MemoryBudgetExceededError` when the table would
        not fit in the configured budget — the input then cannot be
        queried at all, matching the paper's experience with large files.
        """
        started = time.perf_counter()
        table = self._tables.setdefault(name, _Table())
        report = SqlLoadReport()
        for text in texts:
            report.input_bytes += len(text)
            for value in parse_many(text):
                for row in flatten_record(value):
                    n_bytes = int(sizeof_item(row) * _ROW_OVERHEAD_FACTOR)
                    try:
                        self.memory.allocate(n_bytes)
                    except MemoryBudgetExceededError:
                        # A failed load leaves nothing usable behind;
                        # the tracker charged the failing row already.
                        self.memory.release(n_bytes)
                        self.drop(name)
                        raise
                    table.rows.append(row)
                    table.memory_bytes += n_bytes
                    report.rows += 1
        report.memory_bytes = table.memory_bytes
        report.seconds = time.perf_counter() - started
        return report

    def load_files(self, name: str, paths: Iterable[str]) -> SqlLoadReport:
        """Load JSON files from disk (see :meth:`load_texts`)."""

        def texts():
            for path in paths:
                with open(path, "r", encoding="utf-8") as handle:
                    yield handle.read()

        return self.load_texts(name, texts())

    def drop(self, name: str) -> None:
        """Drop a table, releasing its memory."""
        table = self._tables.pop(name, None)
        if table is not None:
            self.memory.release(table.memory_bytes)

    def memory_bytes(self, name: str) -> int:
        """Bytes the loaded table occupies (Table 3)."""
        return self._table(name).memory_bytes

    def row_count(self, name: str) -> int:
        """Number of rows in a loaded table."""
        return len(self._table(name).rows)

    def _table(self, name: str) -> _Table:
        if name not in self._tables:
            raise LoadError(f"table {name!r} has not been loaded")
        return self._tables[name]

    # -- relational operators ---------------------------------------------------------

    def select(
        self,
        name: str,
        where: Callable[[dict], bool] | None = None,
        columns: list[str] | None = None,
    ) -> list[dict]:
        """Filter + project."""
        rows = self._table(name).rows
        out = []
        for row in rows:
            if where is not None and not where(row):
                continue
            if columns is None:
                out.append(row)
            else:
                out.append({c: row.get(c) for c in columns})
        return out

    def group_count(
        self,
        name: str,
        key: Callable[[dict], object],
        where: Callable[[dict], bool] | None = None,
    ) -> dict:
        """``SELECT key, count(*) ... GROUP BY key``."""
        counts: dict = {}
        for row in self._table(name).rows:
            if where is not None and not where(row):
                continue
            group = key(row)
            counts[group] = counts.get(group, 0) + 1
        return counts

    def join_avg_difference(
        self,
        name: str,
        left_where: Callable[[dict], bool],
        right_where: Callable[[dict], bool],
        key: Callable[[dict], object],
        value_column: str = "value",
    ) -> float | None:
        """Self-join on *key*; mean of (right.value - left.value)."""
        table: dict = {}
        for row in self._table(name).rows:
            if left_where(row):
                table.setdefault(key(row), []).append(row)
        total = 0.0
        n = 0
        for row in self._table(name).rows:
            if not right_where(row):
                continue
            for match in table.get(key(row), ()):
                total += row[value_column] - match[value_column]
                n += 1
        if n == 0:
            return None
        return total / n
