"""Simulated comparison systems for the paper's evaluation.

The paper compares VXQuery against MongoDB, SparkSQL, and AsterixDB.
None of those can be bundled here, so each is replaced by a small engine
that reproduces the *behaviours the comparison measures*:

- :mod:`repro.baselines.docstore` — a MongoDB-like document store:
  load-then-query, per-document compression, a 16 MB document limit,
  unwind/project/group pipelines;
- :mod:`repro.baselines.sqlengine` — a SparkSQL-like engine: loads all
  JSON into an in-memory row table under a memory budget, then runs
  relational operators;
- :mod:`repro.baselines.adm` — an AsterixDB-like engine: shares this
  package's runtime (as AsterixDB shares Hyracks/Algebricks with
  VXQuery) but materializes each document before processing — i.e. it
  lacks exactly the JSONiq pipelining rules, which is the paper's
  explanation for the performance gap.
"""

from repro.baselines.adm import AdmEngine
from repro.baselines.docstore import DocumentStore
from repro.baselines.sqlengine import InMemorySQLEngine

__all__ = ["AdmEngine", "DocumentStore", "InMemorySQLEngine"]
