"""A MongoDB-like document store.

Reproduces the behaviours the paper measures against MongoDB:

- a mandatory **load phase** that ingests JSON files into the store's
  own representation (Tables 1 and 4 measure exactly this overhead);
- **per-document compression** — larger documents compress better, which
  drives both the space curve of Figure 18b and the query-time advantage
  at 30 measurements/array;
- a **16 MB document limit** — the naive self-join strategy groups all
  same-key documents into one document and fails (Section 5.4); the
  unwind/project workaround has to be used instead;
- pipeline-style querying: ``match`` / ``unwind`` / ``project`` /
  ``group`` stages over stored documents.

Loading splits each input file's ``root`` array into member documents
and can re-chunk ``results`` arrays to a target measurements-per-document
(the Figure 18 knob).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import DocumentTooLargeError, LoadError
from repro.baselines.adm_codec import decode_item, encode_item
from repro.jsonlib.items import Item
from repro.jsonlib.parser import parse_many

DEFAULT_DOCUMENT_LIMIT = 16 * 1024 * 1024


@dataclass
class LoadReport:
    """What a load phase did."""

    documents: int = 0
    input_bytes: int = 0
    stored_bytes: int = 0
    seconds: float = 0.0


@dataclass
class _Collection:
    blobs: list[bytes] = field(default_factory=list)
    stored_bytes: int = 0
    documents: int = 0


class DocumentStore:
    """An in-process document database with per-document compression."""

    def __init__(
        self,
        document_limit_bytes: int = DEFAULT_DOCUMENT_LIMIT,
        compression_level: int = 6,
    ):
        self.document_limit_bytes = document_limit_bytes
        self.compression_level = compression_level
        self._collections: dict[str, _Collection] = {}

    # -- load phase -------------------------------------------------------------

    def load_texts(
        self,
        name: str,
        texts: Iterable[str],
        measurements_per_document: int | None = None,
    ) -> LoadReport:
        """Load JSON texts (one per input file) into collection *name*.

        Each file's top-level values are unwrapped: a ``root`` array's
        members become individual documents (the paper's preparation
        step).  ``measurements_per_document`` re-chunks every document's
        ``results`` array to that many measurements per document.
        """
        started = time.perf_counter()
        collection = self._collections.setdefault(name, _Collection())
        report = LoadReport()
        for text in texts:
            report.input_bytes += len(text)
            for document in self._documents_of(text, measurements_per_document):
                self._store(collection, document, report)
        report.seconds = time.perf_counter() - started
        report.documents = collection.documents
        report.stored_bytes = collection.stored_bytes
        return report

    def load_files(
        self,
        name: str,
        paths: Iterable[str],
        measurements_per_document: int | None = None,
    ) -> LoadReport:
        """Load JSON files from disk (see :meth:`load_texts`)."""

        def texts():
            for path in paths:
                with open(path, "r", encoding="utf-8") as handle:
                    yield handle.read()

        return self.load_texts(name, texts(), measurements_per_document)

    def _documents_of(
        self, text: str, measurements_per_document: int | None
    ) -> Iterator[Item]:
        for value in parse_many(text):
            if isinstance(value, dict) and isinstance(value.get("root"), list):
                members: Iterable[Item] = value["root"]
            else:
                members = [value]
            for member in members:
                if measurements_per_document is None:
                    yield member
                    continue
                yield from self._rechunk(member, measurements_per_document)

    @staticmethod
    def _rechunk(document: Item, measurements: int) -> Iterator[Item]:
        """Split a document's ``results`` array into fixed-size chunks."""
        if not (
            isinstance(document, dict)
            and isinstance(document.get("results"), list)
        ):
            yield document
            return
        results = document["results"]
        if not results:
            yield document
            return
        for start in range(0, len(results), measurements):
            chunk = results[start : start + measurements]
            yield {"metadata": {"count": len(chunk)}, "results": chunk}

    def _store(
        self, collection: _Collection, document: Item, report: LoadReport
    ) -> None:
        encoded = bytearray()
        encode_item(document, encoded)
        if len(encoded) > self.document_limit_bytes:
            raise DocumentTooLargeError(len(encoded), self.document_limit_bytes)
        blob = zlib.compress(bytes(encoded), self.compression_level)
        collection.blobs.append(blob)
        collection.stored_bytes += len(blob)
        collection.documents += 1
        report.documents += 1

    # -- introspection ------------------------------------------------------------

    def stored_bytes(self, name: str) -> int:
        """Compressed on-store size of a collection (Figure 18b)."""
        return self._get(name).stored_bytes

    def document_count(self, name: str) -> int:
        """Number of stored documents."""
        return self._get(name).documents

    def drop(self, name: str) -> None:
        """Remove a collection."""
        self._collections.pop(name, None)

    def _get(self, name: str) -> _Collection:
        if name not in self._collections:
            raise LoadError(f"collection {name!r} has not been loaded")
        return self._collections[name]

    # -- querying -------------------------------------------------------------------

    def scan(self, name: str) -> Iterator[Item]:
        """Decompress and decode every document (a BSON-style scan)."""
        for blob in self._get(name).blobs:
            document, _ = decode_item(zlib.decompress(blob))
            yield document

    def find(self, name: str, predicate: Callable[[Item], bool]) -> list[Item]:
        """Documents matching *predicate*."""
        return [doc for doc in self.scan(name) if predicate(doc)]

    def unwind(self, name: str, key: str) -> Iterator[Item]:
        """MongoDB's ``$unwind``: one output per member of ``doc[key]``."""
        for document in self.scan(name):
            members = document.get(key) if isinstance(document, dict) else None
            if isinstance(members, list):
                for member in members:
                    yield member

    def aggregate_count(
        self,
        rows: Iterable[Item],
        key: Callable[[Item], object],
    ) -> dict:
        """``$group`` with a count accumulator."""
        counts: dict = {}
        for row in rows:
            group = key(row)
            counts[group] = counts.get(group, 0) + 1
        return counts

    def group_documents(
        self,
        rows: Iterable[Item],
        key: Callable[[Item], object],
    ) -> dict:
        """Group rows into per-key documents, enforcing the size limit.

        This is the *naive* self-join strategy of Section 5.4: pushing
        all same-key rows into one document.  On realistic data the
        grouped documents blow through the 16 MB limit and the operation
        fails with :class:`DocumentTooLargeError`.
        """
        groups: dict = {}
        sizes: dict = {}
        for row in rows:
            group_key = key(row)
            bucket = groups.setdefault(group_key, [])
            bucket.append(row)
            encoded = bytearray()
            encode_item(row, encoded)
            sizes[group_key] = sizes.get(group_key, 8) + len(encoded)
            if sizes[group_key] > self.document_limit_bytes:
                raise DocumentTooLargeError(
                    sizes[group_key], self.document_limit_bytes
                )
        return groups

    def join_projected(
        self,
        left_rows: Iterable[Item],
        right_rows: Iterable[Item],
        key: Callable[[Item], object],
    ) -> Iterator[tuple[Item, Item]]:
        """The unwind/project workaround join: hash join of row streams."""
        table: dict = {}
        for row in right_rows:
            table.setdefault(key(row), []).append(row)
        for row in left_rows:
            for match in table.get(key(row), ()):
                yield row, match
