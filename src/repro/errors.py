"""Exception hierarchy for the repro JSON query processor.

Every error raised on a public code path derives from :class:`ReproError`
so that callers can catch a single base class.  Sub-hierarchies mirror the
layers of the system: parsing JSON text, parsing JSONiq query text,
translating and rewriting plans, and executing jobs on the runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class _PickleByInitArgs:
    """Mixin for exceptions whose ``__init__`` composes the message.

    The default exception pickling reconstructs via ``Cls(*self.args)``,
    but ``args`` holds the *composed* message, not the original
    constructor arguments — so a class like
    ``FileScanError(file_path, cause)`` would fail to unpickle (or
    double-compose its message).  Classes using this mixin record their
    raw constructor arguments in ``self._init_args`` and round-trip
    through them, which is what lets the process execution backend ship
    errors across worker boundaries.
    """

    def __reduce__(self):
        return (type(self), self._init_args)


# ---------------------------------------------------------------------------
# JSON data layer
# ---------------------------------------------------------------------------


class JsonError(ReproError):
    """Base class for errors in the JSON data substrate."""


class JsonSyntaxError(_PickleByInitArgs, JsonError):
    """Malformed JSON text.

    Attributes
    ----------
    offset:
        Character offset into the input at which the error was detected.
    """

    def __init__(self, message: str, offset: int | None = None):
        self._init_args = (message, offset)
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class JsonIncompleteError(JsonSyntaxError):
    """The JSON text ended in the middle of a value.

    Raised only when a parse is *finished* while the parser still expects
    more input; feeding additional chunks is the normal way to continue.
    """


class ItemTypeError(JsonError):
    """A JSONiq navigation or function was applied to the wrong item type."""


class FileScanError(_PickleByInitArgs, JsonError):
    """A JSON file could not be scanned.

    Wraps the underlying :class:`JsonError` (available as ``__cause__``)
    and carries the path of the offending file so partition-level errors
    can say *which* file broke.
    """

    def __init__(self, file_path: str, cause: Exception):
        self._init_args = (file_path, cause)
        super().__init__(f"error scanning {file_path!r}: {cause}")
        self.file_path = file_path


# ---------------------------------------------------------------------------
# Query language layer
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for errors in the JSONiq frontend."""


class LexerError(_PickleByInitArgs, QueryError):
    """Query text could not be tokenized."""

    def __init__(self, message: str, position: int | None = None):
        self._init_args = (message, position)
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class ParseError(_PickleByInitArgs, QueryError):
    """Query token stream did not match the grammar."""

    def __init__(self, message: str, position: int | None = None):
        self._init_args = (message, position)
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class TranslationError(QueryError):
    """The AST could not be translated into a logical plan."""


class UnknownFunctionError(_PickleByInitArgs, QueryError):
    """A query referenced a function that is not in the builtin library."""

    def __init__(self, name: str, arity: int):
        self._init_args = (name, arity)
        super().__init__(f"unknown function: {name}#{arity}")
        self.name = name
        self.arity = arity


class UnboundVariableError(_PickleByInitArgs, QueryError):
    """A query referenced a variable that is not in scope."""

    def __init__(self, name: str):
        self._init_args = (name,)
        super().__init__(f"unbound variable: ${name}")
        self.name = name


# ---------------------------------------------------------------------------
# Algebra / rewrite layer
# ---------------------------------------------------------------------------


class PlanError(ReproError):
    """Base class for logical-plan construction and rewrite errors."""


class RewriteError(PlanError):
    """A rewrite rule produced an inconsistent plan."""


# ---------------------------------------------------------------------------
# Runtime layer
# ---------------------------------------------------------------------------


class RuntimeExecutionError(ReproError):
    """Base class for errors raised while executing a physical job."""


class FrameOverflowError(_PickleByInitArgs, RuntimeExecutionError):
    """A single tuple exceeded the fixed frame size.

    Mirrors Hyracks' dataflow frame size restriction discussed in
    Section 4.2 of the paper.
    """

    def __init__(self, tuple_bytes: int, frame_bytes: int):
        self._init_args = (tuple_bytes, frame_bytes)
        super().__init__(
            f"tuple of {tuple_bytes} bytes does not fit in a "
            f"{frame_bytes}-byte frame"
        )
        self.tuple_bytes = tuple_bytes
        self.frame_bytes = frame_bytes


class MemoryBudgetExceededError(_PickleByInitArgs, RuntimeExecutionError):
    """An operator (or engine) exceeded its memory budget."""

    def __init__(self, used_bytes: int, budget_bytes: int, context: str = ""):
        self._init_args = (used_bytes, budget_bytes, context)
        where = f" in {context}" if context else ""
        super().__init__(
            f"memory budget exceeded{where}: used {used_bytes} bytes, "
            f"budget {budget_bytes} bytes"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes


class TypeCheckError(RuntimeExecutionError):
    """A ``treat`` assertion failed at runtime."""


class SpillError(_PickleByInitArgs, RuntimeExecutionError):
    """A spill run file could not be written or read back.

    Wraps the underlying I/O (or injected) error; retryable, because a
    fresh partition attempt re-derives every run file from the source
    data.
    """

    retryable = True

    def __init__(self, message: str):
        self._init_args = (message,)
        super().__init__(message)


class CacheIOError(_PickleByInitArgs, RuntimeExecutionError):
    """A segment-cache read or write hit an I/O failure (ENOSPC, EIO).

    The cache layer itself degrades on I/O errors (a failed store is
    skipped, a failed load is a miss, repeated failures turn the cache
    off for the rest of the process) — this class exists so the *event*
    travels as a structured, picklable error object in degradation
    reports and retry classification rather than a raw :class:`OSError`.
    Retryable: the cache is an accelerator, so a fresh execution that
    bypasses (or repairs) the cache can succeed.
    """

    retryable = True

    def __init__(self, operation: str, path: str, detail: str):
        self._init_args = (operation, path, detail)
        super().__init__(
            f"segment cache {operation} failed for {path!r}: {detail}"
        )
        self.operation = operation
        self.path = path
        self.detail = detail


class SlotFailureError(_PickleByInitArgs, RuntimeExecutionError):
    """A service slot worker died while holding a request.

    Raised internally by :class:`~repro.service.QueryService` when a
    slot's worker thread crashes (or an injected slot death fires) with
    a query in flight.  Retryable: queries are read-only, so the request
    can be re-executed on a fresh slot — and the supervisor replaces the
    dead slot's backend before anything else runs there.
    """

    retryable = True

    def __init__(self, slot: int, detail: str = ""):
        self._init_args = (slot, detail)
        message = f"service slot {slot} died while executing this query"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.slot = slot
        self.detail = detail


class QueryTimeoutError(_PickleByInitArgs, RuntimeExecutionError):
    """A query ran past its deadline.

    Not retryable and never skippable: the deadline is query-global, so
    the partition policies do not apply — the whole query unwinds, with
    every spill file and memory tracker released on the way out.
    """

    retryable = False

    def __init__(self, deadline_seconds: float, elapsed_seconds: float):
        self._init_args = (deadline_seconds, elapsed_seconds)
        super().__init__(
            f"query exceeded its {deadline_seconds:g}s deadline "
            f"(ran {elapsed_seconds:.3f}s)"
        )
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class QueryCancelledError(_PickleByInitArgs, RuntimeExecutionError):
    """The query's cancellation token was triggered mid-execution.

    Like :class:`QueryTimeoutError`, cancellation is query-global —
    retry and skip policies do not apply.
    """

    retryable = False

    def __init__(self, reason: str = ""):
        self._init_args = (reason,)
        message = "query cancelled"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.reason = reason


class PartitionExecutionError(_PickleByInitArgs, RuntimeExecutionError):
    """A partition of a partitioned job failed.

    Wraps the underlying error (available as ``__cause__``) and carries
    the collection name(s) being scanned, the partition index, the file
    path (when the cause identifies one), and how many attempts were
    made before giving up.
    """

    def __init__(
        self,
        partition: int,
        cause: Exception,
        collections: tuple[str, ...] = (),
        file_path: str | None = None,
        attempts: int = 1,
    ):
        self._init_args = (partition, cause, collections, file_path, attempts)
        where = f"partition {partition}"
        if collections:
            where += " of collection " + ", ".join(
                repr(name) for name in collections
            )
        if file_path is not None:
            where += f" (file {file_path!r})"
        tries = f" after {attempts} attempt(s)" if attempts > 1 else ""
        super().__init__(f"{where} failed{tries}: {cause}")
        self.partition = partition
        self.collections = tuple(collections)
        self.file_path = file_path
        self.attempts = attempts
        # Set in __init__ (not via ``raise ... from``) so the chain
        # survives a pickle round-trip through a process-pool worker:
        # __reduce__ re-runs __init__, which restores __cause__ here.
        self.__cause__ = cause


class BackendError(_PickleByInitArgs, RuntimeExecutionError):
    """A backend could not execute (or ship) a partition work unit.

    Carries the partition ids that failed and how many attempts each
    consumed (empty when the failure happened before any partition ran,
    e.g. an unpicklable work unit).  ``cause`` is restored as
    ``__cause__`` inside ``__init__`` so the chain survives the
    ``_PickleByInitArgs`` round-trip through a process-pool worker.
    """

    def __init__(
        self,
        message: str,
        partitions: tuple[int, ...] = (),
        attempts: tuple[int, ...] = (),
        cause: Exception | None = None,
    ):
        self._init_args = (message, tuple(partitions), tuple(attempts), cause)
        super().__init__(message)
        self.partitions = tuple(partitions)
        self.attempts = tuple(attempts)
        if cause is not None:
            self.__cause__ = cause


class WorkerCrashError(_PickleByInitArgs, RuntimeExecutionError):
    """A worker died (for real or by injection) while executing a partition.

    Under the process backend an injected kill calls ``os._exit`` and
    the coordinator observes ``BrokenProcessPool``; under the thread and
    sequential backends the same fault raises this error instead, so the
    recovery layer sees an identical signal on every backend.  Not
    retryable by the *partition* policies — worker loss is handled by
    the recovery layer, not by the in-worker retry loop.
    """

    retryable = False

    def __init__(self, partition: int, attempt: int, message: str = ""):
        self._init_args = (partition, attempt, message)
        text = f"worker executing partition {partition} died (attempt {attempt})"
        if message:
            text += f": {message}"
        super().__init__(text)
        self.partition = partition
        self.attempt = attempt
        self.detail = message


class RecoveryExhaustedError(BackendError):
    """A partition kept killing its worker until the attempt budget ran out.

    The recovery layer reschedules a crashed partition up to
    ``RecoveryPolicy.max_unit_attempts`` times; a deterministically
    crashing partition escalates here instead of looping forever.
    """

    def __init__(
        self,
        partitions: tuple[int, ...],
        attempts: tuple[int, ...],
        backend: str = "",
        cause: Exception | None = None,
    ):
        partitions = tuple(partitions)
        attempts = tuple(attempts)
        where = f" on the {backend} backend" if backend else ""
        detail = ", ".join(
            f"partition {p} ({a} attempt(s))"
            for p, a in zip(partitions, attempts)
        )
        super().__init__(
            f"worker recovery exhausted{where}: {detail or 'no partitions'}",
            partitions=partitions,
            attempts=attempts,
            cause=cause,
        )
        self._init_args = (partitions, attempts, backend, cause)
        self.backend = backend


class ProcessorClosedError(RuntimeExecutionError):
    """A query was issued on a closed processor or executor.

    ``close()`` releases the backend worker pools for good; executing
    afterwards used to silently re-create them (or die with an opaque
    pool error mid-flight).  A closed processor now refuses new work
    with this error instead — build a new :class:`~repro.JsonProcessor`
    (or keep the old one open) to keep querying.
    """

    def __init__(self, what: str = "processor"):
        super().__init__(
            f"this {what} is closed; close() released its worker pools, "
            "so it cannot execute further queries — create a new one"
        )


class AdmissionError(_PickleByInitArgs, ReproError):
    """A query submission was rejected by service admission control.

    Raised synchronously by :meth:`~repro.service.QueryService.submit`
    — an over-quota submission never enters the queue, so it cannot
    crash or starve queries that were already admitted.  ``reason`` is
    machine-readable:

    - ``"closed"`` — the service is shut down;
    - ``"tenant-quota"`` — the tenant is at its admitted-query limit
      (``max_concurrent + max_queued`` in flight);
    - ``"service-queue"`` — the service-wide admission queue is full;
    - ``"memory-quota"`` — the request asked for more memory than the
      tenant's budget allows;
    - ``"deadline-quota"`` — the request asked for a longer deadline
      than the tenant's ceiling allows;
    - ``"predicted-timeout"`` — load shedding: the predicted queue wait
      (mean recent query duration × backlog ÷ live slots, measured on
      the service's injectable clock) already exceeds the request's
      deadline, so admitting it could only produce a timeout;
    - ``"circuit-open"`` — the tenant's circuit breaker is open after
      ``circuit_failure_threshold`` consecutive failures and its
      cooldown has not elapsed (one probe is admitted once it has);
    - ``"no-slots"`` — every slot worker exhausted its restart budget,
      so no live slot exists to execute the query.
    """

    def __init__(
        self,
        reason: str,
        tenant: str,
        message: str,
        limit=None,
        requested=None,
    ):
        self._init_args = (reason, tenant, message, limit, requested)
        super().__init__(
            f"admission rejected for tenant {tenant!r} [{reason}]: {message}"
        )
        self.reason = reason
        self.tenant = tenant
        self.limit = limit
        self.requested = requested


# ---------------------------------------------------------------------------
# Baseline engines
# ---------------------------------------------------------------------------


class BaselineError(ReproError):
    """Base class for errors raised by the simulated comparison systems."""


class DocumentTooLargeError(_PickleByInitArgs, BaselineError):
    """A document exceeded the document store's size limit.

    Mirrors MongoDB's 16 MB document limit that makes the naive Q2 join
    fail in Section 5.4 of the paper.
    """

    def __init__(self, doc_bytes: int, limit_bytes: int):
        self._init_args = (doc_bytes, limit_bytes)
        super().__init__(
            f"document of {doc_bytes} bytes exceeds the "
            f"{limit_bytes}-byte document limit"
        )
        self.doc_bytes = doc_bytes
        self.limit_bytes = limit_bytes


class LoadError(BaselineError):
    """A baseline engine failed during its load phase."""
