"""Logical expression tree for the JSONiq algebra.

Expressions evaluate against a *tuple* (a mapping from variable names to
sequences) and an :class:`~repro.algebra.context.EvaluationContext`.
Every value in the algebra is a **sequence** — a Python list of items —
following the XQuery/JSONiq data model; a "scalar" is a singleton
sequence.

The node vocabulary matches what the paper's plans use:

- variable references and literals,
- **path steps**: the JSONiq *value* and *keys-or-members* navigation
  expressions of Section 3.2,
- the coercion trio ``promote`` / ``data`` / ``treat`` that the path and
  group-by rewrite rules remove,
- function calls into the builtin library (``count``, ``dateTime``, ...),
- comparison / boolean / arithmetic operators,
- ``collection`` and ``json-doc`` source expressions,
- the ``iterate`` expression used by UNNEST,
- object / array constructors.

Every node implements structural equality, a paper-style ``to_string``
used by the plan printer, and ``child_expressions`` /
``with_child_expressions`` so rewrite rules can traverse and rebuild
trees generically.
"""

from __future__ import annotations

import datetime
from typing import Iterable, Sequence as TypingSequence

from repro.errors import (
    ItemTypeError,
    TranslationError,
    TypeCheckError,
    UnboundVariableError,
    UnknownFunctionError,
)
from repro.algebra.context import EvaluationContext
from repro.jsonlib.items import Item, is_atomic, item_type_name
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    PathStep,
    ValueByIndex,
    ValueByKey,
    apply_step,
)

Tuple = dict  # variable name -> sequence (list of items)


class Expression:
    """Base class of all logical expressions."""

    __slots__ = ()

    def child_expressions(self) -> tuple["Expression", ...]:
        """The direct sub-expressions of this node."""
        raise NotImplementedError

    def with_child_expressions(
        self, children: TypingSequence["Expression"]
    ) -> "Expression":
        """Rebuild this node with new sub-expressions."""
        raise NotImplementedError

    def evaluate(self, tup: Tuple, ctx: EvaluationContext) -> list:
        """Evaluate against a tuple, returning a sequence."""
        raise NotImplementedError

    def to_string(self) -> str:
        """Paper-style rendering used by the plan printer."""
        raise NotImplementedError

    def free_variables(self) -> set[str]:
        """All variable names referenced in this subtree."""
        names: set[str] = set()
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, VariableRef):
                names.add(node.name)
            stack.extend(node.child_expressions())
        return names

    def contains(self, predicate) -> bool:
        """True if any node in this subtree satisfies *predicate*."""
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            if predicate(node):
                return True
            stack.extend(node.child_expressions())
        return False

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,))

    def _key(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_string()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class VariableRef(Expression):
    """Reference to a tuple variable, e.g. ``$x``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def child_expressions(self):
        return ()

    def with_child_expressions(self, children):
        return self

    def evaluate(self, tup, ctx):
        try:
            return tup[self.name]
        except KeyError:
            raise UnboundVariableError(self.name) from None

    def to_string(self):
        return f"${self.name}"

    def _key(self):
        return self.name


class Literal(Expression):
    """A constant sequence (usually a singleton)."""

    __slots__ = ("sequence",)

    def __init__(self, sequence: list):
        self.sequence = list(sequence)

    @classmethod
    def of(cls, *items: Item) -> "Literal":
        """Literal from items: ``Literal.of(1)`` is the singleton 1."""
        return cls(list(items))

    def child_expressions(self):
        return ()

    def with_child_expressions(self, children):
        return self

    def evaluate(self, tup, ctx):
        return self.sequence

    def to_string(self):
        if len(self.sequence) == 1:
            item = self.sequence[0]
            if isinstance(item, str):
                return f'"{item}"'
            if item is True:
                return "true"
            if item is False:
                return "false"
            if item is None:
                return "null"
            return str(item)
        inner = ", ".join(str(i) for i in self.sequence)
        return f"({inner})"

    def _key(self):
        # Lists are unhashable; compare by contents with bool identity.
        return [(type(i).__name__, i) for i in self.sequence]


TRUE_LITERAL = Literal([True])
EMPTY_LITERAL = Literal([])


# ---------------------------------------------------------------------------
# Source expressions
# ---------------------------------------------------------------------------


class CollectionExpr(Expression):
    """``collection("/name")`` — materializes the *whole* collection.

    This is the naive strategy of Figure 5: the resulting tuple holds
    every top-level item of every file.  The pipelining rules replace it
    with the streaming DATASCAN operator.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def child_expressions(self):
        return ()

    def with_child_expressions(self, children):
        return self

    def evaluate(self, tup, ctx):
        if ctx.source is None:
            raise TranslationError("no data source configured for collection()")
        items = ctx.source.read_collection(self.name, partition=ctx.partition)
        from repro.algebra.context import charge_sequence

        charge_sequence(ctx, items)
        return items

    def to_string(self):
        return f'collection("{self.name}")'

    def _key(self):
        return self.name


class JsonDocExpr(Expression):
    """``json-doc("uri")`` — materializes one document."""

    __slots__ = ("uri_expr",)

    def __init__(self, uri_expr: Expression):
        self.uri_expr = uri_expr

    def child_expressions(self):
        return (self.uri_expr,)

    def with_child_expressions(self, children):
        (uri_expr,) = children
        return JsonDocExpr(uri_expr)

    def evaluate(self, tup, ctx):
        if ctx.source is None:
            raise TranslationError("no data source configured for json-doc()")
        uris = self.uri_expr.evaluate(tup, ctx)
        items = [ctx.source.read_document(uri) for uri in uris]
        from repro.algebra.context import charge_sequence

        charge_sequence(ctx, items)
        return items

    def to_string(self):
        return f"json-doc({self.uri_expr.to_string()})"

    def _key(self):
        return self.uri_expr


# ---------------------------------------------------------------------------
# Navigation
# ---------------------------------------------------------------------------


class PathStepExpr(Expression):
    """One JSONiq navigation step applied to each item of the input.

    ``step`` is a :class:`ValueByKey`, :class:`ValueByIndex`, or
    :class:`KeysOrMembers`; results are concatenated across the input
    sequence (JSONiq sequence semantics).
    """

    __slots__ = ("input", "step")

    def __init__(self, input: Expression, step: PathStep):
        self.input = input
        self.step = step

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return PathStepExpr(input_expr, self.step)

    def evaluate(self, tup, ctx):
        out: list = []
        for item in self.input.evaluate(tup, ctx):
            out.extend(apply_step(item, self.step))
        return out

    def to_string(self):
        return f"{self.input.to_string()}{self.step}"

    def _key(self):
        return (self.input, self.step)

    @staticmethod
    def chain(base: Expression, path: Path | Iterable[PathStep]) -> Expression:
        """Apply every step of *path* on top of *base*."""
        expr = base
        for step in path:
            expr = PathStepExpr(expr, step)
        return expr

    def leading_path(self) -> tuple[Expression, Path]:
        """Split a nested step chain into (innermost input, path).

        ``$x("a")("b")()`` returns ``($x, ("a")("b")())`` — the shape the
        pipelining rules fold into DATASCAN's second argument.
        """
        steps: list[PathStep] = []
        node: Expression = self
        while isinstance(node, PathStepExpr):
            steps.append(node.step)
            node = node.input
        steps.reverse()
        return node, Path(steps)


# ---------------------------------------------------------------------------
# Coercions (the expressions the rewrite rules remove)
# ---------------------------------------------------------------------------

_TYPE_PREDICATES = {
    "item": lambda item: True,
    "object": lambda item: isinstance(item, dict),
    "array": lambda item: isinstance(item, list),
    "string": lambda item: isinstance(item, str),
    "number": lambda item: isinstance(item, (int, float))
    and not isinstance(item, bool),
    "boolean": lambda item: isinstance(item, bool),
    "dateTime": lambda item: isinstance(item, datetime.datetime),
}


class PromoteExpr(Expression):
    """Type promotion inserted by the translator (e.g. around json-doc args).

    At runtime it is a checked identity; the path rules remove it when the
    static type already conforms.
    """

    __slots__ = ("input", "type_name")

    def __init__(self, input: Expression, type_name: str):
        self.input = input
        self.type_name = type_name

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return PromoteExpr(input_expr, self.type_name)

    def evaluate(self, tup, ctx):
        sequence = self.input.evaluate(tup, ctx)
        predicate = _TYPE_PREDICATES.get(self.type_name)
        if predicate is not None:
            for item in sequence:
                if not predicate(item):
                    raise TypeCheckError(
                        f"cannot promote {item_type_name(item)} to {self.type_name}"
                    )
        return sequence

    def to_string(self):
        return f"promote({self.input.to_string()}, {self.type_name})"

    def _key(self):
        return (self.input, self.type_name)


class DataExpr(Expression):
    """``data(...)`` — atomization; identity on atomic items."""

    __slots__ = ("input",)

    def __init__(self, input: Expression):
        self.input = input

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return DataExpr(input_expr)

    def evaluate(self, tup, ctx):
        out = []
        for item in self.input.evaluate(tup, ctx):
            if not is_atomic(item):
                raise ItemTypeError(
                    f"cannot atomize a {item_type_name(item)} item"
                )
            out.append(item)
        return out

    def to_string(self):
        return f"data({self.input.to_string()})"

    def _key(self):
        return self.input


class TreatExpr(Expression):
    """``treat(..., type)`` — runtime type assertion.

    The group-by rules remove the treat that the translator inserts above
    the GROUP-BY's sequence aggregate (Figure 10).
    """

    __slots__ = ("input", "type_name")

    def __init__(self, input: Expression, type_name: str):
        self.input = input
        self.type_name = type_name

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return TreatExpr(input_expr, self.type_name)

    def evaluate(self, tup, ctx):
        sequence = self.input.evaluate(tup, ctx)
        predicate = _TYPE_PREDICATES.get(self.type_name)
        if predicate is None:
            raise TypeCheckError(f"unknown treat type {self.type_name!r}")
        for item in sequence:
            if not predicate(item):
                raise TypeCheckError(
                    f"treat as {self.type_name} failed on a "
                    f"{item_type_name(item)} item"
                )
        return sequence

    def to_string(self):
        return f"treat({self.input.to_string()}, {self.type_name})"

    def _key(self):
        return (self.input, self.type_name)


class IterateExpr(Expression):
    """The UNNEST ``iterate`` expression: identity over its input sequence.

    UNNEST(iterate($seq)) yields one tuple per item of ``$seq`` — the
    second half of the two-step keys-or-members evaluation that the path
    rules merge away (Figure 3 → Figure 4).
    """

    __slots__ = ("input",)

    def __init__(self, input: Expression):
        self.input = input

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return IterateExpr(input_expr)

    def evaluate(self, tup, ctx):
        return self.input.evaluate(tup, ctx)

    def to_string(self):
        return f"iterate({self.input.to_string()})"

    def _key(self):
        return self.input


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------


class FunctionCallExpr(Expression):
    """Call into the scalar builtin library, e.g. ``count(...)``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: TypingSequence[Expression]):
        self.name = name
        self.args = tuple(args)

    def child_expressions(self):
        return self.args

    def with_child_expressions(self, children):
        return FunctionCallExpr(self.name, list(children))

    def evaluate(self, tup, ctx):
        function = ctx.functions.get((self.name, len(self.args)))
        if function is None:
            raise UnknownFunctionError(self.name, len(self.args))
        values = [arg.evaluate(tup, ctx) for arg in self.args]
        return function(values)

    def to_string(self):
        rendered = ", ".join(arg.to_string() for arg in self.args)
        return f"{self.name}({rendered})"

    def _key(self):
        return (self.name, self.args)


# ---------------------------------------------------------------------------
# Boolean, comparison, arithmetic
# ---------------------------------------------------------------------------


def effective_boolean_value(sequence: list) -> bool:
    """XQuery effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if len(sequence) == 1:
        if isinstance(first, bool):
            return first
        if isinstance(first, (int, float)):
            return first != 0
        if isinstance(first, str):
            return len(first) > 0
        if first is None:
            return False
        return True  # objects, arrays, dateTimes
    if isinstance(first, (dict, list)):
        return True
    raise ItemTypeError(
        "effective boolean value of a multi-item atomic sequence"
    )


_COMPARISON_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _comparable(left: Item, right: Item) -> bool:
    """True when a value comparison between the two items is defined."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    if isinstance(left, str) and isinstance(right, str):
        return True
    if isinstance(left, datetime.datetime) and isinstance(
        right, datetime.datetime
    ):
        return True
    return left is None and right is None


class ComparisonExpr(Expression):
    """Value comparison: ``eq ne lt le gt ge``.

    Follows XQuery value-comparison semantics: the empty sequence on
    either side yields the empty sequence; multi-item operands are a type
    error; incomparable types are a type error.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISON_OPS:
            raise TranslationError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def child_expressions(self):
        return (self.left, self.right)

    def with_child_expressions(self, children):
        left, right = children
        return ComparisonExpr(self.op, left, right)

    def evaluate(self, tup, ctx):
        left = self.left.evaluate(tup, ctx)
        right = self.right.evaluate(tup, ctx)
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise ItemTypeError(
                f"value comparison {self.op!r} over a multi-item sequence"
            )
        lv, rv = left[0], right[0]
        if not _comparable(lv, rv):
            if lv is None or rv is None:
                return [False if self.op == "eq" else self.op == "ne"]
            raise ItemTypeError(
                f"cannot compare {item_type_name(lv)} with {item_type_name(rv)}"
            )
        return [_COMPARISON_OPS[self.op](lv, rv)]

    def to_string(self):
        return f"{self.left.to_string()} {self.op} {self.right.to_string()}"

    def _key(self):
        return (self.op, self.left, self.right)


class AndExpr(Expression):
    """Logical conjunction over effective boolean values."""

    __slots__ = ("operands",)

    def __init__(self, operands: TypingSequence[Expression]):
        self.operands = tuple(operands)

    def child_expressions(self):
        return self.operands

    def with_child_expressions(self, children):
        return AndExpr(list(children))

    def evaluate(self, tup, ctx):
        for operand in self.operands:
            if not effective_boolean_value(operand.evaluate(tup, ctx)):
                return [False]
        return [True]

    def to_string(self):
        return " and ".join(o.to_string() for o in self.operands)

    def _key(self):
        return self.operands

    def conjuncts(self) -> tuple[Expression, ...]:
        """Flattened conjunct list (nested ANDs folded in)."""
        out: list[Expression] = []
        for operand in self.operands:
            if isinstance(operand, AndExpr):
                out.extend(operand.conjuncts())
            else:
                out.append(operand)
        return tuple(out)


class OrExpr(Expression):
    """Logical disjunction over effective boolean values."""

    __slots__ = ("operands",)

    def __init__(self, operands: TypingSequence[Expression]):
        self.operands = tuple(operands)

    def child_expressions(self):
        return self.operands

    def with_child_expressions(self, children):
        return OrExpr(list(children))

    def evaluate(self, tup, ctx):
        for operand in self.operands:
            if effective_boolean_value(operand.evaluate(tup, ctx)):
                return [True]
        return [False]

    def to_string(self):
        return " or ".join(f"({o.to_string()})" for o in self.operands)

    def _key(self):
        return self.operands


class NotExpr(Expression):
    """``not(...)`` over the effective boolean value."""

    __slots__ = ("input",)

    def __init__(self, input: Expression):
        self.input = input

    def child_expressions(self):
        return (self.input,)

    def with_child_expressions(self, children):
        (input_expr,) = children
        return NotExpr(input_expr)

    def evaluate(self, tup, ctx):
        return [not effective_boolean_value(self.input.evaluate(tup, ctx))]

    def to_string(self):
        return f"not({self.input.to_string()})"

    def _key(self):
        return self.input


def _as_number(item: Item) -> int | float:
    if isinstance(item, bool) or not isinstance(item, (int, float)):
        raise ItemTypeError(
            f"arithmetic over a {item_type_name(item)} item"
        )
    return item


_ARITHMETIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "idiv": lambda a, b: int(a // b),
    "mod": lambda a, b: a % b,
}


class ArithmeticExpr(Expression):
    """Binary arithmetic: ``+ - * div idiv mod``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITHMETIC_OPS:
            raise TranslationError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def child_expressions(self):
        return (self.left, self.right)

    def with_child_expressions(self, children):
        left, right = children
        return ArithmeticExpr(self.op, left, right)

    def evaluate(self, tup, ctx):
        left = self.left.evaluate(tup, ctx)
        right = self.right.evaluate(tup, ctx)
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise ItemTypeError("arithmetic over a multi-item sequence")
        lv, rv = _as_number(left[0]), _as_number(right[0])
        try:
            return [_ARITHMETIC_OPS[self.op](lv, rv)]
        except ZeroDivisionError:
            raise ItemTypeError("division by zero") from None

    def to_string(self):
        return f"{self.left.to_string()} {self.op} {self.right.to_string()}"

    def _key(self):
        return (self.op, self.left, self.right)


# ---------------------------------------------------------------------------
# Constructors and sequences
# ---------------------------------------------------------------------------


def _singleton(sequence: list, what: str) -> Item:
    if len(sequence) != 1:
        raise ItemTypeError(
            f"{what} requires a singleton, got {len(sequence)} items"
        )
    return sequence[0]


class ObjectConstructorExpr(Expression):
    """JSONiq object constructor ``{ "k": expr, ... }``."""

    __slots__ = ("keys", "value_exprs")

    def __init__(self, pairs: TypingSequence[tuple[str, Expression]]):
        self.keys = tuple(key for key, _ in pairs)
        self.value_exprs = tuple(expr for _, expr in pairs)

    def child_expressions(self):
        return self.value_exprs

    def with_child_expressions(self, children):
        return ObjectConstructorExpr(list(zip(self.keys, children)))

    def evaluate(self, tup, ctx):
        obj = {}
        for key, expr in zip(self.keys, self.value_exprs):
            sequence = expr.evaluate(tup, ctx)
            obj[key] = _singleton(sequence, f'object value for key "{key}"')
        return [obj]

    def to_string(self):
        inner = ", ".join(
            f'"{k}": {v.to_string()}' for k, v in zip(self.keys, self.value_exprs)
        )
        return "{" + inner + "}"

    def _key(self):
        return (self.keys, self.value_exprs)


class ArrayConstructorExpr(Expression):
    """JSONiq array constructor ``[ expr, ... ]``.

    Member expressions contribute their whole sequences, flattened —
    ``[ (1, 2), 3 ]`` is the array ``[1, 2, 3]``.
    """

    __slots__ = ("members",)

    def __init__(self, members: TypingSequence[Expression]):
        self.members = tuple(members)

    def child_expressions(self):
        return self.members

    def with_child_expressions(self, children):
        return ArrayConstructorExpr(list(children))

    def evaluate(self, tup, ctx):
        array: list = []
        for member in self.members:
            array.extend(member.evaluate(tup, ctx))
        return [array]

    def to_string(self):
        return "[" + ", ".join(m.to_string() for m in self.members) + "]"

    def _key(self):
        return self.members


class SequenceExpr(Expression):
    """Comma sequence: concatenation of operand sequences."""

    __slots__ = ("operands",)

    def __init__(self, operands: TypingSequence[Expression]):
        self.operands = tuple(operands)

    def child_expressions(self):
        return self.operands

    def with_child_expressions(self, children):
        return SequenceExpr(list(children))

    def evaluate(self, tup, ctx):
        out: list = []
        for operand in self.operands:
            out.extend(operand.evaluate(tup, ctx))
        return out

    def to_string(self):
        return "(" + ", ".join(o.to_string() for o in self.operands) + ")"

    def _key(self):
        return self.operands


class IfExpr(Expression):
    """``if (cond) then ... else ...``."""

    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(
        self,
        condition: Expression,
        then_branch: Expression,
        else_branch: Expression,
    ):
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def child_expressions(self):
        return (self.condition, self.then_branch, self.else_branch)

    def with_child_expressions(self, children):
        condition, then_branch, else_branch = children
        return IfExpr(condition, then_branch, else_branch)

    def evaluate(self, tup, ctx):
        if effective_boolean_value(self.condition.evaluate(tup, ctx)):
            return self.then_branch.evaluate(tup, ctx)
        return self.else_branch.evaluate(tup, ctx)

    def to_string(self):
        return (
            f"if ({self.condition.to_string()}) "
            f"then {self.then_branch.to_string()} "
            f"else {self.else_branch.to_string()}"
        )

    def _key(self):
        return (self.condition, self.then_branch, self.else_branch)


# ---------------------------------------------------------------------------
# Helpers used by the rewrite rules
# ---------------------------------------------------------------------------


def value_by_key(input: Expression, key: str) -> PathStepExpr:
    """Shorthand for the paper's value expression ``input("key")``."""
    return PathStepExpr(input, ValueByKey(key))


def keys_or_members(input: Expression) -> PathStepExpr:
    """Shorthand for the paper's keys-or-members expression ``input()``."""
    return PathStepExpr(input, KeysOrMembers())


def value_by_index(input: Expression, index: int) -> PathStepExpr:
    """Shorthand for the positional value expression ``input(i)``."""
    return PathStepExpr(input, ValueByIndex(index))
