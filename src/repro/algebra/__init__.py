"""Algebricks substrate: logical expressions, operators, plans, rewrite rules.

This package mirrors the Algebricks layer of the paper's architecture
(Section 3): a language-agnostic logical query algebra plus a rewrite-rule
framework.  The language-specific pieces (the JSONiq rewrite rules of
Section 4) live in :mod:`repro.algebra.rules`.
"""

from repro.algebra.expressions import Expression
from repro.algebra.operators import Operator
from repro.algebra.plan import LogicalPlan

__all__ = ["Expression", "LogicalPlan", "Operator"]
