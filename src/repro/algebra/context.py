"""Evaluation context shared by expressions and physical operators.

The context carries everything an expression may need beyond the current
tuple: the scalar-function library, the data-source resolver that turns
collection/document names into items, and an optional memory tracker that
materializing evaluations charge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol

from repro.jsonlib.items import Item
from repro.jsonlib.path import Path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hyracks.memory import MemoryTracker


class DataSource(Protocol):
    """Resolves collection and document names to JSON items.

    Implementations: :class:`repro.data.catalog.CollectionCatalog` for real
    partitioned directories, and in-memory fakes in the tests.
    """

    def read_document(self, uri: str) -> Item:
        """Materialize the single JSON document at *uri*."""

    def read_collection(self, name: str, partition: int | None = None) -> list[Item]:
        """Materialize every top-level item of a collection (one partition,
        or all partitions when *partition* is None)."""

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        """Stream the items of a collection projected through *path*."""

    def partition_count(self, name: str) -> int:
        """Number of partitions the collection is split into."""


class EvaluationContext:
    """Runtime context for expression evaluation.

    Parameters
    ----------
    source:
        Data-source resolver; required only by plans that read collections
        or documents.
    functions:
        Scalar-function library mapping ``(name, arity)`` to a callable
        ``f(args: list[list]) -> list``.  Defaults to the builtin JSONiq
        library.
    memory:
        Optional memory tracker charged by materializing evaluations.
    partition:
        Index of the partition this plan instance is running on (None for
        a global, single-instance plan).
    stats:
        Optional :class:`repro.hyracks.executor.ExecutionStats` charged by
        physical operators (scanned items, exchanged tuples, ...).
    profile:
        Optional :class:`repro.observability.profile.ProfileCollector`;
        when present, the physical operators record per-operator
        counters and timing spans on it.
    spill:
        Optional :class:`repro.hyracks.spill.SpillManager`; when present,
        the blocking operators degrade to disk instead of raising when a
        memory charge is declined.
    limits:
        Optional :class:`repro.hyracks.limits.ExecutionLimits` checked at
        frame boundaries (deadline + cancellation token).
    """

    def __init__(
        self,
        source: DataSource | None = None,
        functions: dict[tuple[str, int], Callable] | None = None,
        memory: "MemoryTracker | None" = None,
        partition: int | None = None,
        stats=None,
        profile=None,
        spill=None,
        limits=None,
    ):
        if functions is None:
            from repro.jsoniq.functions import BUILTIN_FUNCTIONS

            functions = BUILTIN_FUNCTIONS
        self.source = source
        self.functions = functions
        self.memory = memory
        self.partition = partition
        self.stats = stats
        self.profile = profile
        self.spill = spill
        self.limits = limits

    def for_partition(
        self, partition: int | None, memory: "MemoryTracker | None" = None
    ) -> "EvaluationContext":
        """A copy of this context bound to a specific partition."""
        return EvaluationContext(
            source=self.source,
            functions=self.functions,
            memory=memory if memory is not None else self.memory,
            partition=partition,
            stats=self.stats,
            profile=self.profile,
            spill=self.spill,
            limits=self.limits,
        )

    def charge(self, n_bytes: int) -> None:
        """Charge *n_bytes* against the memory tracker, if any."""
        if self.memory is not None:
            self.memory.allocate(n_bytes)

    def release(self, n_bytes: int) -> None:
        """Release *n_bytes* from the memory tracker, if any."""
        if self.memory is not None:
            self.memory.release(n_bytes)

    def checkpoint(self) -> None:
        """Strided deadline/cancellation check (cheap per-tuple call)."""
        if self.limits is not None:
            self.limits.checkpoint()


def charge_sequence(ctx: EvaluationContext, items: Iterable[Item]) -> int:
    """Charge the context for a materialized sequence; returns the bytes."""
    if ctx.memory is None:
        return 0
    from repro.jsonlib.items import sizeof_sequence

    n_bytes = sizeof_sequence(items)
    ctx.charge(n_bytes)
    return n_bytes
