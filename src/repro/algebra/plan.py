"""Logical plan container, traversal helpers, and the paper-style printer.

A :class:`LogicalPlan` wraps the root operator of an operator tree.  The
``explain`` rendering matches the figures of the paper — one operator per
line, children indented below, nested plans (SUBPLAN / GROUP-BY inner
focus) printed in braces::

    DISTRIBUTE-RESULT( $book )
      UNNEST( $book : $seq() )
        ASSIGN( $seq : json-doc("books.json")("bookstore")("book") )
          EMPTY-TUPLE-SOURCE
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from repro.algebra.operators import Operator


class LogicalPlan:
    """An immutable logical query plan."""

    __slots__ = ("root",)

    def __init__(self, root: Operator):
        self.root = root

    # -- traversal ----------------------------------------------------------

    def iter_operators(self, include_nested: bool = True) -> Iterator[Operator]:
        """Pre-order traversal of all operators (nested plans included)."""
        stack: list[Operator] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if include_nested:
                stack.extend(node.nested_plans())
            stack.extend(node.inputs)

    def operators_of(self, operator_type: type) -> list[Operator]:
        """All operators of a given type, in pre-order."""
        return [op for op in self.iter_operators() if isinstance(op, operator_type)]

    def transform_bottom_up(
        self, visit: Callable[[Operator], Operator]
    ) -> "LogicalPlan":
        """Rebuild the plan, applying *visit* to every operator bottom-up.

        *visit* receives each operator after its inputs (and nested plans)
        have already been transformed, and returns the replacement (or the
        operator unchanged).
        """
        return LogicalPlan(_transform(self.root, visit))

    # -- rendering ----------------------------------------------------------

    def explain(self) -> str:
        """Paper-style multi-line rendering of the plan."""
        lines: list[str] = []
        _render(self.root, 0, lines)
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalPlan) and self.root == other.root

    def __hash__(self) -> int:
        return hash(type(self.root).__name__)

    def __repr__(self) -> str:
        return f"LogicalPlan(\n{self.explain()}\n)"


def _transform(node: Operator, visit: Callable[[Operator], Operator]) -> Operator:
    new_inputs = [_transform(child, visit) for child in node.inputs]
    if tuple(new_inputs) != node.inputs:
        node = node.with_inputs(new_inputs)
    nested = node.nested_plans()
    if nested:
        new_nested = [_transform(child, visit) for child in nested]
        if tuple(new_nested) != nested:
            # Only SUBPLAN and GROUP-BY carry nested plans, each exactly one.
            node = node.with_nested_root(new_nested[0])  # type: ignore[attr-defined]
    return visit(node)


def _render(node: Operator, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    lines.append(f"{indent}{node.signature()}")
    for nested in node.nested_plans():
        lines.append(f"{indent}{{")
        _render(nested, depth + 1, lines)
        lines.append(f"{indent}}}")
    for child in node.inputs:
        _render(child, depth + 1, lines)


class VariableGenerator:
    """Generates fresh variable names that cannot clash with user names.

    User variables come from query text and never contain ``#``; generated
    names are ``prefix#N``.
    """

    def __init__(self, existing: set[str] | None = None):
        self._counter = itertools.count()
        self._existing = set(existing or ())

    @classmethod
    def for_plan(cls, plan: LogicalPlan) -> "VariableGenerator":
        """A generator primed with every variable the plan produces."""
        existing: set[str] = set()
        for op in plan.iter_operators():
            existing.update(op.produced_variables())
        return cls(existing)

    def fresh(self, prefix: str = "v") -> str:
        """Return a new variable name not seen before."""
        while True:
            name = f"{prefix}#{next(self._counter)}"
            if name not in self._existing:
                self._existing.add(name)
                return name
