"""Logical operators of the Algebricks-style algebra.

The vocabulary matches Section 3.2 of the paper:

- ``EMPTY-TUPLE-SOURCE`` — leaf producing one empty tuple,
- ``DATASCAN`` — partition-aware source; its optional *projection path*
  second argument is the core of the pipelining rules,
- ``ASSIGN`` — evaluate a scalar expression into a new field,
- ``UNNEST`` — evaluate an unnesting expression, one output per item,
- ``AGGREGATE`` — fold a tuple stream into a single tuple,
- ``SUBPLAN`` — run a nested plan per input tuple,
- ``GROUP-BY`` — grouped aggregation with a nested inner-focus plan,
- ``SELECT`` — filter by effective boolean value,
- ``JOIN`` — binary join (introduced for multi-``for`` FLWORs),
- ``DISTRIBUTE-RESULT`` — plan root, emits the query result.

Operators are immutable descriptions; execution lives in
:mod:`repro.hyracks.operators`.  Each operator exposes its child
operators (``inputs``), its expressions (``used_expressions``), and
rebuild methods so that rewrite rules can pattern-match and reconstruct
plans generically.
"""

from __future__ import annotations

from typing import Sequence as TypingSequence

from repro.errors import PlanError
from repro.algebra.expressions import Expression
from repro.jsonlib.path import Path


class Operator:
    """Base class of all logical operators."""

    __slots__ = ()

    #: paper-style operator name, e.g. "ASSIGN"
    name: str = "OPERATOR"

    @property
    def inputs(self) -> tuple["Operator", ...]:
        """Child operators (empty for leaves)."""
        raise NotImplementedError

    def with_inputs(self, inputs: TypingSequence["Operator"]) -> "Operator":
        """Rebuild with new child operators."""
        raise NotImplementedError

    def used_expressions(self) -> tuple[Expression, ...]:
        """All expressions this operator evaluates."""
        return ()

    def with_expressions(
        self, expressions: TypingSequence[Expression]
    ) -> "Operator":
        """Rebuild with new expressions (same order as used_expressions)."""
        if expressions:
            raise PlanError(f"{self.name} takes no expressions")
        return self

    def produced_variables(self) -> tuple[str, ...]:
        """Variables this operator adds to the tuple."""
        return ()

    def nested_plans(self) -> tuple["Operator", ...]:
        """Roots of nested plans (SUBPLAN / GROUP-BY inner focus)."""
        return ()

    def signature(self) -> str:
        """One-line paper-style rendering, e.g. ``ASSIGN( $x : ... )``."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,))

    def _key(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.signature()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class EmptyTupleSource(Operator):
    """Outputs a single empty tuple to initiate result production."""

    __slots__ = ()
    name = "EMPTY-TUPLE-SOURCE"

    @property
    def inputs(self):
        return ()

    def with_inputs(self, inputs):
        if inputs:
            raise PlanError("EMPTY-TUPLE-SOURCE is a leaf")
        return self

    def signature(self):
        return "EMPTY-TUPLE-SOURCE"

    def _key(self):
        return ()


class NestedTupleSource(Operator):
    """Leaf of a nested plan: re-emits the outer operator's input tuple."""

    __slots__ = ()
    name = "NESTED-TUPLE-SOURCE"

    @property
    def inputs(self):
        return ()

    def with_inputs(self, inputs):
        if inputs:
            raise PlanError("NESTED-TUPLE-SOURCE is a leaf")
        return self

    def signature(self):
        return "NESTED-TUPLE-SOURCE"

    def _key(self):
        return ()


class DataScan(Operator):
    """Partition-aware collection scan (Algebricks' DATASCAN).

    ``project_path`` is the second argument introduced by the pipelining
    rules (Figures 6-8): the scanner streams only the sub-items of each
    file that match the path, one tuple per matched item.  With an empty
    path the scan emits whole files, one tuple per top-level item.
    """

    __slots__ = ("collection", "variable", "project_path")
    name = "DATASCAN"

    def __init__(self, collection: str, variable: str, project_path: Path = Path()):
        self.collection = collection
        self.variable = variable
        self.project_path = project_path

    @property
    def inputs(self):
        return ()

    def with_inputs(self, inputs):
        if inputs:
            raise PlanError("DATASCAN is a leaf")
        return self

    def produced_variables(self):
        return (self.variable,)

    def with_project_path(self, path: Path) -> "DataScan":
        """Rebuild with a different projection path."""
        return DataScan(self.collection, self.variable, path)

    def signature(self):
        path = str(self.project_path)
        argument = f'collection("{self.collection}")'
        if path:
            argument += f", {path}"
        return f"DATASCAN( ${self.variable} : {argument} )"

    def _key(self):
        return (self.collection, self.variable, self.project_path)


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class Assign(Operator):
    """Evaluates a scalar expression and binds it as a new field."""

    __slots__ = ("input_op", "variable", "expression")
    name = "ASSIGN"

    def __init__(self, input_op: Operator, variable: str, expression: Expression):
        self.input_op = input_op
        self.variable = variable
        self.expression = expression

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Assign(input_op, self.variable, self.expression)

    def used_expressions(self):
        return (self.expression,)

    def with_expressions(self, expressions):
        (expression,) = expressions
        return Assign(self.input_op, self.variable, expression)

    def produced_variables(self):
        return (self.variable,)

    def signature(self):
        return f"ASSIGN( ${self.variable} : {self.expression.to_string()} )"

    def _key(self):
        return (self.input_op, self.variable, self.expression)


class Unnest(Operator):
    """Evaluates an unnesting expression, emitting one tuple per item."""

    __slots__ = ("input_op", "variable", "expression")
    name = "UNNEST"

    def __init__(self, input_op: Operator, variable: str, expression: Expression):
        self.input_op = input_op
        self.variable = variable
        self.expression = expression

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Unnest(input_op, self.variable, self.expression)

    def used_expressions(self):
        return (self.expression,)

    def with_expressions(self, expressions):
        (expression,) = expressions
        return Unnest(self.input_op, self.variable, expression)

    def produced_variables(self):
        return (self.variable,)

    def signature(self):
        return f"UNNEST( ${self.variable} : {self.expression.to_string()} )"

    def _key(self):
        return (self.input_op, self.variable, self.expression)


class Select(Operator):
    """Filters tuples by the effective boolean value of a condition."""

    __slots__ = ("input_op", "condition")
    name = "SELECT"

    def __init__(self, input_op: Operator, condition: Expression):
        self.input_op = input_op
        self.condition = condition

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Select(input_op, self.condition)

    def used_expressions(self):
        return (self.condition,)

    def with_expressions(self, expressions):
        (condition,) = expressions
        return Select(self.input_op, condition)

    def signature(self):
        return f"SELECT( {self.condition.to_string()} )"

    def _key(self):
        return (self.input_op, self.condition)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

AGGREGATE_FUNCTIONS = ("sequence", "count", "sum", "avg", "min", "max")


class AggregateSpec:
    """One aggregate binding: ``$var := function(argument)`` over a stream.

    ``sequence`` collects every argument item into one sequence — the
    materializing aggregate the group-by rules eliminate; the others fold
    incrementally and each has a partial/combine decomposition used by the
    two-step aggregation rule.
    """

    __slots__ = ("variable", "function", "argument")

    def __init__(self, variable: str, function: str, argument: Expression):
        if function not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"unknown aggregate function {function!r}")
        self.variable = variable
        self.function = function
        self.argument = argument

    def with_argument(self, argument: Expression) -> "AggregateSpec":
        return AggregateSpec(self.variable, self.function, argument)

    def to_string(self) -> str:
        return f"${self.variable} : {self.function}({self.argument.to_string()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateSpec)
            and self.variable == other.variable
            and self.function == other.function
            and self.argument == other.argument
        )

    def __hash__(self) -> int:
        return hash((self.variable, self.function))

    def __repr__(self) -> str:
        return f"AggregateSpec({self.to_string()})"


class Aggregate(Operator):
    """Folds its input tuple stream into exactly one output tuple."""

    __slots__ = ("input_op", "specs")
    name = "AGGREGATE"

    def __init__(self, input_op: Operator, specs: TypingSequence[AggregateSpec]):
        if not specs:
            raise PlanError("AGGREGATE requires at least one spec")
        self.input_op = input_op
        self.specs = tuple(specs)

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Aggregate(input_op, self.specs)

    def used_expressions(self):
        return tuple(spec.argument for spec in self.specs)

    def with_expressions(self, expressions):
        specs = [
            spec.with_argument(expr)
            for spec, expr in zip(self.specs, expressions)
        ]
        return Aggregate(self.input_op, specs)

    def produced_variables(self):
        return tuple(spec.variable for spec in self.specs)

    def signature(self):
        inner = ", ".join(spec.to_string() for spec in self.specs)
        return f"AGGREGATE( {inner} )"

    def _key(self):
        return (self.input_op, self.specs)


class Subplan(Operator):
    """Runs a nested plan once per input tuple (Figure 11).

    The nested plan's leaf is a :class:`NestedTupleSource` that re-emits
    the outer tuple; its root must be an :class:`Aggregate`, whose single
    output tuple is merged into the outer tuple.
    """

    __slots__ = ("input_op", "nested_root")
    name = "SUBPLAN"

    def __init__(self, input_op: Operator, nested_root: Operator):
        self.input_op = input_op
        self.nested_root = nested_root

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Subplan(input_op, self.nested_root)

    def nested_plans(self):
        return (self.nested_root,)

    def with_nested_root(self, nested_root: Operator) -> "Subplan":
        return Subplan(self.input_op, nested_root)

    def produced_variables(self):
        names: list[str] = []
        node: Operator | None = self.nested_root
        while node is not None:
            names.extend(node.produced_variables())
            node = node.inputs[0] if node.inputs else None
        return tuple(names)

    def signature(self):
        return "SUBPLAN"

    def _key(self):
        return (self.input_op, self.nested_root)


class GroupBy(Operator):
    """Grouped aggregation with a nested inner-focus plan (Figure 9).

    ``keys`` are ``(variable, expression)`` pairs evaluated per input
    tuple; tuples with equal key values form a group.  The nested plan
    (leaf :class:`NestedTupleSource`, root :class:`Aggregate`) runs once
    per group over the group's tuples, and its output is merged with the
    key bindings.
    """

    __slots__ = ("input_op", "keys", "nested_root")
    name = "GROUP-BY"

    def __init__(
        self,
        input_op: Operator,
        keys: TypingSequence[tuple[str, Expression]],
        nested_root: Operator,
    ):
        if not keys:
            raise PlanError("GROUP-BY requires at least one key")
        self.input_op = input_op
        self.keys = tuple(keys)
        self.nested_root = nested_root

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return GroupBy(input_op, self.keys, self.nested_root)

    def used_expressions(self):
        return tuple(expr for _, expr in self.keys)

    def with_expressions(self, expressions):
        keys = [
            (var, expr) for (var, _), expr in zip(self.keys, expressions)
        ]
        return GroupBy(self.input_op, keys, self.nested_root)

    def nested_plans(self):
        return (self.nested_root,)

    def with_nested_root(self, nested_root: Operator) -> "GroupBy":
        return GroupBy(self.input_op, self.keys, nested_root)

    def produced_variables(self):
        names = [var for var, _ in self.keys]
        node: Operator | None = self.nested_root
        while node is not None:
            names.extend(node.produced_variables())
            node = node.inputs[0] if node.inputs else None
        return tuple(names)

    def signature(self):
        keys = ", ".join(
            f"${var} : {expr.to_string()}" for var, expr in self.keys
        )
        return f"GROUP-BY( {keys} )"

    def _key(self):
        return (self.input_op, self.keys, self.nested_root)


# ---------------------------------------------------------------------------
# Binary operators and root
# ---------------------------------------------------------------------------


#: valid build-side annotations (which input a hash join materializes).
JOIN_BUILD_SIDES = ("right", "left")

#: valid exchange annotations: hash-partition both sides, or replicate
#: one tiny side to every partition instead.
JOIN_EXCHANGES = ("hash", "broadcast-left", "broadcast-right")


class Join(Operator):
    """Binary join; a condition of literal ``true`` is a cross product.

    The translator emits cross products for independent ``for`` clauses;
    a built-in rule folds equality conjuncts from an enclosing SELECT into
    the condition, and the physical layer picks a hash join for
    equi-conditions.

    ``build_side``, ``exchange``, and ``skew_keys`` are physical
    annotations set by the cost phase (:mod:`repro.stats.cost`) and
    honored by the executor; the defaults reproduce the un-costed
    behavior exactly (build on the right, hash-partition both sides, no
    skew handling).  ``skew_keys`` is a tuple of canonical join-key
    tuples — hot keys whose exchange buckets are split (probe tuples
    spread, build tuples replicated).
    """

    __slots__ = ("left", "right", "condition", "build_side", "exchange",
                 "skew_keys")
    name = "JOIN"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Expression,
        build_side: str = "right",
        exchange: str = "hash",
        skew_keys: tuple = (),
    ):
        if build_side not in JOIN_BUILD_SIDES:
            raise PlanError(f"unknown join build side {build_side!r}")
        if exchange not in JOIN_EXCHANGES:
            raise PlanError(f"unknown join exchange {exchange!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.build_side = build_side
        self.exchange = exchange
        self.skew_keys = tuple(skew_keys)

    @property
    def inputs(self):
        return (self.left, self.right)

    def with_inputs(self, inputs):
        left, right = inputs
        return Join(
            left, right, self.condition,
            self.build_side, self.exchange, self.skew_keys,
        )

    def used_expressions(self):
        return (self.condition,)

    def with_expressions(self, expressions):
        (condition,) = expressions
        return Join(
            self.left, self.right, condition,
            self.build_side, self.exchange, self.skew_keys,
        )

    def with_physical(
        self,
        build_side: str | None = None,
        exchange: str | None = None,
        skew_keys: tuple | None = None,
    ) -> "Join":
        """Rebuild with new physical annotations (None leaves one as-is)."""
        return Join(
            self.left,
            self.right,
            self.condition,
            self.build_side if build_side is None else build_side,
            self.exchange if exchange is None else exchange,
            self.skew_keys if skew_keys is None else tuple(skew_keys),
        )

    @property
    def annotated(self) -> bool:
        """True when any physical annotation differs from the default."""
        return (
            self.build_side != "right"
            or self.exchange != "hash"
            or bool(self.skew_keys)
        )

    def signature(self):
        base = f"JOIN( {self.condition.to_string()} )"
        if not self.annotated:
            return base
        parts = []
        if self.build_side != "right":
            parts.append(f"build={self.build_side}")
        if self.exchange != "hash":
            parts.append(f"exchange={self.exchange}")
        if self.skew_keys:
            parts.append(f"skew={len(self.skew_keys)}")
        return f"{base} [{' '.join(parts)}]"

    def _key(self):
        return (
            self.left, self.right, self.condition,
            self.build_side, self.exchange, self.skew_keys,
        )


class Sort(Operator):
    """Orders its input tuples by sort-key expressions.

    ``specs`` are ``(expression, descending)`` pairs.  Sorting is a
    blocking, global operation; the executor runs sorted plans as a
    single instance.
    """

    __slots__ = ("input_op", "specs")
    name = "SORT"

    def __init__(
        self, input_op: Operator, specs: TypingSequence[tuple[Expression, bool]]
    ):
        if not specs:
            raise PlanError("SORT requires at least one sort key")
        self.input_op = input_op
        self.specs = tuple(specs)

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return Sort(input_op, self.specs)

    def used_expressions(self):
        return tuple(expr for expr, _ in self.specs)

    def with_expressions(self, expressions):
        specs = [
            (expr, desc)
            for expr, (_, desc) in zip(expressions, self.specs)
        ]
        return Sort(self.input_op, specs)

    def signature(self):
        keys = ", ".join(
            expr.to_string() + (" desc" if desc else "")
            for expr, desc in self.specs
        )
        return f"SORT( {keys} )"

    def _key(self):
        return (self.input_op, self.specs)


class DistributeResult(Operator):
    """Plan root: evaluates the result expressions for every tuple."""

    __slots__ = ("input_op", "expressions")
    name = "DISTRIBUTE-RESULT"

    def __init__(self, input_op: Operator, expressions: TypingSequence[Expression]):
        self.input_op = input_op
        self.expressions = tuple(expressions)

    @property
    def inputs(self):
        return (self.input_op,)

    def with_inputs(self, inputs):
        (input_op,) = inputs
        return DistributeResult(input_op, self.expressions)

    def used_expressions(self):
        return self.expressions

    def with_expressions(self, expressions):
        return DistributeResult(self.input_op, expressions)

    def signature(self):
        inner = ", ".join(e.to_string() for e in self.expressions)
        return f"DISTRIBUTE-RESULT( {inner} )"

    def _key(self):
        return (self.input_op, self.expressions)
