"""Rewrite rules: the paper's three JSONiq rule families plus built-ins.

- :mod:`repro.algebra.rules.base` — rule/engine framework and helpers,
- :mod:`repro.algebra.rules.builtin` — Algebricks-style built-in rules
  (variable inlining, join predicate folding, cleanups), always applied,
- :mod:`repro.algebra.rules.path_rules` — Section 4.1,
- :mod:`repro.algebra.rules.pipelining_rules` — Section 4.2,
- :mod:`repro.algebra.rules.groupby_rules` — Section 4.3.

:func:`rule_pipeline` assembles the rule list for a
:class:`RewriteConfig`, which is how the benchmarks toggle rule families
on and off to reproduce the before/after experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.rules.base import RewriteRule, RuleEngine


@dataclass(frozen=True)
class RewriteConfig:
    """Which rule families are enabled.

    The families are cumulative in the paper's evaluation (path →
    +pipelining → +group-by); ``two_step_aggregation`` is the
    partition-local/global aggregation scheme the group-by section
    enables, honored by the physical compiler.

    ``validate`` wires the plan invariant validator
    (:func:`repro.correctness.validator.validate_plan`) into the rule
    engine so every rule fire is checked; it is on by default and only
    meant to be disabled by tests that construct deliberately broken
    plans.

    ``cost`` enables the cost-based planning phase
    (:func:`repro.stats.cost.apply_cost_planning`) that runs after the
    rewrite fixpoint when sampled statistics are available.  It is not a
    rule *family* — it never fires without a stats snapshot, so it does
    not participate in ``label()``/``without_family``/``TOGGLE_CONFIGS``.
    """

    path: bool = True
    pipelining: bool = True
    groupby: bool = True
    two_step_aggregation: bool = True
    validate: bool = True
    cost: bool = True

    @classmethod
    def none(cls) -> "RewriteConfig":
        """No JSONiq rules at all (built-ins still apply)."""
        return cls(False, False, False, False)

    @classmethod
    def path_only(cls) -> "RewriteConfig":
        return cls(True, False, False, False)

    @classmethod
    def path_and_pipelining(cls) -> "RewriteConfig":
        return cls(True, True, False, False)

    @classmethod
    def all(cls) -> "RewriteConfig":
        return cls(True, True, True, True)

    @classmethod
    def without_family(cls, family: str) -> "RewriteConfig":
        """All rules on except one named family — the differential
        harness's per-family toggles.  ``family`` is one of ``"path"``,
        ``"pipelining"``, ``"groupby"``, ``"two_step_aggregation"``."""
        if family not in _FAMILY_FIELDS:
            raise ValueError(
                f"unknown rule family {family!r}; expected one of "
                f"{sorted(_FAMILY_FIELDS)}"
            )
        return cls(**{name: name != family for name in _FAMILY_FIELDS})

    def label(self) -> str:
        """Short human-readable toggle label (used in reports/goldens)."""
        if all(getattr(self, name) for name in _FAMILY_FIELDS):
            return "all"
        if not any(getattr(self, name) for name in _FAMILY_FIELDS):
            return "none"
        off = [name for name in _FAMILY_FIELDS if not getattr(self, name)]
        return "no-" + "+".join(off)


_FAMILY_FIELDS = ("path", "pipelining", "groupby", "two_step_aggregation")

#: The harness's rule-toggle axis: everything on, each family off in
#: turn, everything off.
TOGGLE_CONFIGS: dict[str, RewriteConfig] = {
    "all": RewriteConfig.all(),
    "no-path": RewriteConfig.without_family("path"),
    "no-pipelining": RewriteConfig.without_family("pipelining"),
    "no-groupby": RewriteConfig.without_family("groupby"),
    "no-two_step_aggregation": RewriteConfig.without_family(
        "two_step_aggregation"
    ),
    "none": RewriteConfig.none(),
}


def rule_pipeline(config: RewriteConfig) -> RuleEngine:
    """Build the rule engine for *config*."""
    from repro.algebra.rules import builtin, groupby_rules, path_rules
    from repro.algebra.rules import pipelining_rules

    rules: list[RewriteRule] = []
    if config.path:
        rules.extend(path_rules.PATH_RULES)
    if config.pipelining:
        rules.extend(pipelining_rules.PIPELINING_RULES)
    if config.groupby:
        rules.extend(groupby_rules.GROUPBY_RULES)
    rules.extend(builtin.BUILTIN_RULES)
    validator = None
    if config.validate:
        from repro.correctness.validator import validate_plan

        validator = validate_plan
    return RuleEngine(rules, validator=validator)


__all__ = [
    "RewriteConfig",
    "RewriteRule",
    "RuleEngine",
    "TOGGLE_CONFIGS",
    "rule_pipeline",
]
