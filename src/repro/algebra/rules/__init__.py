"""Rewrite rules: the paper's three JSONiq rule families plus built-ins.

- :mod:`repro.algebra.rules.base` — rule/engine framework and helpers,
- :mod:`repro.algebra.rules.builtin` — Algebricks-style built-in rules
  (variable inlining, join predicate folding, cleanups), always applied,
- :mod:`repro.algebra.rules.path_rules` — Section 4.1,
- :mod:`repro.algebra.rules.pipelining_rules` — Section 4.2,
- :mod:`repro.algebra.rules.groupby_rules` — Section 4.3.

:func:`rule_pipeline` assembles the rule list for a
:class:`RewriteConfig`, which is how the benchmarks toggle rule families
on and off to reproduce the before/after experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.rules.base import RewriteRule, RuleEngine


@dataclass(frozen=True)
class RewriteConfig:
    """Which rule families are enabled.

    The families are cumulative in the paper's evaluation (path →
    +pipelining → +group-by); ``two_step_aggregation`` is the
    partition-local/global aggregation scheme the group-by section
    enables, honored by the physical compiler.
    """

    path: bool = True
    pipelining: bool = True
    groupby: bool = True
    two_step_aggregation: bool = True

    @classmethod
    def none(cls) -> "RewriteConfig":
        """No JSONiq rules at all (built-ins still apply)."""
        return cls(False, False, False, False)

    @classmethod
    def path_only(cls) -> "RewriteConfig":
        return cls(True, False, False, False)

    @classmethod
    def path_and_pipelining(cls) -> "RewriteConfig":
        return cls(True, True, False, False)

    @classmethod
    def all(cls) -> "RewriteConfig":
        return cls(True, True, True, True)


def rule_pipeline(config: RewriteConfig) -> RuleEngine:
    """Build the rule engine for *config*."""
    from repro.algebra.rules import builtin, groupby_rules, path_rules
    from repro.algebra.rules import pipelining_rules

    rules: list[RewriteRule] = []
    if config.path:
        rules.extend(path_rules.PATH_RULES)
    if config.pipelining:
        rules.extend(pipelining_rules.PIPELINING_RULES)
    if config.groupby:
        rules.extend(groupby_rules.GROUPBY_RULES)
    rules.extend(builtin.BUILTIN_RULES)
    return RuleEngine(rules)


__all__ = ["RewriteConfig", "RewriteRule", "RuleEngine", "rule_pipeline"]
