"""Rewrite-rule framework: the Algebricks-style fixpoint engine.

A :class:`RewriteRule` inspects a whole plan and either returns a
rewritten plan or ``None`` (no match).  The :class:`RuleEngine` applies
an ordered rule list to a fixpoint: whenever any rule fires, scanning
restarts from the first rule, so cleanups re-run after every structural
change.  Plans are small (tens of operators), so whole-plan rules keep
the pattern code simple without costing anything measurable.

The module also provides the analysis helpers every rule needs:
variable-usage counting and variable/expression substitution.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import RewriteError
from repro.algebra.expressions import Expression, VariableRef
from repro.algebra.operators import Operator
from repro.algebra.plan import LogicalPlan

_MAX_REWRITE_PASSES = 500


class RewriteRule:
    """Base class for rewrite rules."""

    #: human-readable rule name (used by explain traces)
    name: str = "rule"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        """Return the rewritten plan, or None if the rule does not match."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<rule {self.name}>"


class RuleEngine:
    """Applies an ordered rule list to a fixpoint.

    When *validator* is given (a callable raising on an invalid
    :class:`LogicalPlan`), the input plan is validated once up front and
    the rewritten plan is re-validated after **every** rule fire, so a
    rule that breaks a structural invariant fails immediately with the
    offending rule's name instead of executing a corrupt plan.
    """

    def __init__(
        self,
        rules: Sequence[RewriteRule],
        validator: Callable[[LogicalPlan], None] | None = None,
    ):
        self.rules = list(rules)
        self.validator = validator

    def rewrite(
        self,
        plan: LogicalPlan,
        trace: list[tuple[str, LogicalPlan]] | None = None,
        audit=None,
    ) -> LogicalPlan:
        """Rewrite *plan* to a fixpoint.

        When *trace* is given, every applied step is appended as a
        ``(rule_name, plan_after)`` pair — used by ``explain``.  When
        *audit* (a :class:`~repro.observability.rewrite_audit.RewriteAudit`)
        is given, every firing is recorded with its operator-count delta
        — used by the query profiles.
        """
        self._validate(plan, "translated plan")
        for _ in range(_MAX_REWRITE_PASSES):
            for rule in self.rules:
                rewritten = rule.apply(plan)
                if rewritten is not None:
                    self._validate(rewritten, f"rule {rule.name}")
                    if trace is not None:
                        trace.append((rule.name, rewritten))
                    if audit is not None:
                        audit.record(rule.name, plan, rewritten)
                    plan = rewritten
                    break
            else:
                return plan
        raise RewriteError(
            f"rewrite did not reach a fixpoint in {_MAX_REWRITE_PASSES} passes"
        )

    def _validate(self, plan: LogicalPlan, origin: str) -> None:
        if self.validator is None:
            return
        try:
            self.validator(plan)
        except RewriteError as error:
            raise type(error)(f"after {origin}: {error}") from error


# ---------------------------------------------------------------------------
# Expression transforms
# ---------------------------------------------------------------------------


def transform_expression(
    expr: Expression, visit: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild an expression tree bottom-up through *visit*."""
    children = expr.child_expressions()
    if children:
        new_children = [transform_expression(c, visit) for c in children]
        if tuple(new_children) != children:
            expr = expr.with_child_expressions(new_children)
    return visit(expr)


def rewrite_all_expressions(
    plan: LogicalPlan, visit: Callable[[Expression], Expression]
) -> LogicalPlan:
    """Apply an expression transform to every expression in the plan."""

    def rebuild(op: Operator) -> Operator:
        expressions = op.used_expressions()
        if not expressions:
            return op
        new_expressions = [transform_expression(e, visit) for e in expressions]
        if tuple(new_expressions) == expressions:
            return op
        return op.with_expressions(new_expressions)

    return plan.transform_bottom_up(rebuild)


def substitute_variable(expr: Expression, old: str, new: Expression) -> Expression:
    """Replace every ``$old`` reference in *expr* with *new*."""

    def visit(node: Expression) -> Expression:
        if isinstance(node, VariableRef) and node.name == old:
            return new
        return node

    return transform_expression(expr, visit)


def substitute_variable_in_plan(
    plan: LogicalPlan, old: str, new: Expression
) -> LogicalPlan:
    """Replace ``$old`` with *new* in every expression of the plan."""
    return rewrite_all_expressions(
        plan,
        lambda node: new
        if isinstance(node, VariableRef) and node.name == old
        else node,
    )


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


def variable_use_count(plan: LogicalPlan, name: str) -> int:
    """Number of ``$name`` references across all plan expressions."""
    count = 0
    for op in plan.iter_operators():
        for expr in op.used_expressions():
            count += _count_refs(expr, name)
    return count


def _count_refs(expr: Expression, name: str) -> int:
    count = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, VariableRef) and node.name == name:
            count += 1
        stack.extend(node.child_expressions())
    return count


def conjuncts(condition: Expression) -> tuple[Expression, ...]:
    """Flatten a condition into its top-level AND conjuncts."""
    from repro.algebra.expressions import AndExpr

    if isinstance(condition, AndExpr):
        return condition.conjuncts()
    return (condition,)


def subtree_variables(op: Operator) -> set[str]:
    """All variables produced anywhere in *op*'s subtree."""
    names: set[str] = set()
    for node in LogicalPlan(op).iter_operators():
        names.update(node.produced_variables())
    return names


def replace_operator(
    plan: LogicalPlan, target: Operator, replacement: Operator
) -> LogicalPlan:
    """Replace the (identity-matched) *target* operator with *replacement*."""
    replaced = False

    def visit(op: Operator) -> Operator:
        nonlocal replaced
        if op is target:
            replaced = True
            return replacement
        return op

    rewritten = plan.transform_bottom_up(visit)
    if not replaced:
        raise RewriteError("operator to replace not found in plan")
    return rewritten


def parent_chain(plan: LogicalPlan, target: Operator) -> list[Operator]:
    """Operators from the root down to (excluding) *target*, main tree only."""
    path: list[Operator] = []

    def walk(op: Operator) -> bool:
        if op is target:
            return True
        path.append(op)
        for child in op.inputs:
            if walk(child):
                return True
        path.pop()
        return False

    if not walk(plan.root):
        raise RewriteError("operator not found in plan")
    return path
