"""Group-by rules (Section 4.3 of the paper).

Three rewrites (applying to XML and JSON queries alike):

1. **Remove the redundant treat** (Figure 10): the translator guards the
   grouped sequence with ``treat(..., item)``; since everything in this
   data model is an item, the assertion is statically satisfied and the
   expression is dropped.  The built-in inline-variable-assign rule then
   removes the whole ASSIGN.
2. **Convert the scalar aggregate to an aggregation** (Figure 11): an
   ``ASSIGN $c := count(<path over $seq>)`` applied to a GROUP-BY's
   materialized group sequence becomes a SUBPLAN whose inner focus
   iterates the sequence and counts incrementally.
3. **Push the SUBPLAN's aggregate into the GROUP-BY** (Figure 12): when
   the SUBPLAN sits directly above the GROUP-BY and consumes exactly the
   grouped sequence, the aggregate replaces the ``sequence`` aggregate in
   the GROUP-BY's inner focus — the count is computed *while* each group
   forms, and no per-group sequence is ever materialized.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    Expression,
    FunctionCallExpr,
    IterateExpr,
    PathStepExpr,
    TreatExpr,
    VariableRef,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateSpec,
    Assign,
    GroupBy,
    NestedTupleSource,
    Operator,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan, VariableGenerator
from repro.algebra.rules.base import (
    RewriteRule,
    replace_operator,
    rewrite_all_expressions,
    substitute_variable,
    variable_use_count,
)
from repro.jsoniq.functions import AGGREGATE_FUNCTION_NAMES


class RemoveRedundantTreatRule(RewriteRule):
    """``treat(expr, item)`` is the identity: drop it (Figure 10)."""

    name = "remove-redundant-treat"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        changed = False

        def visit(expr: Expression) -> Expression:
            nonlocal changed
            if isinstance(expr, TreatExpr) and expr.type_name == "item":
                changed = True
                return expr.input
            return expr

        rewritten = rewrite_all_expressions(plan, visit)
        return rewritten if changed else None


def _sequence_spec_of(group_by: GroupBy, variable: str) -> AggregateSpec | None:
    """The GROUP-BY's ``sequence`` spec producing *variable*, if any."""
    nested = group_by.nested_root
    if not isinstance(nested, Aggregate):
        return None
    if not isinstance(nested.input_op, NestedTupleSource):
        return None
    for spec in nested.specs:
        if spec.variable == variable and spec.function == "sequence":
            return spec
    return None


def _is_path_over(expr: Expression, variable: str) -> bool:
    """True if *expr* is ``$variable`` or a pure path chain over it."""
    if isinstance(expr, VariableRef):
        return expr.name == variable
    if isinstance(expr, PathStepExpr):
        base, _ = expr.leading_path()
        return isinstance(base, VariableRef) and base.name == variable
    return False


def _group_by_below(op: Operator) -> GroupBy | None:
    """The GROUP-BY reachable from *op* walking single-input chains."""
    node: Operator = op
    while node.inputs:
        node = node.inputs[0]
        if isinstance(node, GroupBy):
            return node
        if len(node.inputs) > 1:
            return None
    return None


class ConvertScalarAggregateToSubplanRule(RewriteRule):
    """Scalar aggregate over a grouped sequence → SUBPLAN (Figure 11)."""

    name = "convert-scalar-aggregate-to-subplan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not isinstance(op, Assign):
                continue
            expr = op.expression
            if not (
                isinstance(expr, FunctionCallExpr)
                and expr.name in AGGREGATE_FUNCTION_NAMES
                and len(expr.args) == 1
            ):
                continue
            argument = expr.args[0]
            free = argument.free_variables()
            if len(free) != 1:
                continue
            (seq_var,) = free
            if not _is_path_over(argument, seq_var):
                # The elementwise decomposition count(f(seq)) ==
                # sum_j count(f(j)) only holds for mapping expressions;
                # path chains map, arbitrary functions may not.
                continue
            group_by = _group_by_below(op)
            if group_by is None or _sequence_spec_of(group_by, seq_var) is None:
                continue
            vargen = VariableGenerator.for_plan(plan)
            item_var = vargen.fresh("j")
            inner_arg = substitute_variable(
                argument, seq_var, VariableRef(item_var)
            )
            nested: Operator = NestedTupleSource()
            nested = Unnest(
                nested, item_var, IterateExpr(VariableRef(seq_var))
            )
            nested = Aggregate(
                nested, [AggregateSpec(op.variable, expr.name, inner_arg)]
            )
            return replace_operator(plan, op, Subplan(op.input_op, nested))
        return None


class PushSubplanAggregateIntoGroupByRule(RewriteRule):
    """SUBPLAN aggregate directly above GROUP-BY → into the inner focus
    (Figure 12): the aggregate computes while each group forms and the
    per-group sequence disappears."""

    name = "push-subplan-aggregate-into-groupby"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Subplan) and isinstance(op.input_op, GroupBy)):
                continue
            group_by = op.input_op
            pattern = self._match_nested(op.nested_root)
            if pattern is None:
                continue
            aggregate, unnest = pattern
            iterate = unnest.expression
            if not (
                isinstance(iterate, IterateExpr)
                and isinstance(iterate.input, VariableRef)
            ):
                continue
            seq_var = iterate.input.name
            sequence_spec = _sequence_spec_of(group_by, seq_var)
            if sequence_spec is None:
                continue
            # The grouped sequence must be consumed by this SUBPLAN alone.
            if variable_use_count(plan, seq_var) != 1:
                continue
            # Every pushed aggregate must depend only on the per-item var.
            item_var = unnest.variable
            if any(
                spec.argument.free_variables() - {item_var}
                for spec in aggregate.specs
            ):
                continue
            pushed = [
                spec.with_argument(
                    substitute_variable(
                        spec.argument, item_var, sequence_spec.argument
                    )
                )
                for spec in aggregate.specs
            ]
            old_nested = group_by.nested_root
            assert isinstance(old_nested, Aggregate)
            kept = [s for s in old_nested.specs if s.variable != seq_var]
            new_nested = Aggregate(NestedTupleSource(), kept + pushed)
            new_group = GroupBy(group_by.input_op, group_by.keys, new_nested)
            return replace_operator(plan, op, new_group)
        return None

    @staticmethod
    def _match_nested(nested_root: Operator) -> tuple[Aggregate, Unnest] | None:
        """Match AGGREGATE over UNNEST over NESTED-TUPLE-SOURCE."""
        if not isinstance(nested_root, Aggregate):
            return None
        unnest = nested_root.input_op
        if not isinstance(unnest, Unnest):
            return None
        if not isinstance(unnest.input_op, NestedTupleSource):
            return None
        return nested_root, unnest


GROUPBY_RULES = (
    RemoveRedundantTreatRule(),
    ConvertScalarAggregateToSubplanRule(),
    PushSubplanAggregateIntoGroupByRule(),
)
