"""Algebricks-style built-in rules, applied regardless of configuration.

These are the generic (language-independent) optimizations the paper
attributes to Algebricks itself: variable inlining, dead-code removal,
and folding SELECT predicates into JOINs so equi-joins can execute as
hash joins.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    AndExpr,
    ComparisonExpr,
    Expression,
    Literal,
    TRUE_LITERAL,
    VariableRef,
)
from repro.algebra.operators import (
    Aggregate,
    Assign,
    GroupBy,
    Join,
    Operator,
    Select,
)
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules.base import (
    RewriteRule,
    conjuncts as _conjuncts,
    replace_operator,
    substitute_variable_in_plan,
    subtree_variables as _subtree_variables,
    variable_use_count,
)


def _combine(conjuncts: list[Expression]) -> Expression:
    if not conjuncts:
        return TRUE_LITERAL
    if len(conjuncts) == 1:
        return conjuncts[0]
    return AndExpr(conjuncts)


def _is_true_literal(expr: Expression) -> bool:
    return isinstance(expr, Literal) and expr.sequence == [True]


class InlineVariableAssignRule(RewriteRule):
    """``ASSIGN $x := $y`` is redundant: substitute and drop.

    This is the step that finishes the treat removal of Figure 10 ("the
    whole ASSIGN can now be removed since it is a redundant operator").
    """

    name = "inline-variable-assign"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if isinstance(op, Assign) and isinstance(op.expression, VariableRef):
                without = replace_operator(plan, op, op.input_op)
                return substitute_variable_in_plan(
                    without, op.variable, op.expression
                )
        return None


class RemoveUnusedAssignRule(RewriteRule):
    """Drop an ASSIGN whose variable is referenced nowhere."""

    name = "remove-unused-assign"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if isinstance(op, Assign) and variable_use_count(plan, op.variable) == 0:
                return replace_operator(plan, op, op.input_op)
        return None


class PushSelectIntoJoinRule(RewriteRule):
    """Fold a SELECT's predicates into the JOIN below it.

    Equality conjuncts spanning both branches become the join condition
    (enabling the hash join); single-branch conjuncts are pushed into
    their branch; anything else stays above the join.
    """

    name = "push-select-into-join"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Select) and isinstance(op.input_op, Join)):
                continue
            join = op.input_op
            left_vars = _subtree_variables(join.left)
            right_vars = _subtree_variables(join.right)
            join_conjuncts: list[Expression] = []
            left_conjuncts: list[Expression] = []
            right_conjuncts: list[Expression] = []
            residual: list[Expression] = []
            for conjunct in _conjuncts(op.condition):
                free = conjunct.free_variables()
                if free and free <= left_vars:
                    left_conjuncts.append(conjunct)
                elif free and free <= right_vars:
                    right_conjuncts.append(conjunct)
                elif (
                    isinstance(conjunct, ComparisonExpr)
                    and conjunct.op == "eq"
                    and self._spans(conjunct, left_vars, right_vars)
                ):
                    join_conjuncts.append(conjunct)
                else:
                    residual.append(conjunct)
            if not (join_conjuncts or left_conjuncts or right_conjuncts):
                continue  # nothing to move for this SELECT+JOIN pair
            left = join.left
            if left_conjuncts:
                left = Select(left, _combine(left_conjuncts))
            right = join.right
            if right_conjuncts:
                right = Select(right, _combine(right_conjuncts))
            condition_parts = list(join_conjuncts)
            if not _is_true_literal(join.condition):
                condition_parts.extend(_conjuncts(join.condition))
            new_join = Join(left, right, _combine(condition_parts))
            replacement: Operator = new_join
            if residual:
                replacement = Select(new_join, _combine(residual))
            return replace_operator(plan, op, replacement)
        return None

    @staticmethod
    def _spans(
        conjunct: ComparisonExpr, left_vars: set[str], right_vars: set[str]
    ) -> bool:
        """True when one operand depends only on the left branch and the
        other only on the right (either orientation)."""
        a = conjunct.left.free_variables()
        b = conjunct.right.free_variables()
        if not a or not b:
            return False
        return (a <= left_vars and b <= right_vars) or (
            a <= right_vars and b <= left_vars
        )


class RemoveUnusedAggregateSpecRule(RewriteRule):
    """Drop aggregate bindings whose variable is never referenced.

    Applies to the nested AGGREGATE of a GROUP-BY (at least one spec is
    always kept, since GROUP-BY must emit one tuple per group).
    """

    name = "remove-unused-aggregate-spec"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not isinstance(op, GroupBy):
                continue
            nested = op.nested_root
            if not isinstance(nested, Aggregate) or len(nested.specs) <= 1:
                continue
            kept = [
                spec
                for spec in nested.specs
                if variable_use_count(plan, spec.variable) > 0
            ]
            if len(kept) == len(nested.specs):
                continue
            if not kept:
                kept = [nested.specs[0]]
            new_group = op.with_nested_root(Aggregate(nested.input_op, kept))
            return replace_operator(plan, op, new_group)
        return None


BUILTIN_RULES = (
    InlineVariableAssignRule(),
    PushSelectIntoJoinRule(),
    RemoveUnusedAssignRule(),
    RemoveUnusedAggregateSpecRule(),
)
