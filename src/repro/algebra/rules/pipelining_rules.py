"""Pipelining rules (Section 4.2 of the paper).

Three rewrites, building on the path rules:

1. **Introduce DATASCAN** (Figure 6): ``ASSIGN $c := collection(...)`` +
   ``UNNEST $f := iterate($c)`` becomes ``DATASCAN($f : collection)``,
   which iterates the collection file by file instead of materializing
   it, and — being partition-aware — unlocks partitioned-parallel
   execution.
2. **Inline the path ASSIGN into the UNNEST above it** (Figure 7's
   "merge the value expressions"): ``ASSIGN $s := <path over $f>``
   consumed only by the UNNEST directly above folds into the UNNEST's
   expression.
3. **Merge the UNNEST's path into DATASCAN's second argument**
   (Figures 7-8): ``DATASCAN($f)`` + ``UNNEST $x := iterate(<path over
   $f>)`` (or a keys-or-members-terminated path) becomes
   ``DATASCAN($x : collection, <path>)`` — the scanner then emits only
   the matched sub-items, one tuple at a time, which is where the
   orders-of-magnitude win of Figure 14 comes from.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    CollectionExpr,
    Expression,
    IterateExpr,
    PathStepExpr,
    VariableRef,
)
from repro.algebra.operators import Assign, DataScan, Unnest
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules.base import (
    RewriteRule,
    replace_operator,
    substitute_variable,
    variable_use_count,
)
from repro.jsonlib.path import Path


def _pure_path_over_variable(expr: Expression) -> tuple[str, Path] | None:
    """Match ``$v<step>...<step>`` and return (variable, path)."""
    if not isinstance(expr, PathStepExpr):
        return None
    base, path = expr.leading_path()
    if isinstance(base, VariableRef):
        return base.name, path
    return None


class IntroduceDataScanRule(RewriteRule):
    """``ASSIGN collection`` + ``UNNEST iterate`` → ``DATASCAN``."""

    name = "introduce-datascan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Unnest) and isinstance(op.input_op, Assign)):
                continue
            assign = op.input_op
            if not isinstance(assign.expression, CollectionExpr):
                continue
            if not (
                isinstance(op.expression, IterateExpr)
                and isinstance(op.expression.input, VariableRef)
                and op.expression.input.name == assign.variable
            ):
                continue
            if variable_use_count(plan, assign.variable) != 1:
                continue
            from repro.algebra.operators import EmptyTupleSource

            if not isinstance(assign.input_op, EmptyTupleSource):
                # DATASCAN is a leaf; it can only replace a source chain
                # that starts the pipeline.
                continue
            scan = DataScan(assign.expression.name, op.variable)
            return replace_operator(plan, op, scan)
        return None


class InlinePathAssignIntoUnnestRule(RewriteRule):
    """Fold ``ASSIGN $s := <path over one variable>`` into the UNNEST
    directly above when ``$s`` has no other use (Figure 7's merge of the
    value expressions)."""

    name = "inline-path-assign-into-unnest"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Unnest) and isinstance(op.input_op, Assign)):
                continue
            assign = op.input_op
            if _pure_path_over_variable(assign.expression) is None:
                continue
            uses_in_unnest = sum(
                1
                for name in _variable_refs(op.expression)
                if name == assign.variable
            )
            if uses_in_unnest != 1:
                continue
            if variable_use_count(plan, assign.variable) != 1:
                continue
            new_expr = substitute_variable(
                op.expression, assign.variable, assign.expression
            )
            merged = Unnest(assign.input_op, op.variable, new_expr)
            return replace_operator(plan, op, merged)
        return None


def _variable_refs(expr: Expression):
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, VariableRef):
            yield node.name
        stack.extend(node.child_expressions())


class MergePathIntoDataScanRule(RewriteRule):
    """``DATASCAN($f)`` + ``UNNEST $x := iterate/keys-or-members(<path
    over $f>)`` → ``DATASCAN($x : collection, <path>)`` (Figure 8)."""

    name = "merge-path-into-datascan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Unnest) and isinstance(op.input_op, DataScan)):
                continue
            scan = op.input_op
            expression = op.expression
            # ``iterate(<path>)`` unnests each item the path yields —
            # exactly the projecting scanner's semantics.  A bare
            # keys-or-members-terminated path is the same thing with the
            # trailing () as the last projection step.
            if isinstance(expression, IterateExpr):
                target = expression.input
            else:
                target = expression
            match = _pure_path_over_variable(target)
            if match is None:
                continue
            variable, path = match
            if variable != scan.variable:
                continue
            if variable_use_count(plan, scan.variable) != 1:
                continue
            merged_path = Path(tuple(scan.project_path) + tuple(path))
            new_scan = DataScan(scan.collection, op.variable, merged_path)
            return replace_operator(plan, op, new_scan)
        return None


PIPELINING_RULES = (
    IntroduceDataScanRule(),
    InlinePathAssignIntoUnnestRule(),
    MergePathIntoDataScanRule(),
)
