"""Path expression rules (Section 4.1 of the paper).

Two rewrites:

1. **Merge keys-or-members into UNNEST** (Figure 3 → Figure 4): the
   two-step pair ``ASSIGN $k := expr()`` + ``UNNEST $x := iterate($k)``
   becomes the single ``UNNEST $x := expr()``, so each matched item is
   emitted as it is found instead of first materializing the whole
   sequence.
2. **Remove promote/data coercions** around arguments whose type is
   statically known (the translator wraps ``json-doc`` arguments in
   ``promote(data(...), string)``; for a string literal both are
   no-ops).
"""

from __future__ import annotations

from repro.algebra.expressions import (
    DataExpr,
    Expression,
    IterateExpr,
    Literal,
    PathStepExpr,
    PromoteExpr,
    VariableRef,
)
from repro.algebra.operators import Assign, Unnest
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules.base import (
    RewriteRule,
    replace_operator,
    rewrite_all_expressions,
    variable_use_count,
)
from repro.jsonlib.path import KeysOrMembers

_TYPE_CHECKS = {
    "string": str,
    "boolean": bool,
    "number": (int, float),
}


def _literal_conforms(literal: Literal, type_name: str) -> bool:
    if type_name == "item":
        return True
    expected = _TYPE_CHECKS.get(type_name)
    if expected is None:
        return False
    return all(isinstance(item, expected) for item in literal.sequence)


class RemovePromoteDataRule(RewriteRule):
    """Drop ``promote``/``data`` around literals of the right type.

    This is the cleanup of the first ASSIGN in Figure 3 ("to further
    clean up our query plan, we can remove the promote and data
    expressions").
    """

    name = "remove-promote-data"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        changed = False

        def visit(expr: Expression) -> Expression:
            nonlocal changed
            if isinstance(expr, DataExpr) and isinstance(expr.input, Literal):
                # Atomization of an atomic literal is the identity.
                if all(
                    not isinstance(item, (dict, list))
                    for item in expr.input.sequence
                ):
                    changed = True
                    return expr.input
            if isinstance(expr, PromoteExpr) and isinstance(expr.input, Literal):
                if _literal_conforms(expr.input, expr.type_name):
                    changed = True
                    return expr.input
            return expr

        rewritten = rewrite_all_expressions(plan, visit)
        return rewritten if changed else None


class MergeKeysOrMembersIntoUnnestRule(RewriteRule):
    """Fuse ``ASSIGN $k := <expr>()`` + ``UNNEST $x := iterate($k)``.

    The ASSIGN's expression must end in a keys-or-members step and its
    variable must be used only by the UNNEST — then the UNNEST can
    evaluate the keys-or-members itself and stream items one at a time
    (Figure 4).
    """

    name = "merge-keys-or-members-into-unnest"

    def apply(self, plan: LogicalPlan) -> LogicalPlan | None:
        for op in plan.iter_operators():
            if not (isinstance(op, Unnest) and isinstance(op.input_op, Assign)):
                continue
            assign = op.input_op
            if not (
                isinstance(op.expression, IterateExpr)
                and isinstance(op.expression.input, VariableRef)
                and op.expression.input.name == assign.variable
            ):
                continue
            if not (
                isinstance(assign.expression, PathStepExpr)
                and isinstance(assign.expression.step, KeysOrMembers)
            ):
                continue
            if variable_use_count(plan, assign.variable) != 1:
                continue
            merged = Unnest(assign.input_op, op.variable, assign.expression)
            return replace_operator(plan, op, merged)
        return None


PATH_RULES = (
    MergeKeysOrMembersIntoUnnestRule(),
    RemovePromoteDataRule(),
)
