"""repro — a parallel and scalable processor for JSON data.

A from-scratch Python reproduction of the EDBT 2018 paper *"A Parallel
and Scalable Processor for JSON Data"* (Pavlopoulou, Carman, Westmann,
Carey, Tsotras): the Apache VXQuery JSONiq extension, including

- a streaming JSON substrate with a path-projecting parser
  (:mod:`repro.jsonlib`),
- a JSONiq-subset frontend (:mod:`repro.jsoniq`),
- an Algebricks-style algebra with the paper's path-expression,
  pipelining, and group-by rewrite-rule families
  (:mod:`repro.algebra`),
- a Hyracks-style partitioned runtime with a simulated cluster
  (:mod:`repro.hyracks`),
- simulated comparison systems — document store, in-memory SQL engine,
  ADM engine (:mod:`repro.baselines`),
- a synthetic NOAA-like dataset generator (:mod:`repro.data`), and
- the benchmark harness regenerating the paper's tables and figures
  (:mod:`repro.bench`).

Quickstart::

    from repro import JsonProcessor

    processor = JsonProcessor.from_directory("/data")
    print(processor.evaluate('count(for $r in '
                             'collection("/sensors")("root")()("results")() '
                             'return $r)'))
"""

from repro.algebra.rules import RewriteConfig
from repro.cache import SCAN_MODES, SegmentCache, resolve_scan_mode
from repro.compiler.pipeline import CompiledQuery, compile_query
from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.data.generator import SensorDataConfig, write_sensor_collection
from repro.errors import (
    AdmissionError,
    BackendError,
    CacheIOError,
    ProcessorClosedError,
    QueryCancelledError,
    QueryTimeoutError,
    RecoveryExhaustedError,
    ReproError,
    SlotFailureError,
    SpillError,
    WorkerCrashError,
)
from repro.hyracks.backends import (
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
)
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.limits import CancellationToken, QueryDeadline
from repro.hyracks.executor import QueryResult
from repro.observability import (
    OperatorProfile,
    ProfileConfig,
    QueryProfile,
    RewriteAudit,
)
from repro.processor import JsonProcessor
from repro.resilience import (
    DegradationReport,
    FaultPlan,
    RecoveryPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.service import (
    QueryRetryEvent,
    QueryService,
    QueryTicket,
    ServiceResponse,
    SlotRestartEvent,
    TenantQuota,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "BackendError",
    "CacheIOError",
    "CancellationToken",
    "ClusterSpec",
    "CollectionCatalog",
    "CompiledQuery",
    "DegradationReport",
    "FaultPlan",
    "InMemorySource",
    "JsonProcessor",
    "OperatorProfile",
    "ProcessBackend",
    "ProcessorClosedError",
    "ProfileConfig",
    "QueryCancelledError",
    "QueryDeadline",
    "QueryProfile",
    "QueryResult",
    "QueryRetryEvent",
    "QueryService",
    "QueryTicket",
    "QueryTimeoutError",
    "RecoveryExhaustedError",
    "RecoveryPolicy",
    "ReproError",
    "ResilienceConfig",
    "RetryPolicy",
    "RewriteAudit",
    "RewriteConfig",
    "SCAN_MODES",
    "SegmentCache",
    "SensorDataConfig",
    "SequentialBackend",
    "ServiceResponse",
    "SlotFailureError",
    "SlotRestartEvent",
    "SpillError",
    "TenantQuota",
    "resolve_scan_mode",
    "ThreadBackend",
    "WorkerCrashError",
    "compile_query",
    "write_sensor_collection",
    "__version__",
]
