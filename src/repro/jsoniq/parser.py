"""Recursive-descent parser for the JSONiq query subset.

Produces the AST of :mod:`repro.jsoniq.ast`.  The grammar (precedence
low to high)::

    Expr        := Flwor | If | Or
    Flwor       := (ForClause | LetClause)+ WhereClause? GroupByClause?
                   OrderByClause? "return" Expr
    Or          := And ("or" And)*
    And         := Comparison ("and" Comparison)*
    Comparison  := Additive (CompOp Additive)?
    Additive    := Multiplicative (("+" | "-") Multiplicative)*
    Multiplicative := Unary (("*" | "div" | "idiv" | "mod") Unary)*
    Unary       := "-"? Postfix
    Postfix     := Primary Lookup*
    Lookup      := "(" ")" | "(" Expr ")"
    Primary     := Literal | Variable | FunctionCall | "(" Expr? ")"
                 | ObjectConstructor | ArrayConstructor

Keywords are recognized by value in context, so names like ``group`` or
``order`` remain usable as function names.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.jsoniq.ast import (
    ArrayConstructorNode,
    AstNode,
    BinaryOpNode,
    FlworNode,
    ForClause,
    FunctionCallNode,
    GroupByClause,
    IfNode,
    LetClause,
    LiteralNode,
    LookupNode,
    ObjectConstructorNode,
    OrderByClause,
    SequenceNode,
    UnaryMinusNode,
    VarNode,
    WhereClause,
)
from repro.jsoniq.lexer import Token, TokenKind, tokenize

_COMPARISON_KEYWORDS = {"eq", "ne", "lt", "le", "gt", "ge"}
_COMPARISON_SYMBOLS = {
    TokenKind.EQUAL: "eq",
    TokenKind.NOT_EQUAL: "ne",
    TokenKind.LESS: "lt",
    TokenKind.LESS_EQUAL: "le",
    TokenKind.GREATER: "gt",
    TokenKind.GREATER_EQUAL: "ge",
}
_MULTIPLICATIVE_KEYWORDS = {"div", "idiv", "mod"}


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.current
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    def at_name(self, *names: str) -> bool:
        token = self.current
        return token.kind is TokenKind.NAME and token.text in names

    def eat_name(self, name: str) -> None:
        if not self.at_name(name):
            token = self.current
            raise ParseError(
                f"expected {name!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        self.advance()

    # -- grammar -------------------------------------------------------------

    def parse_expr(self) -> AstNode:
        if self.at_name("for", "let") and self.peek().kind is TokenKind.VARIABLE:
            return self._parse_flwor()
        if self.at_name("if") and self.peek().kind is TokenKind.LPAREN:
            return self._parse_if()
        return self._parse_or()

    def _parse_flwor(self) -> FlworNode:
        clauses: list = []
        # for / let clauses may interleave, each with comma-continuations.
        while self.at_name("for", "let") and self.peek().kind is TokenKind.VARIABLE:
            keyword = self.advance().text
            while True:
                variable = self.expect(TokenKind.VARIABLE).text
                if keyword == "for":
                    self.eat_name("in")
                    clauses.append(ForClause(variable, self.parse_expr()))
                else:
                    self.expect(TokenKind.BIND)
                    clauses.append(LetClause(variable, self.parse_expr()))
                if (
                    self.current.kind is TokenKind.COMMA
                    and self.peek().kind is TokenKind.VARIABLE
                ):
                    self.advance()
                    continue
                break
        if self.at_name("where"):
            self.advance()
            clauses.append(WhereClause(self.parse_expr()))
        if self.at_name("group"):
            self.advance()
            self.eat_name("by")
            keys: list[tuple[str, AstNode | None]] = []
            while True:
                variable = self.expect(TokenKind.VARIABLE).text
                key_expr = None
                if self.current.kind is TokenKind.BIND:
                    self.advance()
                    key_expr = self.parse_expr()
                keys.append((variable, key_expr))
                if self.current.kind is TokenKind.COMMA:
                    self.advance()
                    continue
                break
            clauses.append(GroupByClause(tuple(keys)))
        if self.at_name("stable"):
            self.advance()
        if self.at_name("order"):
            self.advance()
            self.eat_name("by")
            specs: list[tuple[AstNode, bool]] = []
            while True:
                expr = self.parse_expr()
                descending = False
                if self.at_name("descending"):
                    descending = True
                    self.advance()
                elif self.at_name("ascending"):
                    self.advance()
                specs.append((expr, descending))
                if self.current.kind is TokenKind.COMMA:
                    self.advance()
                    continue
                break
            clauses.append(OrderByClause(tuple(specs)))
        self.eat_name("return")
        return FlworNode(tuple(clauses), self.parse_expr())

    def _parse_if(self) -> IfNode:
        self.eat_name("if")
        self.expect(TokenKind.LPAREN)
        condition = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        self.eat_name("then")
        then_branch = self.parse_expr()
        self.eat_name("else")
        else_branch = self.parse_expr()
        return IfNode(condition, then_branch, else_branch)

    def _parse_or(self) -> AstNode:
        left = self._parse_and()
        while self.at_name("or"):
            self.advance()
            left = BinaryOpNode("or", left, self._parse_and())
        return left

    def _parse_and(self) -> AstNode:
        left = self._parse_comparison()
        while self.at_name("and"):
            self.advance()
            left = BinaryOpNode("and", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> AstNode:
        left = self._parse_additive()
        token = self.current
        op = None
        if token.kind in _COMPARISON_SYMBOLS:
            op = _COMPARISON_SYMBOLS[token.kind]
        elif token.kind is TokenKind.NAME and token.text in _COMPARISON_KEYWORDS:
            op = token.text
        if op is None:
            return left
        self.advance()
        return BinaryOpNode(op, left, self._parse_additive())

    def _parse_additive(self) -> AstNode:
        left = self._parse_multiplicative()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().text
            left = BinaryOpNode(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> AstNode:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind is TokenKind.STAR:
                op = "*"
            elif (
                token.kind is TokenKind.NAME
                and token.text in _MULTIPLICATIVE_KEYWORDS
            ):
                op = token.text
            else:
                return left
            self.advance()
            left = BinaryOpNode(op, left, self._parse_unary())

    def _parse_unary(self) -> AstNode:
        if self.current.kind is TokenKind.MINUS:
            self.advance()
            return UnaryMinusNode(self._parse_unary())
        if self.current.kind is TokenKind.PLUS:
            self.advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> AstNode:
        node = self._parse_primary()
        while self.current.kind is TokenKind.LPAREN:
            self.advance()
            if self.current.kind is TokenKind.RPAREN:
                self.advance()
                node = LookupNode(node, None)
            else:
                key = self.parse_expr()
                self.expect(TokenKind.RPAREN)
                node = LookupNode(node, key)
        return node

    def _parse_primary(self) -> AstNode:
        token = self.current

        if token.kind is TokenKind.STRING:
            self.advance()
            return LiteralNode(token.text)
        if token.kind is TokenKind.INTEGER:
            self.advance()
            return LiteralNode(int(token.text))
        if token.kind is TokenKind.DECIMAL:
            self.advance()
            return LiteralNode(float(token.text))
        if token.kind is TokenKind.VARIABLE:
            self.advance()
            return VarNode(token.text)

        if token.kind is TokenKind.LPAREN:
            self.advance()
            if self.current.kind is TokenKind.RPAREN:
                self.advance()
                return SequenceNode(())
            items = [self.parse_expr()]
            while self.current.kind is TokenKind.COMMA:
                self.advance()
                items.append(self.parse_expr())
            self.expect(TokenKind.RPAREN)
            if len(items) == 1:
                return items[0]
            return SequenceNode(tuple(items))

        if token.kind is TokenKind.LBRACE:
            return self._parse_object_constructor()
        if token.kind is TokenKind.LBRACKET:
            return self._parse_array_constructor()

        if token.kind is TokenKind.NAME:
            if token.text in ("true", "false") and not (
                self.peek().kind is TokenKind.LPAREN
                and self.peek(2).kind is TokenKind.RPAREN
            ):
                self.advance()
                return LiteralNode(token.text == "true")
            if token.text in ("true", "false") and self.peek().kind is TokenKind.LPAREN:
                # XQuery's true() / false() constructors.
                self.advance()
                self.expect(TokenKind.LPAREN)
                self.expect(TokenKind.RPAREN)
                return LiteralNode(token.text == "true")
            if token.text == "null" and self.peek().kind is not TokenKind.LPAREN:
                self.advance()
                return LiteralNode(None)
            if self.peek().kind is TokenKind.LPAREN:
                return self._parse_function_call()
            raise ParseError(
                f"unexpected name {token.text!r}", token.position
            )

        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r}", token.position
        )

    def _parse_function_call(self) -> FunctionCallNode:
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.LPAREN)
        args: list[AstNode] = []
        if self.current.kind is not TokenKind.RPAREN:
            args.append(self.parse_expr())
            while self.current.kind is TokenKind.COMMA:
                self.advance()
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN)
        return FunctionCallNode(name, tuple(args))

    def _parse_object_constructor(self) -> ObjectConstructorNode:
        self.expect(TokenKind.LBRACE)
        pairs: list[tuple[str, AstNode]] = []
        if self.current.kind is not TokenKind.RBRACE:
            while True:
                key_token = self.current
                if key_token.kind in (TokenKind.STRING, TokenKind.NAME):
                    self.advance()
                    key = key_token.text
                else:
                    raise ParseError(
                        f"expected object key, found {key_token.text!r}",
                        key_token.position,
                    )
                self.expect(TokenKind.COLON)
                pairs.append((key, self.parse_expr()))
                if self.current.kind is TokenKind.COMMA:
                    self.advance()
                    continue
                break
        self.expect(TokenKind.RBRACE)
        return ObjectConstructorNode(tuple(pairs))

    def _parse_array_constructor(self) -> ArrayConstructorNode:
        self.expect(TokenKind.LBRACKET)
        members: list[AstNode] = []
        if self.current.kind is not TokenKind.RBRACKET:
            members.append(self.parse_expr())
            while self.current.kind is TokenKind.COMMA:
                self.advance()
                members.append(self.parse_expr())
        self.expect(TokenKind.RBRACKET)
        return ArrayConstructorNode(tuple(members))


def parse_query(text: str) -> AstNode:
    """Parse query *text* into an AST; raises :class:`ParseError`."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    token = parser.current
    if token.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position
        )
    return expr
