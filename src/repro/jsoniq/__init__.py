"""JSONiq frontend: lexer, parser, AST, builtin functions, and translator.

This package is the language layer of the processor — the counterpart of
VXQuery's query parser and translator (Section 3.1 of the paper).  Query
text goes in; a naive logical plan (the shape of Figures 3, 5, and 9)
comes out, ready for the rewrite rules in :mod:`repro.algebra.rules`.
"""

from repro.jsoniq.lexer import tokenize
from repro.jsoniq.parser import parse_query
from repro.jsoniq.translator import translate

__all__ = ["parse_query", "tokenize", "translate"]
