"""Tokenizer for the JSONiq-extension-to-XQuery query subset.

Names may contain embedded hyphens (``year-from-dateTime``), exactly like
XQuery QNames; a ``-`` is only part of a name when it glues two name
fragments together, so ``$a - 1`` still lexes as a minus operator.
Keywords are *not* distinguished here — the parser decides keyword-ness
from context, as XQuery grammars do.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import LexerError


class TokenKind(enum.Enum):
    """Lexical token categories."""

    NAME = "name"
    VARIABLE = "variable"  # $name
    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    BIND = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    EQUAL = "="
    NOT_EQUAL = "!="
    LESS = "<"
    LESS_EQUAL = "<="
    GREATER = ">"
    GREATER_EQUAL = ">="
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.position})"


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:-[A-Za-z_][A-Za-z0-9_]*)*")
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
_WHITESPACE_RE = re.compile(r"\s+")
_COMMENT_RE = re.compile(r"\(:.*?:\)", re.DOTALL)

_TWO_CHAR = {
    ":=": TokenKind.BIND,
    "!=": TokenKind.NOT_EQUAL,
    "<=": TokenKind.LESS_EQUAL,
    ">=": TokenKind.GREATER_EQUAL,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "=": TokenKind.EQUAL,
    "<": TokenKind.LESS,
    ">": TokenKind.GREATER,
}

_STRING_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
}


def _decode_string(raw: str, position: int) -> str:
    """Decode a quoted string literal's escapes."""
    body = raw[1:-1]
    if "\\" not in body:
        return body
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        esc = body[i + 1]
        if esc == "u":
            out.append(chr(int(body[i + 2 : i + 6], 16)))
            i += 6
            continue
        mapped = _STRING_ESCAPES.get(esc)
        if mapped is None:
            raise LexerError(f"invalid string escape \\{esc}", position + i)
        out.append(mapped)
        i += 2
    return "".join(out)


def tokenize(text: str) -> list[Token]:
    """Tokenize query *text*; raises :class:`LexerError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        ws = _WHITESPACE_RE.match(text, pos)
        if ws is not None:
            pos = ws.end()
            continue
        comment = _COMMENT_RE.match(text, pos)
        if comment is not None:
            pos = comment.end()
            continue
        if pos >= n:
            break
        ch = text[pos]

        two = text[pos : pos + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, pos))
            pos += 2
            continue

        if ch == '"':
            match = _STRING_RE.match(text, pos)
            if match is None:
                raise LexerError("unterminated string literal", pos)
            tokens.append(
                Token(TokenKind.STRING, _decode_string(match.group(), pos), pos)
            )
            pos = match.end()
            continue

        if ch == "$":
            match = _NAME_RE.match(text, pos + 1)
            if match is None:
                raise LexerError("invalid variable name", pos)
            tokens.append(Token(TokenKind.VARIABLE, match.group(), pos))
            pos = match.end()
            continue

        if ch.isdigit():
            match = _NUMBER_RE.match(text, pos)
            assert match is not None
            body = match.group()
            kind = (
                TokenKind.DECIMAL
                if any(c in body for c in ".eE")
                else TokenKind.INTEGER
            )
            tokens.append(Token(kind, body, pos))
            pos = match.end()
            continue

        name = _NAME_RE.match(text, pos)
        if name is not None:
            tokens.append(Token(TokenKind.NAME, name.group(), pos))
            pos = name.end()
            continue

        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, pos))
            pos += 1
            continue

        raise LexerError(f"unexpected character {ch!r}", pos)

    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
