"""Builtin function library for the JSONiq-extension-to-XQuery subset.

Every function takes a list of evaluated argument *sequences* and returns
a sequence (the universal value of the algebra).  The registry maps
``(name, arity)`` pairs to callables; lookups happen at evaluation time
through :class:`repro.algebra.context.EvaluationContext`.

The library covers everything the paper's queries use — ``count``,
``avg``, ``dateTime``, the ``*-from-dateTime`` accessors, ``data`` — plus
the general-purpose JSONiq/XQuery functions a user of the processor would
expect (string, numeric, sequence, and JSON-specific functions).
"""

from __future__ import annotations

import datetime
import math
import re
from typing import Callable

from repro.errors import ItemTypeError
from repro.jsonlib.items import Item, canonical_atomic, is_atomic, item_type_name

Sequence = list
FunctionImpl = Callable[[list], Sequence]

# Compact NOAA-style timestamps ("20131225T00:00") and ISO timestamps.
_COMPACT_DATETIME_RE = re.compile(
    r"^(\d{4})(\d{2})(\d{2})T(\d{2}):(\d{2})(?::(\d{2}))?$"
)

# The JSON numeric grammar (RFC 8259 section 6) — what number() accepts
# from strings.  Python's own float()/int() are far more liberal ("inf",
# "nan", "1_000", "0x1f", padded "  12  "), none of which are numbers in
# the JSONiq data model.
_JSON_NUMBER_RE = re.compile(
    r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?\Z"
)


def _singleton(sequence: Sequence, function: str) -> Item:
    if len(sequence) != 1:
        raise ItemTypeError(
            f"{function}() expects a singleton, got {len(sequence)} items"
        )
    return sequence[0]


def _optional_singleton(sequence: Sequence, function: str) -> Item | None:
    if not sequence:
        return None
    return _singleton(sequence, function)


def _as_number(item: Item, function: str) -> int | float:
    if isinstance(item, bool) or not isinstance(item, (int, float)):
        raise ItemTypeError(
            f"{function}() expects a number, got {item_type_name(item)}"
        )
    return item


def _as_string(item: Item, function: str) -> str:
    if not isinstance(item, str):
        raise ItemTypeError(
            f"{function}() expects a string, got {item_type_name(item)}"
        )
    return item


def _string_arg(sequence: Sequence, function: str) -> str:
    """A ``xs:string?`` argument: the XPath F&O string functions treat an
    empty-sequence argument as the zero-length string (F&O 3.1 "if the
    value of $arg is the empty sequence, [...] the zero-length string")."""
    item = _optional_singleton(sequence, function)
    if item is None:
        return ""
    return _as_string(item, function)


def _numbers(sequence: Sequence, function: str) -> list:
    return [_as_number(item, function) for item in sequence]


# ---------------------------------------------------------------------------
# Aggregates (scalar forms; incremental forms live in the runtime)
# ---------------------------------------------------------------------------


def fn_count(args: list) -> Sequence:
    """``count($seq)`` — number of items in the sequence."""
    return [len(args[0])]


def fn_sum(args: list) -> Sequence:
    """``sum($seq)`` — numeric sum; 0 for the empty sequence."""
    return [sum(_numbers(args[0], "sum"))]


def fn_avg(args: list) -> Sequence:
    """``avg($seq)`` — numeric mean; empty for the empty sequence."""
    values = _numbers(args[0], "avg")
    if not values:
        return []
    return [sum(values) / len(values)]


def fn_min(args: list) -> Sequence:
    """``min($seq)``; empty for the empty sequence."""
    values = _numbers(args[0], "min")
    return [min(values)] if values else []


def fn_max(args: list) -> Sequence:
    """``max($seq)``; empty for the empty sequence."""
    values = _numbers(args[0], "max")
    return [max(values)] if values else []


# ---------------------------------------------------------------------------
# Date / time
# ---------------------------------------------------------------------------


def parse_datetime(text: str) -> datetime.datetime:
    """Parse an ISO or compact NOAA-style (``20131225T00:00``) timestamp."""
    match = _COMPACT_DATETIME_RE.match(text)
    if match is not None:
        year, month, day, hour, minute = (int(g) for g in match.groups()[:5])
        second = int(match.group(6) or 0)
        return datetime.datetime(year, month, day, hour, minute, second)
    try:
        return datetime.datetime.fromisoformat(text)
    except ValueError:
        raise ItemTypeError(f"cannot parse dateTime from {text!r}") from None


def fn_datetime(args: list) -> Sequence:
    """``dateTime($s)`` — parse a timestamp string; empty in, empty out."""
    item = _optional_singleton(args[0], "dateTime")
    if item is None:
        return []
    if isinstance(item, datetime.datetime):
        return [item]
    return [parse_datetime(_as_string(item, "dateTime"))]


def _datetime_component(component: str) -> FunctionImpl:
    def accessor(args: list) -> Sequence:
        item = _optional_singleton(args[0], f"{component}-from-dateTime")
        if item is None:
            return []
        if not isinstance(item, datetime.datetime):
            raise ItemTypeError(
                f"{component}-from-dateTime() expects a dateTime, "
                f"got {item_type_name(item)}"
            )
        return [getattr(item, component)]

    return accessor


# ---------------------------------------------------------------------------
# Atomization / types
# ---------------------------------------------------------------------------


def fn_data(args: list) -> Sequence:
    """``data($seq)`` — atomization; errors on objects and arrays."""
    out = []
    for item in args[0]:
        if not is_atomic(item):
            raise ItemTypeError(f"cannot atomize a {item_type_name(item)} item")
        out.append(item)
    return out


def fn_string(args: list) -> Sequence:
    """``string($x)`` — string form of an atomic item."""
    if not args[0]:
        return [""]
    item = _singleton(args[0], "string")
    if item is None:
        return ["null"]
    if isinstance(item, str):
        return [item]
    if isinstance(item, bool):
        return ["true" if item else "false"]
    if item is None:
        return ["null"]
    if isinstance(item, (int, float)):
        return [repr(item) if isinstance(item, float) else str(item)]
    if isinstance(item, datetime.datetime):
        return [item.isoformat()]
    raise ItemTypeError(f"string() over a {item_type_name(item)} item")


def fn_number(args: list) -> Sequence:
    """``number($x)`` — numeric form of an atomic item (NaN-free variant:
    unconvertible input is a type error rather than NaN).

    String input must match the JSON numeric grammar exactly; Python's
    liberal ``float()`` extensions ("inf", "nan", "1_000", padded
    whitespace, hex) are type errors, keeping ``number()`` closed over
    the values the parser itself can produce.

    XPath F&O 4.5.1 defines ``fn:number(())`` as NaN, and JSONiq gives
    ``number(null)`` NaN as well; in this NaN-free variant both spec-NaN
    results map to the empty sequence, so a predicate like
    ``number($m("value")) gt 0`` over a missing or null key is simply
    false instead of an error.
    """
    if not args[0]:
        return []
    item = _singleton(args[0], "number")
    if item is None:
        return []
    if isinstance(item, bool):
        return [1 if item else 0]
    if isinstance(item, (int, float)):
        return [item]
    if isinstance(item, str):
        if _JSON_NUMBER_RE.match(item) is None:
            raise ItemTypeError(f"number() cannot convert {item!r}")
        if any(mark in item for mark in ".eE"):
            return [float(item)]
        return [int(item)]
    raise ItemTypeError(f"number() over a {item_type_name(item)} item")


def fn_boolean(args: list) -> Sequence:
    """``boolean($seq)`` — effective boolean value."""
    from repro.algebra.expressions import effective_boolean_value

    return [effective_boolean_value(args[0])]


def fn_not(args: list) -> Sequence:
    """``not($seq)`` — negated effective boolean value."""
    from repro.algebra.expressions import effective_boolean_value

    return [not effective_boolean_value(args[0])]


# ---------------------------------------------------------------------------
# Numeric
# ---------------------------------------------------------------------------


def _numeric_unary(name: str, op: Callable) -> FunctionImpl:
    def impl(args: list) -> Sequence:
        item = _optional_singleton(args[0], name)
        if item is None:
            return []
        return [op(_as_number(item, name))]

    return impl


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


def fn_concat(args: list) -> Sequence:
    """``concat(...)`` — concatenation of the string forms of arguments."""
    parts = []
    for arg in args:
        item = _optional_singleton(arg, "concat")
        if item is None:
            continue
        parts.append(fn_string([[item]])[0])
    return ["".join(parts)]


def fn_string_join(args: list) -> Sequence:
    """``string-join($seq, $sep)``."""
    separator = _as_string(_singleton(args[1], "string-join"), "string-join")
    parts = [_as_string(item, "string-join") for item in args[0]]
    return [separator.join(parts)]


def fn_substring(args: list) -> Sequence:
    """``substring($s, $start[, $length])`` — 1-based, XQuery style.

    Returns the characters at positions ``p`` with
    ``p >= round($start)`` and (three-argument form)
    ``p < round($start) + round($length)``, where ``round`` is XQuery's
    round-half-up (``floor(x + 0.5)``) — so fractional arguments round
    instead of truncating, and NaN/±INF arguments follow the spec's
    comparison semantics (any comparison with NaN is false).
    """
    text = _string_arg(args[0], "substring")
    start = _xquery_round(
        _as_number(_singleton(args[1], "substring"), "substring")
    )
    if isinstance(start, float) and (math.isnan(start) or start == math.inf):
        # p >= NaN and p >= +INF both hold for no position.
        return [""]
    lower = 1 if start == -math.inf else max(int(start), 1)
    if len(args) == 3:
        length = _xquery_round(
            _as_number(_singleton(args[2], "substring"), "substring")
        )
        upper = start + length  # exclusive bound on p
        if isinstance(upper, float) and math.isnan(upper):
            # -INF start with +INF length: p < NaN holds nowhere.
            return [""]
        if upper == -math.inf:
            return [""]
        if upper != math.inf:
            return [text[lower - 1 : int(upper) - 1]]
    return [text[lower - 1 :]]


def _xquery_round(value: int | float) -> int | float:
    """XQuery ``fn:round``: half-up toward +INF; NaN/±INF propagate."""
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return value
    return math.floor(value + 0.5)


def fn_string_length(args: list) -> Sequence:
    """``string-length($s)``."""
    item = _optional_singleton(args[0], "string-length")
    if item is None:
        return [0]
    return [len(_as_string(item, "string-length"))]


def fn_contains(args: list) -> Sequence:
    """``contains($s, $needle)`` — empty arguments are zero-length
    strings (F&O 5.5.1), so ``contains((), "x")`` is false and
    ``contains($s, ())`` is true."""
    text = _string_arg(args[0], "contains")
    needle = _string_arg(args[1], "contains")
    return [needle in text]


def fn_starts_with(args: list) -> Sequence:
    """``starts-with($s, $prefix)`` — empty arguments are zero-length
    strings (F&O 5.5.2)."""
    text = _string_arg(args[0], "starts-with")
    prefix = _string_arg(args[1], "starts-with")
    return [text.startswith(prefix)]


def fn_upper_case(args: list) -> Sequence:
    """``upper-case($s)`` — ``upper-case(())`` is ``""`` (F&O 5.4.7)."""
    return [_string_arg(args[0], "upper-case").upper()]


def fn_lower_case(args: list) -> Sequence:
    """``lower-case($s)`` — ``lower-case(())`` is ``""`` (F&O 5.4.8)."""
    return [_string_arg(args[0], "lower-case").lower()]


# ---------------------------------------------------------------------------
# Sequences
# ---------------------------------------------------------------------------


def fn_empty(args: list) -> Sequence:
    """``empty($seq)``."""
    return [not args[0]]


def fn_exists(args: list) -> Sequence:
    """``exists($seq)``."""
    return [bool(args[0])]


def fn_head(args: list) -> Sequence:
    """``head($seq)`` — first item or empty."""
    return args[0][:1]


def fn_tail(args: list) -> Sequence:
    """``tail($seq)`` — everything but the first item."""
    return args[0][1:]


def fn_reverse(args: list) -> Sequence:
    """``reverse($seq)``."""
    return list(reversed(args[0]))


def fn_distinct_values(args: list) -> Sequence:
    """``distinct-values($seq)`` — order-preserving dedup of atomics.

    Equality is value-based across the numeric types (XQuery: ``1`` and
    ``1.0`` are the same value), while booleans stay distinct from the
    numbers they'd convert to — both via the one canonical atomic key
    shared with group-by keys and join buckets
    (:func:`repro.jsonlib.items.canonical_atomic`).
    """
    seen: set = set()
    out = []
    for item in args[0]:
        if not is_atomic(item):
            raise ItemTypeError(
                f"distinct-values() over a {item_type_name(item)} item"
            )
        key = canonical_atomic(item)
        if key not in seen:
            seen.add(key)
            out.append(item)
    return out


# ---------------------------------------------------------------------------
# JSONiq object/array functions
# ---------------------------------------------------------------------------


def fn_keys(args: list) -> Sequence:
    """``keys($seq)`` — keys of objects (members ignored for non-objects)."""
    out = []
    for item in args[0]:
        if isinstance(item, dict):
            out.extend(item.keys())
    return out


def fn_members(args: list) -> Sequence:
    """``members($seq)`` — members of arrays."""
    out = []
    for item in args[0]:
        if isinstance(item, list):
            out.extend(item)
    return out


def fn_size(args: list) -> Sequence:
    """``size($array)`` — number of members; null-safe JSONiq style."""
    item = _optional_singleton(args[0], "size")
    if item is None:
        return []
    if not isinstance(item, list):
        raise ItemTypeError(f"size() expects an array, got {item_type_name(item)}")
    return [len(item)]


def fn_flatten(args: list) -> Sequence:
    """``flatten($seq)`` — recursively flatten arrays into a sequence."""
    out: list = []
    stack = list(reversed(args[0]))
    while stack:
        item = stack.pop()
        if isinstance(item, list):
            stack.extend(reversed(item))
        else:
            out.append(item)
    return out


def fn_null(args: list) -> Sequence:
    """``null()`` — the JSON null item."""
    return [None]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BUILTIN_FUNCTIONS: dict[tuple[str, int], FunctionImpl] = {
    ("count", 1): fn_count,
    ("sum", 1): fn_sum,
    ("avg", 1): fn_avg,
    ("min", 1): fn_min,
    ("max", 1): fn_max,
    ("dateTime", 1): fn_datetime,
    ("year-from-dateTime", 1): _datetime_component("year"),
    ("month-from-dateTime", 1): _datetime_component("month"),
    ("day-from-dateTime", 1): _datetime_component("day"),
    ("hours-from-dateTime", 1): _datetime_component("hour"),
    ("minutes-from-dateTime", 1): _datetime_component("minute"),
    ("data", 1): fn_data,
    ("string", 1): fn_string,
    ("number", 1): fn_number,
    ("boolean", 1): fn_boolean,
    ("not", 1): fn_not,
    ("abs", 1): _numeric_unary("abs", abs),
    ("floor", 1): _numeric_unary("floor", math.floor),
    ("ceiling", 1): _numeric_unary("ceiling", math.ceil),
    ("round", 1): _numeric_unary("round", lambda x: math.floor(x + 0.5)),
    ("string-join", 2): fn_string_join,
    ("substring", 2): fn_substring,
    ("substring", 3): fn_substring,
    ("string-length", 1): fn_string_length,
    ("contains", 2): fn_contains,
    ("starts-with", 2): fn_starts_with,
    ("upper-case", 1): fn_upper_case,
    ("lower-case", 1): fn_lower_case,
    ("empty", 1): fn_empty,
    ("exists", 1): fn_exists,
    ("head", 1): fn_head,
    ("tail", 1): fn_tail,
    ("reverse", 1): fn_reverse,
    ("distinct-values", 1): fn_distinct_values,
    ("keys", 1): fn_keys,
    ("members", 1): fn_members,
    ("size", 1): fn_size,
    ("flatten", 1): fn_flatten,
    ("null", 0): fn_null,
}

# concat is variadic in XQuery; register a practical range of arities.
for _arity in range(2, 9):
    BUILTIN_FUNCTIONS[("concat", _arity)] = fn_concat

#: Function names that the translator treats as aggregates when applied
#: to a nested FLWOR (Section 4.3's scalar-to-aggregate conversion).
AGGREGATE_FUNCTION_NAMES = frozenset(["count", "sum", "avg", "min", "max"])
