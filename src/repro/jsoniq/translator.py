"""AST → naive logical plan translation.

The translator is deliberately *naive*: it produces exactly the plan
shapes the paper shows **before** rewriting (Figures 3, 5, and 9), so
that the rewrite rules of :mod:`repro.algebra.rules` have the patterns
they expect and the before/after experiments measure the same gap the
paper measures.

Key naive shapes:

- a ``for`` over a collection path becomes ``ASSIGN collection`` +
  ``UNNEST iterate`` + ``ASSIGN`` (value steps) and, for a trailing
  keys-or-members, the *two-step* ``ASSIGN keys-or-members`` +
  ``UNNEST iterate`` pair (Figure 3 / 5);
- ``json-doc`` arguments get wrapped in ``promote(data(...), string)``
  (Figure 3's first ASSIGN);
- ``group by`` materializes each group with a nested
  ``AGGREGATE sequence`` and re-binds grouped variables through
  ``ASSIGN treat(..., item)`` (Figure 9);
- an aggregate function over a nested FLWOR becomes a SUBPLAN whose root
  aggregates incrementally (Figure 11) — at top level it is inlined into
  the main pipeline;
- a second, independent ``for`` becomes a JOIN with condition ``true``
  (a cross product); built-in rules later fold SELECT predicates into it.
"""

from __future__ import annotations

from repro.errors import TranslationError, UnboundVariableError
from repro.algebra.expressions import (
    AndExpr,
    ArithmeticExpr,
    ArrayConstructorExpr,
    CollectionExpr,
    ComparisonExpr,
    DataExpr,
    Expression,
    FunctionCallExpr,
    IfExpr,
    IterateExpr,
    JsonDocExpr,
    Literal,
    ObjectConstructorExpr,
    OrExpr,
    PathStepExpr,
    PromoteExpr,
    SequenceExpr,
    TreatExpr,
    TRUE_LITERAL,
    VariableRef,
    keys_or_members,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateSpec,
    Assign,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    NestedTupleSource,
    Operator,
    Select,
    Sort,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan, VariableGenerator
from repro.jsonlib.path import KeysOrMembers, ValueByIndex, ValueByKey
from repro.jsoniq.ast import (
    ArrayConstructorNode,
    AstNode,
    BinaryOpNode,
    FlworNode,
    ForClause,
    FunctionCallNode,
    GroupByClause,
    IfNode,
    LetClause,
    LiteralNode,
    LookupNode,
    ObjectConstructorNode,
    OrderByClause,
    SequenceNode,
    UnaryMinusNode,
    VarNode,
    WhereClause,
)
from repro.jsoniq.functions import AGGREGATE_FUNCTION_NAMES

_COMPARISON_OPS = frozenset(["eq", "ne", "lt", "le", "gt", "ge"])
_ARITHMETIC_OPS = frozenset(["+", "-", "*", "div", "idiv", "mod"])


def ast_free_variables(node: AstNode, bound: frozenset = frozenset()) -> set[str]:
    """Free query-variable names of an AST node."""
    if isinstance(node, VarNode):
        return set() if node.name in bound else {node.name}
    if isinstance(node, LiteralNode):
        return set()
    if isinstance(node, FlworNode):
        free: set[str] = set()
        inner_bound = set(bound)
        for clause in node.clauses:
            if isinstance(clause, ForClause):
                free |= ast_free_variables(clause.source, frozenset(inner_bound))
                inner_bound.add(clause.variable)
            elif isinstance(clause, LetClause):
                free |= ast_free_variables(clause.value, frozenset(inner_bound))
                inner_bound.add(clause.variable)
            elif isinstance(clause, WhereClause):
                free |= ast_free_variables(clause.condition, frozenset(inner_bound))
            elif isinstance(clause, GroupByClause):
                for variable, expr in clause.keys:
                    if expr is not None:
                        free |= ast_free_variables(expr, frozenset(inner_bound))
                    inner_bound.add(variable)
            elif isinstance(clause, OrderByClause):
                for expr, _ in clause.specs:
                    free |= ast_free_variables(expr, frozenset(inner_bound))
        free |= ast_free_variables(node.return_expr, frozenset(inner_bound))
        return free
    # Generic structural nodes.
    free = set()
    for child in _ast_children(node):
        free |= ast_free_variables(child, bound)
    return free


def _ast_children(node: AstNode) -> list[AstNode]:
    if isinstance(node, FunctionCallNode):
        return list(node.args)
    if isinstance(node, LookupNode):
        return [node.base] + ([node.key] if node.key is not None else [])
    if isinstance(node, BinaryOpNode):
        return [node.left, node.right]
    if isinstance(node, UnaryMinusNode):
        return [node.operand]
    if isinstance(node, SequenceNode):
        return list(node.items)
    if isinstance(node, ObjectConstructorNode):
        return [expr for _, expr in node.pairs]
    if isinstance(node, ArrayConstructorNode):
        return list(node.members)
    if isinstance(node, IfNode):
        return [node.condition, node.then_branch, node.else_branch]
    return []


class _PathChain:
    """A decomposed source path: base call plus static lookup steps."""

    __slots__ = ("kind", "argument", "steps")

    def __init__(self, kind: str, argument: str, steps: list):
        self.kind = kind  # "collection" | "json-doc"
        self.argument = argument
        self.steps = steps


def _decompose_source_path(node: AstNode) -> _PathChain | None:
    """Recognize ``collection("/x")("a")()...`` / ``json-doc(...)...``.

    Returns None when the node is not such a chain (dynamic keys, other
    bases), in which case the generic translation applies.
    """
    steps: list = []
    while isinstance(node, LookupNode):
        if node.key is None:
            steps.append(KeysOrMembers())
        elif isinstance(node.key, LiteralNode) and isinstance(node.key.value, str):
            steps.append(ValueByKey(node.key.value))
        elif isinstance(node.key, LiteralNode) and isinstance(node.key.value, int):
            steps.append(ValueByIndex(node.key.value))
        else:
            return None
        node = node.base
    steps.reverse()
    if (
        isinstance(node, FunctionCallNode)
        and node.name in ("collection", "json-doc")
        and len(node.args) == 1
        and isinstance(node.args[0], LiteralNode)
        and isinstance(node.args[0].value, str)
    ):
        return _PathChain(node.name, node.args[0].value, steps)
    return None


class Translator:
    """Translates one query AST into a naive :class:`LogicalPlan`."""

    def __init__(self) -> None:
        self._vargen = VariableGenerator()
        self._used_names: set[str] = set()

    # -- public --------------------------------------------------------------

    def translate(self, ast: AstNode) -> LogicalPlan:
        """Translate a full query."""
        chain: Operator = EmptyTupleSource()
        scope: dict[str, str] = {}
        if isinstance(ast, FlworNode):
            chain, result_var = self._translate_flwor(ast, chain, scope)
        elif _decompose_source_path(ast) is not None:
            # A bare path query like Listing 2's bookstore example gets
            # the unnesting plan of Figure 3, as if it were
            # ``for $item in <path> return $item``.
            implicit = ForClause("item", ast)
            chain = self._translate_for_source(implicit, chain, scope)
            result_var = scope["item"]
        else:
            expr, chain = self._translate_expression(ast, chain, scope)
            result_var = self._fresh("result")
            chain = Assign(chain, result_var, expr)
        root = DistributeResult(chain, [VariableRef(result_var)])
        return LogicalPlan(root)

    # -- naming --------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        return self._vargen.fresh(prefix)

    def _bind_name(self, query_var: str) -> str:
        """Plan variable for a query variable (stable when unambiguous)."""
        if query_var not in self._used_names:
            self._used_names.add(query_var)
            return query_var
        return self._fresh(query_var)

    # -- FLWOR ---------------------------------------------------------------

    def _translate_flwor(
        self, flwor: FlworNode, chain: Operator, outer_scope: dict[str, str]
    ) -> tuple[Operator, str]:
        previous_flwor = self._current_flwor
        self._current_flwor = flwor
        try:
            scope = dict(outer_scope)
            chain = self._translate_clauses(flwor.clauses, chain, scope)
            return_expr, chain = self._translate_expression(
                flwor.return_expr, chain, scope
            )
            result_var = self._fresh("ret")
            chain = Assign(chain, result_var, return_expr)
            return chain, result_var
        finally:
            self._current_flwor = previous_flwor

    def _translate_clauses(
        self, clauses, chain: Operator, scope: dict[str, str]
    ) -> Operator:
        saw_for = not isinstance(chain, (EmptyTupleSource,))
        for clause in clauses:
            if isinstance(clause, ForClause):
                chain = self._translate_for(clause, chain, scope, saw_for)
                saw_for = True
            elif isinstance(clause, LetClause):
                expr, chain = self._translate_expression(clause.value, chain, scope)
                plan_var = self._bind_name(clause.variable)
                chain = Assign(chain, plan_var, expr)
                scope[clause.variable] = plan_var
            elif isinstance(clause, WhereClause):
                condition, chain = self._translate_expression(
                    clause.condition, chain, scope
                )
                chain = Select(chain, condition)
            elif isinstance(clause, GroupByClause):
                chain = self._translate_group_by(clause, chain, scope, clauses)
            elif isinstance(clause, OrderByClause):
                specs = []
                for expr_ast, descending in clause.specs:
                    expr, chain = self._translate_expression(
                        expr_ast, chain, scope
                    )
                    specs.append((expr, descending))
                chain = Sort(chain, specs)
            else:  # pragma: no cover - clause types are closed
                raise TranslationError(f"unknown clause {clause!r}")
        return chain

    def _translate_for(
        self,
        clause: ForClause,
        chain: Operator,
        scope: dict[str, str],
        saw_for: bool,
    ) -> Operator:
        free = ast_free_variables(clause.source)
        independent = not (free & scope.keys())
        if independent and saw_for:
            # An independent second `for` is a cross product: build the
            # right branch on its own EMPTY-TUPLE-SOURCE and JOIN.  The
            # built-in rules later fold SELECT equi-predicates into it.
            right_scope: dict[str, str] = {}
            right = self._translate_for_source(
                clause, EmptyTupleSource(), right_scope
            )
            scope[clause.variable] = right_scope[clause.variable]
            return Join(chain, right, TRUE_LITERAL)
        return self._translate_for_source(clause, chain, scope)

    def _translate_for_source(
        self, clause: ForClause, chain: Operator, scope: dict[str, str]
    ) -> Operator:
        plan_var = self._bind_name(clause.variable)
        source = _decompose_source_path(clause.source)
        if source is not None and source.kind == "collection":
            chain = self._translate_collection_source(source, chain, plan_var)
        elif source is not None:
            chain = self._translate_document_source(source, chain, plan_var)
        else:
            expr, chain = self._translate_expression(clause.source, chain, scope)
            if not isinstance(expr, VariableRef):
                seq_var = self._fresh("seq")
                chain = Assign(chain, seq_var, expr)
                expr = VariableRef(seq_var)
            chain = Unnest(chain, plan_var, IterateExpr(expr))
        scope[clause.variable] = plan_var
        return chain

    def _translate_collection_source(
        self, source: _PathChain, chain: Operator, plan_var: str
    ) -> Operator:
        """Figure 5's naive shape: ASSIGN collection + UNNEST iterate +
        ASSIGN value-steps + the two-step keys-or-members."""
        coll_var = self._fresh("coll")
        chain = Assign(chain, coll_var, CollectionExpr(source.argument))
        file_var = self._fresh("file")
        chain = Unnest(chain, file_var, IterateExpr(VariableRef(coll_var)))
        return self._translate_path_steps(
            chain, VariableRef(file_var), source.steps, plan_var
        )

    def _translate_document_source(
        self, source: _PathChain, chain: Operator, plan_var: str
    ) -> Operator:
        """Figure 3's naive shape: one ASSIGN holding promote/data around
        the json-doc argument plus the leading value steps."""
        doc_expr = JsonDocExpr(
            PromoteExpr(DataExpr(Literal.of(source.argument)), "string")
        )
        return self._translate_path_steps(chain, doc_expr, source.steps, plan_var)

    def _translate_path_steps(
        self,
        chain: Operator,
        base: Expression,
        steps: list,
        plan_var: str,
    ) -> Operator:
        trailing_km = bool(steps) and isinstance(steps[-1], KeysOrMembers)
        value_steps = steps[:-1] if trailing_km else steps
        current: Expression = base
        if value_steps:
            current = PathStepExpr.chain(current, value_steps)
        if not isinstance(current, VariableRef):
            seq_var = self._fresh("seq")
            chain = Assign(chain, seq_var, current)
            current = VariableRef(seq_var)
        if trailing_km:
            # The two-step evaluation of Figure 3: materialize the
            # keys-or-members sequence, then iterate it.
            km_var = self._fresh("km")
            chain = Assign(chain, km_var, keys_or_members(current))
            current = VariableRef(km_var)
        return Unnest(chain, plan_var, IterateExpr(current))

    def _translate_group_by(
        self,
        clause: GroupByClause,
        chain: Operator,
        scope: dict[str, str],
        all_clauses,
    ) -> Operator:
        # Evaluate key expressions with ASSIGNs below the GROUP-BY
        # (Figure 9's ASSIGN for the author key).
        key_pairs: list[tuple[str, Expression]] = []
        key_query_vars: set[str] = set()
        for query_var, key_ast in clause.keys:
            if key_ast is None:
                if query_var not in scope:
                    raise UnboundVariableError(query_var)
                key_var = scope[query_var]
            else:
                expr, chain = self._translate_expression(key_ast, chain, scope)
                key_var = self._bind_name(query_var)
                chain = Assign(chain, key_var, expr)
            key_pairs.append((key_var, VariableRef(key_var)))
            key_query_vars.add(query_var)

        # Variables still needed above the GROUP-BY get materialized with
        # a nested AGGREGATE sequence, then re-bound via ASSIGN treat
        # (Figure 9) — the shape the group-by rules clean up.
        needed = self._variables_needed_after_group_by(clause, all_clauses)
        grouped = [
            query_var
            for query_var in needed
            if query_var in scope and query_var not in key_query_vars
        ]
        specs = []
        rebinds: list[tuple[str, str]] = []
        for query_var in grouped:
            agg_var = self._fresh("seqagg")
            specs.append(
                AggregateSpec(agg_var, "sequence", VariableRef(scope[query_var]))
            )
            rebinds.append((query_var, agg_var))
        if not specs:
            # GROUP-BY always carries an inner focus; aggregate the key
            # itself so each group yields one tuple even when no grouped
            # variable is needed above.
            specs.append(
                AggregateSpec(self._fresh("seqagg"), "sequence", key_pairs[0][1])
            )
        nested = Aggregate(NestedTupleSource(), specs)
        chain = GroupBy(chain, key_pairs, nested)
        for query_var, agg_var in rebinds:
            treat_var = self._bind_name(query_var)
            chain = Assign(
                chain, treat_var, TreatExpr(VariableRef(agg_var), "item")
            )
            scope[query_var] = treat_var
        for (key_var, _), (query_var, _) in zip(key_pairs, clause.keys):
            scope[query_var] = key_var
        return chain

    def _variables_needed_after_group_by(self, clause, all_clauses) -> list[str]:
        """Query variables referenced by clauses after the group-by."""
        index = list(all_clauses).index(clause)
        needed: set[str] = set()
        for later in list(all_clauses)[index + 1 :]:
            if isinstance(later, WhereClause):
                needed |= ast_free_variables(later.condition)
            elif isinstance(later, LetClause):
                needed |= ast_free_variables(later.value)
            elif isinstance(later, ForClause):
                needed |= ast_free_variables(later.source)
            elif isinstance(later, GroupByClause):
                for _, expr in later.keys:
                    if expr is not None:
                        needed |= ast_free_variables(expr)
        flwor = self._current_flwor
        if flwor is not None:
            needed |= ast_free_variables(flwor.return_expr)
        return sorted(needed)

    # -- expressions ----------------------------------------------------------

    _current_flwor: FlworNode | None = None

    def _translate_expression(
        self, node: AstNode, chain: Operator, scope: dict[str, str]
    ) -> tuple[Expression, Operator]:
        if isinstance(node, LiteralNode):
            return Literal.of(node.value), chain
        if isinstance(node, VarNode):
            if node.name not in scope:
                raise UnboundVariableError(node.name)
            return VariableRef(scope[node.name]), chain
        if isinstance(node, LookupNode):
            return self._translate_lookup(node, chain, scope)
        if isinstance(node, FunctionCallNode):
            return self._translate_function_call(node, chain, scope)
        if isinstance(node, BinaryOpNode):
            return self._translate_binary(node, chain, scope)
        if isinstance(node, UnaryMinusNode):
            operand, chain = self._translate_expression(node.operand, chain, scope)
            return ArithmeticExpr("-", Literal.of(0), operand), chain
        if isinstance(node, SequenceNode):
            exprs = []
            for item in node.items:
                expr, chain = self._translate_expression(item, chain, scope)
                exprs.append(expr)
            return SequenceExpr(exprs), chain
        if isinstance(node, ObjectConstructorNode):
            pairs = []
            for key, value_ast in node.pairs:
                expr, chain = self._translate_expression(value_ast, chain, scope)
                pairs.append((key, expr))
            return ObjectConstructorExpr(pairs), chain
        if isinstance(node, ArrayConstructorNode):
            members = []
            for member_ast in node.members:
                expr, chain = self._translate_expression(member_ast, chain, scope)
                members.append(expr)
            return ArrayConstructorExpr(members), chain
        if isinstance(node, IfNode):
            condition, chain = self._translate_expression(
                node.condition, chain, scope
            )
            then_branch, chain = self._translate_expression(
                node.then_branch, chain, scope
            )
            else_branch, chain = self._translate_expression(
                node.else_branch, chain, scope
            )
            return IfExpr(condition, then_branch, else_branch), chain
        if isinstance(node, FlworNode):
            return self._translate_nested_flwor("sequence", node, chain, scope)
        raise TranslationError(f"cannot translate AST node {node!r}")

    def _translate_lookup(
        self, node: LookupNode, chain: Operator, scope: dict[str, str]
    ) -> tuple[Expression, Operator]:
        base, chain = self._translate_expression(node.base, chain, scope)
        if node.key is None:
            return keys_or_members(base), chain
        if isinstance(node.key, LiteralNode) and isinstance(node.key.value, str):
            return PathStepExpr(base, ValueByKey(node.key.value)), chain
        if isinstance(node.key, LiteralNode) and isinstance(node.key.value, int):
            return PathStepExpr(base, ValueByIndex(node.key.value)), chain
        raise TranslationError(
            "dynamic lookup keys are not supported; use a literal key"
        )

    def _translate_function_call(
        self, node: FunctionCallNode, chain: Operator, scope: dict[str, str]
    ) -> tuple[Expression, Operator]:
        if node.name == "collection" and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, LiteralNode) and isinstance(arg.value, str):
                return CollectionExpr(arg.value), chain
            raise TranslationError("collection() requires a literal string")
        if node.name == "json-doc" and len(node.args) == 1:
            expr, chain = self._translate_expression(node.args[0], chain, scope)
            return (
                JsonDocExpr(PromoteExpr(DataExpr(expr), "string")),
                chain,
            )
        if (
            node.name in AGGREGATE_FUNCTION_NAMES
            and len(node.args) == 1
            and isinstance(node.args[0], FlworNode)
        ):
            return self._translate_nested_flwor(
                node.name, node.args[0], chain, scope
            )
        args = []
        for arg_ast in node.args:
            expr, chain = self._translate_expression(arg_ast, chain, scope)
            args.append(expr)
        return FunctionCallExpr(node.name, args), chain

    def _translate_binary(
        self, node: BinaryOpNode, chain: Operator, scope: dict[str, str]
    ) -> tuple[Expression, Operator]:
        left, chain = self._translate_expression(node.left, chain, scope)
        right, chain = self._translate_expression(node.right, chain, scope)
        if node.op == "and":
            return AndExpr([left, right]), chain
        if node.op == "or":
            return OrExpr([left, right]), chain
        if node.op in _COMPARISON_OPS:
            return ComparisonExpr(node.op, left, right), chain
        if node.op in _ARITHMETIC_OPS:
            return ArithmeticExpr(node.op, left, right), chain
        raise TranslationError(f"unknown operator {node.op!r}")

    def _translate_nested_flwor(
        self,
        aggregate: str,
        flwor: FlworNode,
        chain: Operator,
        scope: dict[str, str],
    ) -> tuple[Expression, Operator]:
        """An aggregate over a nested FLWOR.

        At top level (empty scope over EMPTY-TUPLE-SOURCE) the FLWOR is
        inlined into the main pipeline and capped with an AGGREGATE —
        the shape that lets the two-step aggregation parallelize Q2's
        ``avg``.  Otherwise it becomes a SUBPLAN (Figure 11).
        """
        previous_flwor = self._current_flwor
        self._current_flwor = flwor
        try:
            result_var = self._fresh("agg")
            if not scope and isinstance(chain, EmptyTupleSource):
                inner_scope: dict[str, str] = {}
                inner_chain = self._translate_clauses(
                    flwor.clauses, chain, inner_scope
                )
                return_expr, inner_chain = self._translate_expression(
                    flwor.return_expr, inner_chain, inner_scope
                )
                chain = Aggregate(
                    inner_chain,
                    [AggregateSpec(result_var, aggregate, return_expr)],
                )
                return VariableRef(result_var), chain
            nested_scope = dict(scope)
            nested: Operator = NestedTupleSource()
            nested = self._translate_clauses(flwor.clauses, nested, nested_scope)
            return_expr, nested = self._translate_expression(
                flwor.return_expr, nested, nested_scope
            )
            nested = Aggregate(
                nested, [AggregateSpec(result_var, aggregate, return_expr)]
            )
            chain = Subplan(chain, nested)
            return VariableRef(result_var), chain
        finally:
            self._current_flwor = previous_flwor


def translate(ast: AstNode) -> LogicalPlan:
    """Translate a parsed query AST into a naive logical plan."""
    translator = Translator()
    if isinstance(ast, FlworNode):
        translator._current_flwor = ast
    return translator.translate(ast)
