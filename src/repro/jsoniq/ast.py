"""Abstract syntax tree for the JSONiq query subset.

AST nodes are plain immutable dataclasses; the translator pattern-matches
on them.  The subset covers everything the paper's queries need — FLWOR
with multiple ``for``/``let`` clauses, ``where``, ``group by``,
``order by``, postfix lookups (value and keys-or-members), function
calls, constructors, conditionals, and the usual operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class AstNode:
    """Marker base class for AST nodes."""

    __slots__ = ()


# -- primary expressions ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LiteralNode(AstNode):
    """String / number / boolean / null literal."""

    value: object


@dataclass(frozen=True, slots=True)
class VarNode(AstNode):
    """Variable reference ``$name``."""

    name: str


@dataclass(frozen=True, slots=True)
class FunctionCallNode(AstNode):
    """Function call ``name(arg, ...)``."""

    name: str
    args: tuple[AstNode, ...]


@dataclass(frozen=True, slots=True)
class SequenceNode(AstNode):
    """Parenthesized comma sequence ``(e1, e2, ...)`` (or ``()`` empty)."""

    items: tuple[AstNode, ...]


@dataclass(frozen=True, slots=True)
class ObjectConstructorNode(AstNode):
    """JSONiq object constructor ``{ "k": expr, ... }``."""

    pairs: tuple[tuple[str, AstNode], ...]


@dataclass(frozen=True, slots=True)
class ArrayConstructorNode(AstNode):
    """JSONiq array constructor ``[ expr, ... ]``."""

    members: tuple[AstNode, ...]


# -- postfix -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LookupNode(AstNode):
    """JSONiq postfix navigation.

    ``key`` of None means the keys-or-members expression ``base()``;
    otherwise ``base(key)`` — the value expression, with the key an
    arbitrary expression (a string or integer literal in practice).
    """

    base: AstNode
    key: Optional[AstNode]


# -- operators -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BinaryOpNode(AstNode):
    """Binary operator: comparisons, arithmetic, ``and`` / ``or``."""

    op: str
    left: AstNode
    right: AstNode


@dataclass(frozen=True, slots=True)
class UnaryMinusNode(AstNode):
    """Unary negation ``-expr``."""

    operand: AstNode


@dataclass(frozen=True, slots=True)
class IfNode(AstNode):
    """Conditional ``if (cond) then ... else ...``."""

    condition: AstNode
    then_branch: AstNode
    else_branch: AstNode


# -- FLWOR ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ForClause(AstNode):
    """``for $var in expr``."""

    variable: str
    source: AstNode


@dataclass(frozen=True, slots=True)
class LetClause(AstNode):
    """``let $var := expr``."""

    variable: str
    value: AstNode


@dataclass(frozen=True, slots=True)
class WhereClause(AstNode):
    """``where expr``."""

    condition: AstNode


@dataclass(frozen=True, slots=True)
class GroupByClause(AstNode):
    """``group by $var := expr, ...`` (``:= expr`` optional per key)."""

    keys: tuple[tuple[str, Optional[AstNode]], ...]


@dataclass(frozen=True, slots=True)
class OrderByClause(AstNode):
    """``order by expr [descending], ...``."""

    specs: tuple[tuple[AstNode, bool], ...]  # (expression, descending)


Clause = Union[ForClause, LetClause, WhereClause, GroupByClause, OrderByClause]


@dataclass(frozen=True, slots=True)
class FlworNode(AstNode):
    """A FLWOR expression: clauses plus the return expression."""

    clauses: tuple[Clause, ...]
    return_expr: AstNode = field(default=None)  # type: ignore[assignment]
