"""Rewrite-rule audit: what each rule firing did to the plan.

The paper attributes its wins to rewrite *families* (DATASCAN projection
vs. path rules vs. pushed-down aggregation), which requires knowing not
just the final plan but **which rules fired and what each firing
changed**.  A :class:`RewriteAudit` hangs off the fixpoint engine
(:class:`~repro.algebra.rules.base.RuleEngine`) and records, per firing,
the rule name and the operator-count delta it caused; aggregated
per-rule fire counts drive the ``explain(..., profile=True)`` report and
the structured-JSON profile export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import LogicalPlan


def _operator_count(plan: LogicalPlan) -> int:
    return sum(1 for _ in plan.iter_operators())


@dataclass(frozen=True)
class RuleFiring:
    """One rule application inside the fixpoint loop."""

    sequence: int
    rule: str
    operators_before: int
    operators_after: int

    @property
    def operator_delta(self) -> int:
        """Operators added (positive) or removed (negative) by the firing."""
        return self.operators_after - self.operators_before


@dataclass
class RewriteAudit:
    """Per-rule firing log of one compilation's rewrite phase."""

    firings: list[RuleFiring] = field(default_factory=list)

    def record(
        self, rule: str, before: LogicalPlan, after: LogicalPlan
    ) -> None:
        """Record one firing of *rule* that turned *before* into *after*."""
        self.firings.append(
            RuleFiring(
                sequence=len(self.firings) + 1,
                rule=rule,
                operators_before=_operator_count(before),
                operators_after=_operator_count(after),
            )
        )

    @property
    def total_firings(self) -> int:
        return len(self.firings)

    def fire_counts(self) -> dict[str, int]:
        """Per-rule fire counts, in first-fired order."""
        counts: dict[str, int] = {}
        for firing in self.firings:
            counts[firing.rule] = counts.get(firing.rule, 0) + 1
        return counts

    def operator_deltas(self) -> dict[str, int]:
        """Per-rule net operator-count delta, in first-fired order."""
        deltas: dict[str, int] = {}
        for firing in self.firings:
            deltas[firing.rule] = (
                deltas.get(firing.rule, 0) + firing.operator_delta
            )
        return deltas

    def to_dict(self) -> dict:
        """A JSON-serializable, deterministically ordered view."""
        return {
            "total_firings": self.total_firings,
            "rules": [
                {
                    "rule": rule,
                    "fired": count,
                    "operator_delta": self.operator_deltas()[rule],
                }
                for rule, count in self.fire_counts().items()
            ],
            "firings": [
                {
                    "sequence": f.sequence,
                    "rule": f.rule,
                    "operators_before": f.operators_before,
                    "operators_after": f.operators_after,
                }
                for f in self.firings
            ],
        }

    def render(self) -> str:
        """Human-readable per-rule summary table."""
        if not self.firings:
            return "(no rewrite rules fired)"
        deltas = self.operator_deltas()
        width = max(len(rule) for rule in deltas)
        lines = [f"{'rule'.ljust(width)}  fires  op-delta"]
        for rule, count in self.fire_counts().items():
            delta = deltas[rule]
            lines.append(f"{rule.ljust(width)}  {count:5d}  {delta:+8d}")
        return "\n".join(lines)
