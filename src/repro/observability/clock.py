"""Injectable monotonic clocks for profiling spans.

Timing spans in a :class:`~repro.observability.profile.QueryProfile` are
read from a clock the caller chooses, so the same query can be profiled
against wall time (``"wall"``) or against a deterministic virtual clock:

- ``"counter"`` — every read advances a tick counter by one, so a span's
  "seconds" is the number of clock reads it covered.  Two runs of the
  same partition work read the clock the same number of times in the
  same order, which makes profiles **byte-identical across execution
  backends** (the property the parity tests pin down);
- ``"none"`` — always reads zero; counters are collected, spans stay 0.

Clocks are referred to *by name* everywhere a profile configuration
travels (work units are pickled to process-pool workers), and each
partition's worker builds its own instance, so ticks never race across
threads or processes.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]


def _wall_clock() -> Clock:
    return time.perf_counter


def _counter_clock() -> Clock:
    ticks = 0

    def read() -> float:
        nonlocal ticks
        ticks += 1
        return float(ticks)

    return read


def _null_clock() -> Clock:
    return lambda: 0.0


#: clock-name registry; values are zero-argument factories of clocks.
CLOCKS: dict[str, Callable[[], Clock]] = {
    "wall": _wall_clock,
    "counter": _counter_clock,
    "none": _null_clock,
}


def make_clock(name: str) -> Clock:
    """Build a fresh clock instance for *name* (``wall|counter|none``)."""
    if name not in CLOCKS:
        raise ValueError(
            f"unknown profile clock {name!r}; expected one of {sorted(CLOCKS)}"
        )
    return CLOCKS[name]()
