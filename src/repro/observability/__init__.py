"""Observability: operator-level profiling and rewrite auditing.

The measurement layer behind ``JsonProcessor.profile(query)``,
``explain(..., profile=True)``, and ``tools/profile.py``:

- :mod:`repro.observability.profile` — per-operator
  :class:`QueryProfile` trees with counters and clock-driven spans,
- :mod:`repro.observability.clock` — injectable monotonic clocks
  (wall, deterministic counter, null),
- :mod:`repro.observability.rewrite_audit` — per-rule firing log of the
  fixpoint rewrite engine.
"""

from repro.observability.clock import CLOCKS, make_clock
from repro.observability.profile import (
    OperatorProfile,
    ProfileCollector,
    ProfileConfig,
    QueryProfile,
    build_query_profile,
    iter_plan_operators,
    resolve_profile_config,
)
from repro.observability.rewrite_audit import RewriteAudit, RuleFiring

__all__ = [
    "CLOCKS",
    "OperatorProfile",
    "ProfileCollector",
    "ProfileConfig",
    "QueryProfile",
    "RewriteAudit",
    "RuleFiring",
    "build_query_profile",
    "iter_plan_operators",
    "make_clock",
    "resolve_profile_config",
]
