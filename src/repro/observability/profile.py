"""Operator-level query profiles.

A :class:`QueryProfile` is a tree mirroring the rewritten logical plan,
one node per operator, carrying the counters the paper's per-query
analysis needs (tuples in/out, bytes scanned, projection hits and skips,
group counts, join bucket sizes, frames emitted at exchanges) plus a
timing span per operator read from an injectable clock
(:mod:`repro.observability.clock`).

Collection is two-phase, mirroring how ``ExecutionStats`` and
``DegradationReport`` already travel:

- each partition's worker builds a :class:`ProfileCollector` over (its
  pickled copy of) the plan and instruments execution through it; the
  collector exports a plain-dict :func:`ProfileCollector.data` snapshot
  that rides home in the :class:`~repro.hyracks.backends.PartitionOutcome`;
- the coordinator absorbs partition snapshots **in partition order** into
  its own collector, then assembles the :class:`QueryProfile` tree.

Operator identity across that round trip is the operator's position in a
deterministic pre-order traversal of the plan (nested plans included),
which is identical in the coordinator and in every worker because work
units pickle the plan and their operator references together.

With profiling off (``profile=None``) none of this is constructed and
the execution path stays wrapper-free — the <10% bench overhead bound is
met by not instrumenting at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.algebra.operators import Operator
from repro.algebra.plan import LogicalPlan
from repro.observability.clock import CLOCKS, make_clock
from repro.observability.rewrite_audit import RewriteAudit

#: environment variable consulted when no explicit profile argument is
#: given; value is a clock name (or "1" for the wall clock).
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ProfileConfig:
    """How to profile a query execution.

    ``clock`` is a clock *name* (``wall`` | ``counter`` | ``none``) so
    the config pickles cleanly into process-pool work units; every
    worker builds its own clock instance.
    """

    clock: str = "wall"

    def __post_init__(self):
        if self.clock not in CLOCKS:
            raise ValueError(
                f"unknown profile clock {self.clock!r}; "
                f"expected one of {sorted(CLOCKS)}"
            )


def resolve_profile_config(profile) -> ProfileConfig | None:
    """Normalize a profile argument into a config (or None = off).

    Accepts ``None`` (consult the ``REPRO_PROFILE`` environment
    variable), ``True``/``False``, a clock name, or a
    :class:`ProfileConfig`.
    """
    if profile is None:
        from repro.envutil import env_setting

        value = env_setting(PROFILE_ENV_VAR, "")
        if not value or value == "0":
            return None
        return ProfileConfig(clock="wall" if value == "1" else value)
    if profile is False:
        return None
    if profile is True:
        return ProfileConfig()
    if isinstance(profile, str):
        return ProfileConfig(clock=profile)
    if isinstance(profile, ProfileConfig):
        return profile
    raise TypeError(
        f"profile must be None, a bool, a clock name, or a ProfileConfig; "
        f"got {type(profile).__name__}"
    )


def iter_plan_operators(plan: LogicalPlan) -> Iterator[Operator]:
    """Deterministic pre-order traversal: node, nested plans, inputs.

    This is the traversal that assigns profile indices; it must be
    stable across pickling, which it is because it follows only the
    plan's own structure.
    """

    def walk(op: Operator) -> Iterator[Operator]:
        yield op
        for nested in op.nested_plans():
            yield from walk(nested)
        for child in op.inputs:
            yield from walk(child)

    return walk(plan.root)


class _Node:
    """Mutable per-operator accumulation (collector-internal)."""

    __slots__ = ("counters", "seconds", "details")

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.seconds: float = 0.0
        self.details: dict = {}


class ProfileCollector:
    """Accumulates per-operator counters and spans for one plan.

    One collector per partition worker plus one on the coordinator;
    worker snapshots (:meth:`data`) are absorbed coordinator-side in
    partition order, so merged profiles are identical under every
    execution backend.
    """

    def __init__(self, plan: LogicalPlan, config: ProfileConfig):
        self.config = config
        self._clock = make_clock(config.clock)
        self._index: dict[int, int] = {
            id(op): i for i, op in enumerate(iter_plan_operators(plan))
        }
        self._nodes: dict[int, _Node] = {}

    # -- lookup -----------------------------------------------------------------

    def _node(self, op: Operator) -> _Node:
        index = self._index.get(id(op))
        if index is None:
            # An operator outside the registered plan (executor-built
            # fragments in tests); register it deterministically after
            # the plan's own operators, in first-encounter order.
            index = len(self._index)
            self._index[id(op)] = index
        node = self._nodes.get(index)
        if node is None:
            node = self._nodes[index] = _Node()
        return node

    # -- recording --------------------------------------------------------------

    def add(self, op: Operator, counter: str, amount: int = 1) -> None:
        """Add *amount* to a named counter of *op*'s profile node."""
        counters = self._node(op).counters
        counters[counter] = counters.get(counter, 0) + amount

    def set_detail(self, op: Operator, key: str, value) -> None:
        """Attach a JSON-able detail (e.g. join bucket sizes) to *op*."""
        self._node(op).details[key] = value

    def count_input(self, op: Operator, stream: Iterable) -> Iterator:
        """Wrap *stream* counting tuples flowing *into* op."""
        return self.count_into(op, "tuples_in", stream)

    def count_into(self, op: Operator, counter: str, stream: Iterable) -> Iterator:
        """Wrap *stream*, adding each item to a named counter of *op*."""
        counters = self._node(op).counters

        def counted():
            for item in stream:
                counters[counter] = counters.get(counter, 0) + 1
                yield item

        return counted()

    def observe(self, op: Operator, stream: Iterable) -> Iterator:
        """Wrap *stream* timing each pull and counting tuples out of op.

        The span is *inclusive* — it covers the operator plus everything
        below it; per-operator exclusive time is derived at report time
        by subtracting child spans.
        """
        node = self._node(op)
        counters = node.counters
        clock = self._clock

        def observed():
            iterator = iter(stream)
            while True:
                started = clock()
                try:
                    item = next(iterator)
                except StopIteration:
                    node.seconds += clock() - started
                    return
                node.seconds += clock() - started
                counters["tuples_out"] = counters.get("tuples_out", 0) + 1
                yield item

        return observed()

    # -- snapshots and merging ---------------------------------------------------

    def data(self) -> dict[int, dict]:
        """Plain-dict snapshot (picklable; what workers send home)."""
        return {
            index: {
                "counters": dict(node.counters),
                "seconds": node.seconds,
                "details": dict(node.details),
            }
            for index, node in sorted(self._nodes.items())
        }

    def absorb(self, data: dict[int, dict] | None) -> None:
        """Merge a partition snapshot into this (coordinator) collector."""
        if not data:
            return
        for index, payload in sorted(data.items()):
            node = self._nodes.get(index)
            if node is None:
                node = self._nodes[index] = _Node()
            for counter, amount in payload["counters"].items():
                node.counters[counter] = node.counters.get(counter, 0) + amount
            node.seconds += payload["seconds"]
            node.details.update(payload["details"])

    def node_data(self, index: int) -> dict | None:
        node = self._nodes.get(index)
        if node is None:
            return None
        return {
            "counters": dict(node.counters),
            "seconds": node.seconds,
            "details": dict(node.details),
        }


# ---------------------------------------------------------------------------
# The assembled profile
# ---------------------------------------------------------------------------


@dataclass
class OperatorProfile:
    """One operator's merged counters and span in the profile tree."""

    index: int
    operator: str
    signature: str
    counters: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    details: dict = field(default_factory=dict)
    children: list["OperatorProfile"] = field(default_factory=list)
    nested: list["OperatorProfile"] = field(default_factory=list)

    @property
    def exclusive_seconds(self) -> float:
        """This operator's span minus its children's spans."""
        below = sum(c.seconds for c in self.children)
        below += sum(n.seconds for n in self.nested)
        return max(self.seconds - below, 0.0)

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "signature": self.signature,
            "counters": dict(sorted(self.counters.items())),
            "seconds": self.seconds,
            "details": self.details,
            "nested": [n.to_dict() for n in self.nested],
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class QueryProfile:
    """Everything one profiled execution measured, per operator."""

    strategy: str
    partitions: int
    clock: str
    root: OperatorProfile
    rewrite: RewriteAudit | None = None

    def find(self, operator: str) -> list[OperatorProfile]:
        """All profile nodes whose operator name equals *operator*."""
        found: list[OperatorProfile] = []

        def walk(node: OperatorProfile) -> None:
            if node.operator == operator:
                found.append(node)
            for nested in node.nested:
                walk(nested)
            for child in node.children:
                walk(child)

        walk(self.root)
        return found

    def to_dict(self) -> dict:
        """Structured-JSON trace export (deterministically ordered)."""
        return {
            "strategy": self.strategy,
            "partitions": self.partitions,
            "clock": self.clock,
            "plan": self.root.to_dict(),
            "rewrite": self.rewrite.to_dict() if self.rewrite else None,
        }

    def render(self) -> str:
        """Per-operator summary (the ``explain(profile=True)`` block)."""
        lines = [
            f"== query profile (strategy={self.strategy}, "
            f"partitions={self.partitions}, clock={self.clock}) =="
        ]

        def walk(node: OperatorProfile, depth: int) -> None:
            indent = "  " * depth
            parts = [f"{indent}{node.operator}"]
            for counter, amount in sorted(node.counters.items()):
                parts.append(f"{counter}={amount}")
            if node.seconds:
                parts.append(f"span={node.seconds:g}")
            for key, value in sorted(node.details.items()):
                parts.append(f"{key}={value}")
            lines.append(" ".join(parts))
            for nested in node.nested:
                walk(nested, depth + 1)
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        if self.rewrite is not None:
            lines.append("")
            lines.append("== rewrite audit ==")
            lines.append(self.rewrite.render())
        return "\n".join(lines)


def build_query_profile(
    plan: LogicalPlan,
    collector: ProfileCollector,
    strategy: str,
    partitions: int,
) -> QueryProfile:
    """Assemble the profile tree for *plan* from merged collector data."""
    indices: dict[int, int] = {
        id(op): i for i, op in enumerate(iter_plan_operators(plan))
    }

    def build(op: Operator) -> OperatorProfile:
        index = indices[id(op)]
        payload = collector.node_data(index) or {
            "counters": {},
            "seconds": 0.0,
            "details": {},
        }
        return OperatorProfile(
            index=index,
            operator=op.name,
            signature=op.signature(),
            counters=dict(sorted(payload["counters"].items())),
            seconds=payload["seconds"],
            details=payload["details"],
            nested=[build(nested) for nested in op.nested_plans()],
            children=[build(child) for child in op.inputs],
        )

    return QueryProfile(
        strategy=strategy,
        partitions=partitions,
        clock=collector.config.clock,
        root=build(plan.root),
    )
