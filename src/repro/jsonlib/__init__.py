"""JSON data substrate: streaming parser, item model, paths, projection.

This package is the from-scratch replacement for the Jackson-style JSON
parsing layer that Apache VXQuery relies on.  It provides:

- :mod:`repro.jsonlib.events` — the event vocabulary of a streaming parse,
- :mod:`repro.jsonlib.parser` — an incremental (feed-chunks) JSON parser,
- :mod:`repro.jsonlib.items` — the JSONiq item model and helpers,
- :mod:`repro.jsonlib.serializer` — items back to JSON text,
- :mod:`repro.jsonlib.path` — navigation paths (value / keys-or-members),
- :mod:`repro.jsonlib.projection` — the path-projecting streaming parser
  that powers the DATASCAN operator's second argument (Section 4.2 of the
  paper): it emits only the sub-items matched by a path without ever
  materializing the enclosing document.
"""

from repro.jsonlib.events import Event, EventKind
from repro.jsonlib.items import (
    ItemBuilder,
    deep_equals,
    is_array,
    is_atomic,
    is_object,
    item_type_name,
    sizeof_item,
)
from repro.jsonlib.parser import StreamingJsonParser, iter_events, parse
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
    navigate,
    parse_path,
)
from repro.jsonlib.projection import project_file, project_text
from repro.jsonlib.serializer import dump, dumps

__all__ = [
    "Event",
    "EventKind",
    "ItemBuilder",
    "KeysOrMembers",
    "Path",
    "StreamingJsonParser",
    "ValueByIndex",
    "ValueByKey",
    "deep_equals",
    "dump",
    "dumps",
    "is_array",
    "is_atomic",
    "is_object",
    "item_type_name",
    "iter_events",
    "navigate",
    "parse",
    "parse_path",
    "project_file",
    "project_text",
    "sizeof_item",
]
