"""On-demand projection over a structural index (the "tape").

The raw-text skipper (:mod:`repro.jsonlib.textscan`) interleaves
navigation and tokenization: every walk decision re-scans text with
regexes.  This module follows the two-phase design of "On-Demand JSON:
A Better Way to Parse Documents?" (PAPERS.md) instead:

**Phase 1 — index.**  One ``finditer`` pass per top-level record builds
a compact structural index: flat arrays of token kinds, start offsets
and end offsets (string literals and atoms are single tokens), plus a
matching-close table filled by a bracket stack during the same pass.
No per-token objects are allocated — the tape is four parallel lists of
ints.

**Phase 2 — navigate.**  The projection path (:mod:`repro.jsonlib.path`
steps) resolves directly against the tape.  Only projected leaves are
materialized (string decode / number convert straight from the recorded
spans); a non-projected subtree is skipped by offset arithmetic — one
jump to its recorded closing token, never parsed.

Equivalence contract, shared with the raw skipper and checked
property-based in the test suite::

    list(scan_text(text, path)) == navigate(parse(text), path)

Counting semantics (duplicate-key last-occurrence-wins recounting,
keys-or-members deduplication, bulk array skips counting once) mirror
``textscan`` exactly.  Malformed records are re-projected with the raw
skipper, which is the canonical definition of error messages, offsets
and partial counts — so degradation reports stay byte-identical across
scan modes, and a record truncated at the sliding-buffer edge raises
just like the skipper does, letting ``scan_file``'s grow-and-retry
machinery work unchanged.
"""

from __future__ import annotations

import json as _json
import re
from typing import Iterator

from repro.errors import JsonSyntaxError
from repro.jsonlib.items import Item
from repro.jsonlib.parser import _convert_number, _decode_string
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
)
from repro.jsonlib import textscan
from repro.jsonlib.textscan import (
    _DEFAULT_CHUNK_SIZE,
    _LITERAL_VALUES,
    _WS_RE,
    ScanCounters,
    _project as _text_project,
    _skip_value,
    _skip_ws,
)

# One alternation tokenizes everything the tape records: a whole string
# literal (escapes included, so quoted brackets can't confuse nesting),
# a whole number or literal atom, or a single structural character.
_TOKEN_RE = re.compile(
    r'"(?:[^"\\\x00-\x1f]|\\(?:["\\/bfnrt]|u[0-9a-fA-F]{4}))*"'
    r"|-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"
    r"|true|false|null"
    r"|[{}\[\]:,]"
)

# Token kinds.  Each closer is its opener + 1, which the bracket stack
# relies on to validate matching pairs.
_OPEN_OBJECT = 0
_CLOSE_OBJECT = 1
_OPEN_ARRAY = 2
_CLOSE_ARRAY = 3
_COLON = 4
_COMMA = 5
_STRING = 6
_ATOM = 7
#: A whole container deeper than the projection path ever walks,
#: recorded as one span token: its interior is never tokenized — the
#: index pass jumps it with the skipper's own quote-aware bracket hop,
#: and the navigator either skips it (one token) or bulk-decodes the
#: recorded span.
_SUBTREE = 8

_PUNCT_KINDS = {
    "{": _OPEN_OBJECT,
    "}": _CLOSE_OBJECT,
    "[": _OPEN_ARRAY,
    "]": _CLOSE_ARRAY,
    ":": _COLON,
    ",": _COMMA,
}


class RecordTape:
    """Structural index of one top-level record: parallel int arrays.

    ``kinds[i]``/``starts[i]``/``ends[i]`` describe token *i*;
    ``close[i]`` holds the index of the matching closer for opener
    tokens (-1 elsewhere), so skipping a container is one array jump.
    """

    __slots__ = ("kinds", "starts", "ends", "close")

    def __init__(self, kinds, starts, ends, close):
        self.kinds = kinds
        self.starts = starts
        self.ends = ends
        self.close = close

    def __len__(self) -> int:
        return len(self.kinds)


def build_tape(text: str, pos: int, depth_limit: int) -> tuple[RecordTape, int]:
    """Index the container record at *pos*; returns (tape, end offset).

    *depth_limit* is the number of container levels the navigator will
    walk (the projection path's step count): a container opening at
    that depth can only ever be skipped whole or materialized whole, so
    its interior is not tokenized — it is jumped with the skipper's
    quote-aware ``_skip_value`` and recorded as one :data:`_SUBTREE`
    span.  The index therefore costs one token per *walked* structural
    character, not per byte of the record.

    Raises :class:`~repro.errors.JsonSyntaxError` at the record start
    when the buffered text ends before the record's brackets balance —
    exactly where the raw skipper raises for a truncated container, so
    the sliding-buffer grow-and-retry path treats both scanners alike.
    """
    kinds: list = []
    starts: list = []
    ends: list = []
    close: list = []
    stack: list = []
    prev_end = pos
    record_start = pos
    search = _TOKEN_RE.search
    while True:
        match = search(text, pos)
        if match is None:
            raise JsonSyntaxError("unterminated container", record_start)
        start = match.start()
        if start != prev_end:
            # Only whitespace may separate tokens.  This gap validation
            # is what makes a successfully built tape trustworthy: any
            # stray character (including an unbalanced quote, which
            # would make the tokenizer pair strings differently from
            # the raw skipper) fails the build here, and the record is
            # re-projected by the skipper — the canonical authority on
            # malformed input.
            ws_end = _WS_RE.match(text, prev_end).end()
            if ws_end != start:
                raise JsonSyntaxError(
                    f"unexpected character {text[ws_end]!r}", ws_end
                )
        ch = text[start]
        index = len(kinds)
        if ch == "{" or ch == "[":
            if len(stack) >= depth_limit:
                # Deeper than any walk: record the whole container as a
                # single span, interior untokenized.  _skip_value is the
                # skipper's own bracket hop, so leniency (and behaviour
                # on hostile quoting) inside skipped subtrees is
                # byte-identical with scan_mode="text".
                end = _skip_value(text, start)
                kinds.append(_SUBTREE)
                starts.append(start)
                ends.append(end)
                close.append(-1)
                prev_end = end
                pos = end
                if not stack:
                    return RecordTape(kinds, starts, ends, close), end
                continue
            kinds.append(_PUNCT_KINDS[ch])
            stack.append(index)
        elif ch == "}" or ch == "]":
            kind = _PUNCT_KINDS[ch]
            kinds.append(kind)
            if not stack or kinds[stack[-1]] != kind - 1:
                raise JsonSyntaxError(f"unexpected character {ch!r}", start)
            close[stack.pop()] = index
        elif ch == '"':
            kinds.append(_STRING)
        elif ch == ":" or ch == ",":
            kinds.append(_PUNCT_KINDS[ch])
        else:
            kinds.append(_ATOM)
        starts.append(start)
        ends.append(match.end())
        close.append(-1)
        prev_end = match.end()
        pos = match.end()
        if not stack:
            return RecordTape(kinds, starts, ends, close), pos


def _skip_token(text: str, tape: RecordTape, i: int, counters) -> int:
    """Skip the value at token *i* by offset arithmetic; count it once."""
    kind = tape.kinds[i]
    if kind == _OPEN_OBJECT or kind == _OPEN_ARRAY:
        end = tape.close[i] + 1
    elif kind == _STRING or kind == _ATOM or kind == _SUBTREE:
        end = i + 1
    else:
        raise JsonSyntaxError(
            f"unexpected character {text[tape.starts[i]]!r}", tape.starts[i]
        )
    if counters is not None:
        counters.skipped += 1
    return end


def _token_string(text: str, tape: RecordTape, i: int) -> str:
    """Decode the string token *i* (escape-free fast path)."""
    raw = text[tape.starts[i] + 1 : tape.ends[i] - 1]
    if "\\" in raw:
        return _decode_string(raw, tape.starts[i] + 1)
    return raw


def _reject_constant(token: str):
    """Refuse ``NaN``/``Infinity``/``-Infinity`` inside bulk decodes.

    The stdlib decoder accepts these extensions by default, but the
    canonical skipper's ``_build_value`` raises — and Python's own
    ``json.dumps`` emits ``NaN`` for ``float('nan')``, so such inputs
    occur in practice.  Raising here fails the tape path and hands the
    record to the skipper, keeping items, errors, and degradation
    reports byte-identical across scan modes.
    """
    raise ValueError(f"invalid literal {token}")


def _materialize_container(text: str, tape: RecordTape, i: int):
    """Decode the whole container at token *i* in one C-speed pass.

    The tape already proved the slice token-clean and bracket-balanced,
    and the stdlib decoder's value semantics are identical to
    ``_build_value``'s (int unless ``./e/E``, last duplicate key wins,
    surrogate-pair combining with lone surrogates kept, non-standard
    constants rejected via :func:`_reject_constant`) — so for a fully
    projected subtree one ``json.loads`` over the recorded span
    replaces thousands of per-token Python steps.  Structural errors
    the tokenizer can't see (a missing colon, say) surface as
    :class:`~repro.errors.JsonSyntaxError` so the record falls back to
    the canonical raw skipper.

    Returns (value, next token index).
    """
    if tape.kinds[i] == _SUBTREE:
        end_offset = tape.ends[i]
        next_token = i + 1
    else:
        closer = tape.close[i]
        end_offset = tape.ends[closer]
        next_token = closer + 1
    try:
        value = _json.loads(
            text[tape.starts[i] : end_offset],
            parse_constant=_reject_constant,
        )
    except ValueError as error:
        raise JsonSyntaxError(str(error), tape.starts[i]) from None
    return value, next_token


def build_value(text: str, tape: RecordTape, i: int) -> tuple[Item, int]:
    """Materialize the value at token *i*; returns (item, next token).

    Strings and atoms convert straight from their recorded spans — no
    re-tokenization; containers recurse over the tape, validating the
    separators (and the gaps between walked tokens) exactly like the
    skipper's ``_build_value`` validates its text.
    """
    kinds = tape.kinds
    starts = tape.starts
    kind = kinds[i]
    if kind == _STRING:
        return _token_string(text, tape, i), i + 1
    if kind == _SUBTREE:
        return _materialize_container(text, tape, i)
    if kind == _ATOM:
        raw = text[starts[i] : tape.ends[i]]
        if raw in _LITERAL_VALUES:
            return _LITERAL_VALUES[raw], i + 1
        return _convert_number(raw), i + 1
    if kind == _OPEN_OBJECT:
        obj: dict = {}
        j = i + 1
        if kinds[j] == _CLOSE_OBJECT:
            return obj, j + 1
        while True:
            if kinds[j] != _STRING:
                raise JsonSyntaxError("expected object key", starts[j])
            key = _token_string(text, tape, j)
            if kinds[j + 1] != _COLON:
                raise JsonSyntaxError("expected ':'", starts[j + 1])
            obj[key], j = build_value(text, tape, j + 2)
            kind = kinds[j]
            if kind == _COMMA:
                j += 1
                continue
            if kind == _CLOSE_OBJECT:
                return obj, j + 1
            raise JsonSyntaxError(
                f"expected ',' or '}}', found {text[starts[j]]!r}", starts[j]
            )
    if kind == _OPEN_ARRAY:
        array: list = []
        j = i + 1
        if kinds[j] == _CLOSE_ARRAY:
            return array, j + 1
        while True:
            member, j = build_value(text, tape, j)
            array.append(member)
            kind = kinds[j]
            if kind == _COMMA:
                j += 1
                continue
            if kind == _CLOSE_ARRAY:
                return array, j + 1
            raise JsonSyntaxError(
                f"expected ',' or ']', found {text[starts[j]]!r}", starts[j]
            )
    raise JsonSyntaxError(
        f"unexpected character {text[starts[i]]!r}", starts[i]
    )


def _navigate(
    text: str,
    tape: RecordTape,
    i: int,
    path: Path,
    step_index: int,
    out: list,
    counters: ScanCounters | None,
) -> int:
    """Project steps from *step_index* over the value at token *i*.

    Matched items append to *out*; returns the token index just past
    the value.  Counting mirrors ``textscan._project`` exactly.
    """
    if step_index == len(path):
        kind = tape.kinds[i]
        if kind == _OPEN_OBJECT or kind == _OPEN_ARRAY or kind == _SUBTREE:
            item, j = _materialize_container(text, tape, i)
        else:
            item, j = build_value(text, tape, i)
        out.append(item)
        if counters is not None:
            counters.matched += 1
        return j

    kind = tape.kinds[i]
    step = path[step_index]
    if isinstance(step, ValueByKey):
        if kind != _OPEN_OBJECT:
            return _skip_token(text, tape, i, counters)
        return _walk_object(text, tape, i, path, step_index, out, step.key, counters)
    if isinstance(step, ValueByIndex):
        if kind != _OPEN_ARRAY:
            return _skip_token(text, tape, i, counters)
        return _walk_array(text, tape, i, path, step_index, out, step.index, counters)
    # KeysOrMembers
    if kind == _OPEN_ARRAY:
        return _walk_array(text, tape, i, path, step_index, out, None, counters)
    if kind == _OPEN_OBJECT:
        return _walk_object(text, tape, i, path, step_index, out, None, counters)
    return _skip_token(text, tape, i, counters)


def _walk_object(
    text: str,
    tape: RecordTape,
    i: int,
    path: Path,
    step_index: int,
    out: list,
    target_key: str | None,
    counters: ScanCounters | None,
) -> int:
    """Walk an object's tokens; ``target_key`` None means keys-or-members."""
    at_end = step_index + 1 == len(path)
    kinds = tape.kinds
    starts = tape.starts
    j = i + 1
    if kinds[j] == _CLOSE_OBJECT:
        return j + 1
    # Duplicate keys: last occurrence wins (dict semantics), so buffer
    # each matching occurrence's projection and emit only the final one
    # at the closing brace; a discarded earlier match recounts as one
    # skipped value.  Keys-or-members deduplicates like dict.keys().
    matched: list | None = None
    matched_counters: ScanCounters | None = None
    seen_keys: set[str] = set()
    while True:
        if kinds[j] != _STRING:
            raise JsonSyntaxError("expected object key", starts[j])
        key = _token_string(text, tape, j)
        if kinds[j + 1] != _COLON:
            raise JsonSyntaxError("expected ':'", starts[j + 1])
        value_index = j + 2
        if target_key is None:
            if at_end and key not in seen_keys:
                seen_keys.add(key)
                out.append(key)
                if counters is not None:
                    counters.matched += 1
            j = _skip_token(text, tape, value_index, counters)
        elif key == target_key:
            occurrence: list = []
            occurrence_counters = None if counters is None else ScanCounters()
            j = _navigate(
                text, tape, value_index, path, step_index + 1,
                occurrence, occurrence_counters,
            )
            if matched is not None and counters is not None:
                counters.skipped += 1
            matched, matched_counters = occurrence, occurrence_counters
        else:
            j = _skip_token(text, tape, value_index, counters)
        kind = kinds[j]
        if kind == _COMMA:
            j += 1
            continue
        if kind == _CLOSE_OBJECT:
            if matched is not None:
                out.extend(matched)
                if counters is not None:
                    counters.merge(matched_counters)
            return j + 1
        raise JsonSyntaxError(
            f"expected ',' or '}}', found {text[starts[j]]!r}", starts[j]
        )


def _walk_array(
    text: str,
    tape: RecordTape,
    i: int,
    path: Path,
    step_index: int,
    out: list,
    target_index: int | None,
    counters: ScanCounters | None,
) -> int:
    """Walk an array's tokens; ``target_index`` None means keys-or-members."""
    if target_index is None and step_index + 1 == len(path):
        # A trailing keys-or-members step materializes every member:
        # the paper queries' `("results")()` shape.  One bulk decode of
        # the recorded array span beats walking member tokens one by
        # one; each member still counts as one match, like the skipper.
        members, j = _materialize_container(text, tape, i)
        out.extend(members)
        if counters is not None:
            counters.matched += len(members)
        return j
    kinds = tape.kinds
    starts = tape.starts
    j = i + 1
    if kinds[j] == _CLOSE_ARRAY:
        return j + 1
    position = 0
    while True:
        position += 1
        if target_index is None or position == target_index:
            j = _navigate(text, tape, j, path, step_index + 1, out, counters)
            if target_index is not None:
                # Positions only grow, so no later member can match:
                # one jump to the recorded closer skips the rest.
                if counters is not None and kinds[j] != _CLOSE_ARRAY:
                    counters.skipped += 1
                return tape.close[i] + 1
        else:
            j = _skip_token(text, tape, j, counters)
        kind = kinds[j]
        if kind == _COMMA:
            j += 1
            continue
        if kind == _CLOSE_ARRAY:
            return j + 1
        raise JsonSyntaxError(
            f"expected ',' or ']', found {text[starts[j]]!r}", starts[j]
        )


def project_record(
    text: str,
    pos: int,
    path: Path,
    out: list,
    counters: ScanCounters | None,
) -> int:
    """On-demand record projector (``scan_text``/``scan_file`` plug-in).

    Indexes the record at *pos*, navigates the projection over the
    tape, and stages items/counters so nothing leaks on failure.  Any
    tape-side :class:`~repro.errors.JsonSyntaxError` falls back to the
    raw skipper's projector — the canonical definition of malformed
    behaviour — so errors, offsets and degradation records are
    byte-identical with ``scan_mode="text"``.
    """
    pos = _skip_ws(text, pos)
    if pos >= len(text):
        raise JsonSyntaxError("unexpected end of input", pos)
    if text[pos] not in "{[":
        # Scalar top-level records have no structure to index; the raw
        # skipper's projector is already optimal and defines counting.
        return _text_project(text, pos, path, 0, out, counters)
    staged: list = []
    attempt = None if counters is None else ScanCounters()
    try:
        tape, end = build_tape(text, pos, len(path))
        if attempt is not None:
            attempt.tape_records += 1
            attempt.tape_tokens += len(tape)
        _navigate(text, tape, 0, path, 0, staged, attempt)
    except JsonSyntaxError:
        # Tape-side failure: discard the staged partial projection and
        # hand the record to the skipper with the caller's own
        # out/counters, so its behaviour — including partial counts on
        # a record that still fails — applies verbatim.
        return _text_project(text, pos, path, 0, out, counters)
    out.extend(staged)
    if counters is not None:
        counters.merge(attempt)
    return end


def scan_text(
    text: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    counters: ScanCounters | None = None,
) -> Iterator[Item]:
    """On-demand twin of :func:`repro.jsonlib.textscan.scan_text`."""
    return textscan.scan_text(
        text,
        path,
        on_malformed=on_malformed,
        recorder=recorder,
        counters=counters,
        projector=project_record,
    )


def scan_file(
    file_path: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    chunk_size: int = _DEFAULT_CHUNK_SIZE,
    counters: ScanCounters | None = None,
) -> Iterator[Item]:
    """On-demand twin of :func:`repro.jsonlib.textscan.scan_file`.

    Shares the skipper's sliding-buffer machinery (grow-on-truncation,
    absolute offset rebasing, per-attempt counter staging); only the
    per-record projector differs.
    """
    return textscan.scan_file(
        file_path,
        path,
        on_malformed=on_malformed,
        recorder=recorder,
        chunk_size=chunk_size,
        counters=counters,
        projector=project_record,
    )
