"""An incremental, event-based JSON parser written from scratch.

The parser is the foundation of the paper's "query raw JSON on the fly"
claim: data is consumed in chunks (``feed``) and surfaced as a stream of
:class:`~repro.jsonlib.events.Event` objects, so downstream operators can
start working before the file has been fully read and without the text
ever being materialized as one big item.

The implementation is a single-pass state machine over a string buffer.
Tokens that may be cut off at a chunk boundary (strings, numbers,
``true``/``false``/``null`` literals) are retained in the buffer until the
next ``feed`` or until :meth:`StreamingJsonParser.finish` declares the
input complete.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import JsonIncompleteError, JsonSyntaxError
from repro.jsonlib.events import (
    END_ARRAY,
    END_OBJECT,
    START_ARRAY,
    START_OBJECT,
    Event,
    atomic_event,
    key_event,
)

# A complete JSON string literal, including the closing quote.
_STRING_RE = re.compile(
    r'"(?:[^"\\\x00-\x1f]|\\(?:["\\/bfnrt]|u[0-9a-fA-F]{4}))*"'
)
# A JSON number.  A match that runs to the end of the buffer may continue
# in the next chunk and is therefore provisional.
_NUMBER_RE = re.compile(r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?")
_WHITESPACE_RE = re.compile(r"[ \t\n\r]*")
# Text that could be the *beginning* of a number's fraction or exponent,
# cut off at a chunk boundary (the matched number before it is then
# provisional): ".", "e", "E", "e+", "e-" at the very end of the buffer.
_PARTIAL_NUMBER_TAIL_RE = re.compile(r"\.|[eE][+-]?")

_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}

_LITERALS = ("true", "false", "null")
_LITERAL_VALUES = {"true": True, "false": False, "null": None}

# Parser states.  The state says which token class is legal next; the
# container stack (True = object, False = array) supplies the rest.
_S_VALUE = 0  # expecting a value (top level, after ':' or after ',')
_S_VALUE_OR_CLOSE = 1  # right after '[': a value or ']'
_S_KEY_OR_CLOSE = 2  # right after '{': a key or '}'
_S_KEY = 3  # inside an object after ',': a key
_S_COLON = 4  # after a key: ':'
_S_COMMA_OR_CLOSE = 5  # after a value inside a container
_S_DONE_VALUE = 6  # a top-level value just finished

# Sentinel returned by scanners when the token is cut off at buffer end.
_NEED_MORE = -1


def _decode_string(raw: str, offset: int) -> str:
    """Decode the body of a matched JSON string literal (without quotes)."""
    if "\\" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        esc = raw[i + 1]
        if esc == "u":
            code = int(raw[i + 2 : i + 6], 16)
            i += 6
            # Combine surrogate pairs when both halves are present.
            if 0xD800 <= code <= 0xDBFF and raw.startswith("\\u", i):
                low = int(raw[i + 2 : i + 6], 16)
                if 0xDC00 <= low <= 0xDFFF:
                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                    i += 6
            out.append(chr(code))
        else:
            mapped = _ESCAPES.get(esc)
            if mapped is None:
                raise JsonSyntaxError(f"invalid escape \\{esc}", offset + i)
            out.append(mapped)
            i += 2
    return "".join(out)


def _convert_number(text: str) -> int | float:
    """Convert matched number text to int or float."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


class StreamingJsonParser:
    """Incremental JSON parser producing an event stream.

    Parameters
    ----------
    allow_multiple_values:
        When True (the default), the input may contain any number of
        whitespace-separated top-level JSON values (the shape of a file of
        concatenated documents).  When False, a second top-level value is
        a syntax error.
    max_depth:
        Guard against pathologically nested inputs.

    Usage::

        parser = StreamingJsonParser()
        for chunk in chunks:
            for event in parser.feed(chunk):
                ...
        for event in parser.finish():
            ...
    """

    def __init__(self, allow_multiple_values: bool = True, max_depth: int = 2000):
        self._buffer = ""
        self._pos = 0
        self._consumed = 0  # chars consumed from previously-dropped buffers
        self._stack: list[bool] = []  # True = object, False = array
        self._state = _S_VALUE
        self._allow_multiple = allow_multiple_values
        self._max_depth = max_depth
        self._finished = False

    # -- public API ---------------------------------------------------------

    def feed(self, chunk: str) -> list[Event]:
        """Consume *chunk* and return the events it completes."""
        if self._finished:
            raise JsonSyntaxError("feed() after finish()")
        if self._pos:
            self._consumed += self._pos
            self._buffer = self._buffer[self._pos :]
            self._pos = 0
        self._buffer += chunk
        return self._scan(at_eof=False)

    def finish(self) -> list[Event]:
        """Declare end of input; return trailing events.

        Raises :class:`JsonIncompleteError` if the input stops in the
        middle of a value, and :class:`JsonSyntaxError` on trailing junk.
        """
        if self._finished:
            return []
        events = self._scan(at_eof=True)
        self._finished = True
        trailing = _WHITESPACE_RE.match(self._buffer, self._pos).end()
        if trailing != len(self._buffer):
            raise JsonSyntaxError("unexpected trailing data", self._offset(trailing))
        if self._stack or self._state not in (_S_DONE_VALUE, _S_VALUE):
            raise JsonIncompleteError(
                "input ended inside a JSON value", self._offset(self._pos)
            )
        return events

    @property
    def depth(self) -> int:
        """Current container nesting depth."""
        return len(self._stack)

    # -- internals ----------------------------------------------------------

    def _offset(self, pos: int) -> int:
        return self._consumed + pos

    def _scan(self, at_eof: bool) -> list[Event]:
        """Run the state machine over the buffered text."""
        events: list[Event] = []
        buf = self._buffer
        n = len(buf)
        pos = self._pos
        stack = self._stack
        try:
            while True:
                pos = _WHITESPACE_RE.match(buf, pos).end()
                if pos >= n:
                    break
                ch = buf[pos]
                state = self._state

                if state in (_S_VALUE, _S_DONE_VALUE, _S_VALUE_OR_CLOSE):
                    if state == _S_DONE_VALUE and not self._allow_multiple:
                        raise JsonSyntaxError(
                            "multiple top-level values", self._offset(pos)
                        )
                    if state == _S_VALUE_OR_CLOSE and ch == "]":
                        stack.pop()
                        events.append(END_ARRAY)
                        pos += 1
                        self._state = self._after_value()
                        continue
                    new_pos = self._scan_value(buf, pos, n, ch, events, at_eof)
                    if new_pos == _NEED_MORE:
                        break
                    pos = new_pos
                elif state in (_S_KEY_OR_CLOSE, _S_KEY):
                    if ch == "}" and state == _S_KEY_OR_CLOSE:
                        stack.pop()
                        events.append(END_OBJECT)
                        pos += 1
                        self._state = self._after_value()
                        continue
                    if ch != '"':
                        raise JsonSyntaxError(
                            f"expected object key, found {ch!r}", self._offset(pos)
                        )
                    text, new_pos = self._scan_string(buf, pos, n, at_eof)
                    if new_pos == _NEED_MORE:
                        break
                    pos = new_pos
                    events.append(key_event(text))
                    self._state = _S_COLON
                elif state == _S_COLON:
                    if ch != ":":
                        raise JsonSyntaxError(
                            f"expected ':', found {ch!r}", self._offset(pos)
                        )
                    pos += 1
                    self._state = _S_VALUE
                else:  # _S_COMMA_OR_CLOSE
                    if ch == ",":
                        pos += 1
                        self._state = _S_KEY if stack[-1] else _S_VALUE
                    elif ch == "}" and stack[-1]:
                        stack.pop()
                        events.append(END_OBJECT)
                        pos += 1
                        self._state = self._after_value()
                    elif ch == "]" and not stack[-1]:
                        stack.pop()
                        events.append(END_ARRAY)
                        pos += 1
                        self._state = self._after_value()
                    else:
                        raise JsonSyntaxError(
                            f"expected ',' or container close, found {ch!r}",
                            self._offset(pos),
                        )
        finally:
            self._pos = pos
        return events

    def _after_value(self) -> int:
        """State after a complete value closes."""
        return _S_COMMA_OR_CLOSE if self._stack else _S_DONE_VALUE

    def _scan_value(
        self,
        buf: str,
        pos: int,
        n: int,
        ch: str,
        events: list[Event],
        at_eof: bool,
    ) -> int:
        """Scan one value token starting at *pos*.

        Returns the position after the token, or ``_NEED_MORE`` when the
        token is cut off at the buffer end.  Opening a container pushes
        the stack and sets the in-container state; closing a scalar value
        sets the after-value state.
        """
        if ch == "{":
            if len(self._stack) >= self._max_depth:
                raise JsonSyntaxError("maximum nesting depth exceeded")
            self._stack.append(True)
            events.append(START_OBJECT)
            self._state = _S_KEY_OR_CLOSE
            return pos + 1
        if ch == "[":
            if len(self._stack) >= self._max_depth:
                raise JsonSyntaxError("maximum nesting depth exceeded")
            self._stack.append(False)
            events.append(START_ARRAY)
            self._state = _S_VALUE_OR_CLOSE
            return pos + 1
        if ch == '"':
            text, new_pos = self._scan_string(buf, pos, n, at_eof)
            if new_pos == _NEED_MORE:
                return _NEED_MORE
            events.append(atomic_event(text))
            self._state = self._after_value()
            return new_pos
        if ch == "-" or "0" <= ch <= "9":
            match = _NUMBER_RE.match(buf, pos)
            if match is None or match.end() == pos:
                if not at_eof and buf[pos:n] == "-":
                    return _NEED_MORE  # a lone '-' may get digits next chunk
                raise JsonSyntaxError("invalid number", self._offset(pos))
            end = match.end()
            if not at_eof and (
                end == n or _PARTIAL_NUMBER_TAIL_RE.fullmatch(buf, end, n)
            ):
                # The number (or its fraction/exponent) may continue in
                # the next chunk, e.g. "1.5e" + "3".
                return _NEED_MORE
            events.append(atomic_event(_convert_number(match.group())))
            self._state = self._after_value()
            return end
        for literal in _LITERALS:
            if buf.startswith(literal, pos):
                events.append(atomic_event(_LITERAL_VALUES[literal]))
                self._state = self._after_value()
                return pos + len(literal)
            if literal.startswith(buf[pos:n]):
                if at_eof:
                    raise JsonIncompleteError(
                        "truncated literal", self._offset(pos)
                    )
                return _NEED_MORE  # literal may continue in the next chunk
        raise JsonSyntaxError(f"unexpected character {ch!r}", self._offset(pos))

    def _scan_string(
        self, buf: str, pos: int, n: int, at_eof: bool
    ) -> tuple[str, int]:
        """Scan a string literal at *pos*.

        Returns (decoded_text, end_position), or ("", _NEED_MORE) when the
        string is cut off at the buffer end.
        """
        match = _STRING_RE.match(buf, pos)
        if match is not None:
            return _decode_string(match.group()[1:-1], pos + 1), match.end()
        if self._has_closing_quote(buf, pos, n):
            raise JsonSyntaxError("invalid string literal", self._offset(pos))
        if at_eof:
            raise JsonIncompleteError("unterminated string", self._offset(pos))
        return "", _NEED_MORE

    @staticmethod
    def _has_closing_quote(buf: str, pos: int, n: int) -> bool:
        """True if an unescaped closing quote exists after *pos*.

        Used to distinguish an *invalid* string (report now) from an
        *incomplete* one (wait for more input).
        """
        i = pos + 1
        while i < n:
            ch = buf[i]
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                return True
            i += 1
        return False


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def iter_events(text: str, allow_multiple_values: bool = True) -> Iterator[Event]:
    """Yield the full event stream for *text*."""
    parser = StreamingJsonParser(allow_multiple_values=allow_multiple_values)
    yield from parser.feed(text)
    yield from parser.finish()


def iter_file_events(path: str, chunk_size: int = 1 << 16) -> Iterator[Event]:
    """Yield the event stream of a JSON file, reading it in chunks.

    This is the entry point used by scan operators: memory stays bounded
    by ``chunk_size`` plus whatever the consumer accumulates.
    """
    parser = StreamingJsonParser(allow_multiple_values=True)
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            yield from parser.feed(chunk)
    yield from parser.finish()


def parse(text: str):
    """Parse *text* as a single JSON value and return the item."""
    from repro.jsonlib.items import build_items

    items = list(build_items(iter_events(text, allow_multiple_values=False)))
    if not items:
        raise JsonIncompleteError("empty input")
    return items[0]


def parse_many(text: str) -> list:
    """Parse *text* as a sequence of concatenated JSON values."""
    from repro.jsonlib.items import build_items

    return list(build_items(iter_events(text)))


def parse_many_resilient(
    text: str, on_malformed: str = "fail", recorder=None
) -> list:
    """:func:`parse_many` with a malformed-input policy.

    With ``on_malformed="skip_record"`` malformed top-level values are
    skipped (resyncing at the next newline) instead of raising; skips
    report to ``recorder(offset, message)``.  Delegates to the raw-text
    scanner with an empty path, whose contract is equivalence with
    :func:`parse_many` on well-formed input.
    """
    from repro.jsonlib.path import Path
    from repro.jsonlib.textscan import scan_text

    return list(
        scan_text(text, Path(), on_malformed=on_malformed, recorder=recorder)
    )
