"""Path-projecting streaming parser — the engine behind DATASCAN's argument.

Section 4.2 of the paper extends the DATASCAN operator with a second
argument: a navigation path that defines which sub-items of each file are
forwarded to the next operator.  The projecting parser implemented here
evaluates such a path *directly against the parse-event stream*: items on
the path are skipped without being built, and only the matched sub-items
are materialized, one at a time.

This is what turns the plan's memory footprint from "the whole document"
into "one matched object", and it is the mechanism behind the
orders-of-magnitude improvement of Figure 14.

The observable behaviour is defined by equivalence with the naive
strategy::

    list(project_text(text, path)) == navigate(parse(text), path)

which the property-based tests check on arbitrary documents and paths.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import JsonSyntaxError
from repro.jsonlib.events import Event, EventKind
from repro.jsonlib.items import Item, ItemBuilder
from repro.jsonlib.parser import iter_events, iter_file_events
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
)


class _EventCursor:
    """A pull cursor over an event stream with a mandatory next()."""

    __slots__ = ("_iterator",)

    def __init__(self, events):
        self._iterator = iter(events)

    def next(self) -> Event:
        try:
            return next(self._iterator)
        except StopIteration:
            raise JsonSyntaxError("event stream ended unexpectedly") from None

    def try_next(self) -> Event | None:
        """Return the next event, or None at end of stream."""
        return next(self._iterator, None)


def _build_value(cursor: _EventCursor, first: Event) -> Item:
    """Materialize the value whose first event is *first*."""
    if first.kind is EventKind.ATOMIC:
        return first.value
    builder = ItemBuilder()
    builder.push(first)
    while not builder.finished:
        builder.push(cursor.next())
    return builder.finished[0]


def _skip_value(cursor: _EventCursor, first: Event) -> None:
    """Consume the value whose first event is *first* without building it."""
    if first.kind is EventKind.ATOMIC:
        return
    if not first.is_start():
        raise JsonSyntaxError(f"unexpected event {first!r} at value position")
    depth = 1
    while depth:
        event = cursor.next()
        if event.is_start():
            depth += 1
        elif event.is_end():
            depth -= 1


def _skip_container_remainder(cursor: _EventCursor) -> None:
    """Consume events to the end of the enclosing container (depth 1).

    One flat depth-counting loop — no per-member dispatch — for the
    early-exit paths where nothing further in the container can match.
    """
    depth = 1
    while depth:
        event = cursor.next()
        if event.is_start():
            depth += 1
        elif event.is_end():
            depth -= 1


def _project_value(
    cursor: _EventCursor, first: Event, path: Path, step_index: int
) -> Iterator[Item]:
    """Project *path* (from *step_index* on) over the value at *first*."""
    if step_index == len(path):
        yield _build_value(cursor, first)
        return

    step = path[step_index]
    if isinstance(step, ValueByKey):
        if first.kind is not EventKind.START_OBJECT:
            _skip_value(cursor, first)
            return
        # Duplicate keys: the parser's ItemBuilder keeps the *last*
        # occurrence of a repeated key, so buffer each matching
        # occurrence's projection and emit only the final one when the
        # object closes.  The buffer holds one matched sub-projection at
        # a time, so peak memory stays "one matched item".
        matched: list[Item] | None = None
        while True:
            event = cursor.next()
            if event.kind is EventKind.END_OBJECT:
                if matched is not None:
                    yield from matched
                return
            # Inside an object the stream alternates KEY, value.
            if event.kind is not EventKind.KEY:
                raise JsonSyntaxError(f"expected KEY event, got {event!r}")
            value_first = cursor.next()
            if event.value == step.key:
                matched = list(
                    _project_value(cursor, value_first, path, step_index + 1)
                )
            else:
                _skip_value(cursor, value_first)
    elif isinstance(step, ValueByIndex):
        if first.kind is not EventKind.START_ARRAY:
            _skip_value(cursor, first)
            return
        position = 0
        while True:
            event = cursor.next()
            if event.kind is EventKind.END_ARRAY:
                return
            position += 1
            if position == step.index:
                yield from _project_value(cursor, event, path, step_index + 1)
                # Positions only grow, so no later member can match:
                # drain the rest of the array in one bulk loop.
                _skip_container_remainder(cursor)
                return
            _skip_value(cursor, event)
    elif isinstance(step, KeysOrMembers):
        if first.kind is EventKind.START_ARRAY:
            while True:
                event = cursor.next()
                if event.kind is EventKind.END_ARRAY:
                    return
                yield from _project_value(cursor, event, path, step_index + 1)
        elif first.kind is EventKind.START_OBJECT:
            # Keys-or-members over an object yields its *keys*; further
            # steps over strings yield nothing, so only emit at path end.
            # dict.keys() on the built item deduplicates repeated keys
            # (first-insertion order), so do the same here.
            at_end = step_index + 1 == len(path)
            seen: set[str] = set()
            while True:
                event = cursor.next()
                if event.kind is EventKind.END_OBJECT:
                    return
                if event.kind is not EventKind.KEY:
                    raise JsonSyntaxError(f"expected KEY event, got {event!r}")
                if at_end and event.value not in seen:
                    seen.add(event.value)
                    yield event.value
                _skip_value(cursor, cursor.next())
        else:
            _skip_value(cursor, first)
    else:  # pragma: no cover - PathStep is a closed union
        raise JsonSyntaxError(f"unknown path step {step!r}")


def project_events(events, path: Path, counters=None) -> Iterator[Item]:
    """Project *path* over every top-level value of an event stream.

    *counters* (a :class:`~repro.jsonlib.textscan.ScanCounters`)
    accumulates ``matched`` per projected item; the event stream has no
    per-subtree skip notion, so ``skipped`` accounting lives only on
    the record-level scanners.
    """
    cursor = _EventCursor(events)
    while True:
        first = cursor.try_next()
        if first is None:
            return
        for item in _project_value(cursor, first, path, 0):
            if counters is not None:
                counters.matched += 1
            yield item


def project_text(text: str, path: Path, counters=None) -> Iterator[Item]:
    """Project *path* over the JSON value(s) in *text*."""
    return project_events(iter_events(text), path, counters=counters)


def project_file(
    file_path: str,
    path: Path,
    chunk_size: int = 1 << 16,
    on_malformed: str = "fail",
    recorder=None,
    counters=None,
) -> Iterator[Item]:
    """Project *path* over a JSON file, reading it incrementally.

    Peak memory is bounded by ``chunk_size`` plus the size of the largest
    single matched item — never the whole file.

    The incremental event stream cannot resync past malformed input (the
    parser state is gone), so any ``on_malformed`` policy other than
    ``fail`` degrades by truncating the rest of the file: items already
    yielded stand, the remainder is dropped and reported to
    ``recorder(offset, message)`` when given.
    """
    events = iter_file_events(file_path, chunk_size)
    if on_malformed == "fail":
        return project_events(events, path, counters=counters)
    return _project_events_truncating(events, path, recorder, counters)


def _project_events_truncating(
    events, path: Path, recorder, counters=None
) -> Iterator[Item]:
    """Yield projected items until the stream breaks; swallow the break."""
    try:
        yield from project_events(events, path, counters=counters)
    except JsonSyntaxError as error:
        if recorder is not None:
            recorder(getattr(error, "offset", None), str(error))
