"""Raw-text path projection: skip what the path doesn't need, fast.

The event-based projector (:mod:`repro.jsonlib.projection`) avoids
*building* unmatched values but still tokenizes every byte.  This module
goes further, in the spirit of structural-index JSON scanners (Mison —
cited as related work in the paper): values that the path does not need
are **skipped at string-search speed** — one regex hop per structural
character, with string literals jumped over by quote search — and only
the matched slices are handed to the real parser.

This is the scanner behind DATASCAN's projection argument on file
sources.  Its contract is equivalence with the reference strategy::

    list(scan_text(text, path)) == navigate(parse(text), path)

checked property-based in the test suite.  :func:`scan_file` feeds the
skipper through a sliding buffer, so memory is bounded by the read
chunk size plus the largest single top-level value — never by file (or
collection) size.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import JsonSyntaxError
from repro.jsonlib.items import Item
from repro.jsonlib.parser import _decode_string, _convert_number
from repro.jsonlib.path import (
    KeysOrMembers,
    Path,
    ValueByIndex,
    ValueByKey,
)

_WS_RE = re.compile(r"[ \t\n\r]*")
#: Unicode byte-order mark; legal as the very first character of a JSON
#: text (RFC 8259 permits parsers to ignore it), never anywhere else.
_BOM = "\ufeff"
# Structural characters that change nesting depth, plus string openers.
_STRUCT_RE = re.compile(r'["{}\[\]]')
_STRING_RE = re.compile(
    r'"(?:[^"\\\x00-\x1f]|\\(?:["\\/bfnrt]|u[0-9a-fA-F]{4}))*"'
)
_NUMBER_RE = re.compile(r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?")
_LITERAL_RE = re.compile(r"true|false|null")
_LITERAL_VALUES = {"true": True, "false": False, "null": None}


#: Every counter a scan can accumulate, in a stable serialization order.
_COUNTER_FIELDS = (
    "matched",
    "skipped",
    "tape_records",
    "tape_tokens",
    "cache_hits",
    "cache_misses",
    "cache_corrupt",
)


class ScanCounters:
    """Scan-effectiveness counters for one projected scan.

    Navigation accounting (every scan mode): ``matched`` counts items
    the projection materialized; ``skipped`` counts the values it
    jumped over (a bulk container skip counts once).  Tape-build
    accounting (on-demand mode, :mod:`repro.jsonlib.tape`):
    ``tape_records`` / ``tape_tokens`` count structural indexes built
    and their token totals.  Segment-cache accounting
    (:mod:`repro.cache`): ``cache_hits`` / ``cache_misses`` count
    per-file cache probes; a hit replays the stored scan's
    matched/skipped so projection accounting stays byte-identical with
    the cache off.  ``cache_corrupt`` counts probes that found a
    segment file but rejected it (bad magic, truncation, checksum
    mismatch) — each such probe also counts as a miss, because the
    scan fell back to a cold read.  Attached to a scan through the data source's
    ``attach_scan_counters`` hook and surfaced in query profiles as
    ``projection_hits`` / ``projection_skips`` (plus the tape/cache
    counters when nonzero).
    """

    __slots__ = _COUNTER_FIELDS

    def __init__(self):
        for field in _COUNTER_FIELDS:
            setattr(self, field, 0)

    def merge(self, other: "ScanCounters") -> None:
        """Accumulate every counter of *other* into this one."""
        for field in _COUNTER_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def as_dict(self) -> dict:
        """Plain-dict snapshot (stored inside cache segments)."""
        return {field: getattr(self, field) for field in _COUNTER_FIELDS}

    def absorb(self, data: dict) -> None:
        """Replay a stored scan's projection accounting (cache hits).

        Only ``matched``/``skipped`` are replayed: a warm partition did
        that navigation work once, at store time, and replaying it
        keeps ``projection_hits``/``projection_skips`` byte-identical
        across cache on/off.  Tape counters are *not* replayed — no
        structural index was built on the warm path.
        """
        self.matched += data.get("matched", 0)
        self.skipped += data.get("skipped", 0)


def _skip_ws(text: str, pos: int) -> int:
    return _WS_RE.match(text, pos).end()


def _skip_string(text: str, pos: int) -> int:
    """Skip the string literal opening at *pos*; returns the end offset."""
    i = pos + 1
    n = len(text)
    while True:
        quote = text.find('"', i)
        if quote < 0:
            raise JsonSyntaxError("unterminated string", pos)
        # A quote escaped by an odd number of backslashes is not the end.
        backslashes = 0
        j = quote - 1
        while j >= 0 and text[j] == "\\":
            backslashes += 1
            j -= 1
        if backslashes % 2 == 0:
            return quote + 1
        i = quote + 1


def _skip_value(text: str, pos: int) -> int:
    """Skip the JSON value at *pos* without tokenizing its interior."""
    pos = _skip_ws(text, pos)
    if pos >= len(text):
        raise JsonSyntaxError("unexpected end of input", pos)
    ch = text[pos]
    if ch == '"':
        return _skip_string(text, pos)
    if ch in "{[":
        depth = 0
        i = pos
        while True:
            match = _STRUCT_RE.search(text, i)
            if match is None:
                raise JsonSyntaxError("unterminated container", pos)
            found = match.group()
            if found == '"':
                i = _skip_string(text, match.start())
                continue
            depth += 1 if found in "{[" else -1
            i = match.end()
            if depth == 0:
                return i
    match = _NUMBER_RE.match(text, pos)
    if match is not None and match.end() > pos:
        return match.end()
    match = _LITERAL_RE.match(text, pos)
    if match is not None:
        return match.end()
    raise JsonSyntaxError(f"unexpected character {ch!r}", pos)


def _build_value(text: str, pos: int) -> tuple[Item, int]:
    """Materialize the value at *pos*; returns (item, end offset).

    A direct recursive parser over the in-memory text — cheaper for the
    many small matched values a projection yields than spinning up the
    incremental parser per match.
    """
    pos = _skip_ws(text, pos)
    if pos >= len(text):
        raise JsonSyntaxError("unexpected end of input", pos)
    ch = text[pos]
    if ch == '"':
        match = _STRING_RE.match(text, pos)
        if match is None:
            raise JsonSyntaxError("invalid string literal", pos)
        return _decode_string(match.group()[1:-1], pos + 1), match.end()
    if ch == "{":
        obj: dict = {}
        pos = _skip_ws(text, pos + 1)
        if pos < len(text) and text[pos] == "}":
            return obj, pos + 1
        while True:
            pos = _skip_ws(text, pos)
            key, pos = _read_key(text, pos)
            pos = _expect(text, pos, ":")
            obj[key], pos = _build_value(text, pos)
            pos = _skip_ws(text, pos)
            if pos >= len(text):
                raise JsonSyntaxError("unterminated object", pos)
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == "}":
                return obj, pos + 1
            raise JsonSyntaxError(
                f"expected ',' or '}}', found {text[pos]!r}", pos
            )
    if ch == "[":
        array: list = []
        pos = _skip_ws(text, pos + 1)
        if pos < len(text) and text[pos] == "]":
            return array, pos + 1
        while True:
            member, pos = _build_value(text, pos)
            array.append(member)
            pos = _skip_ws(text, pos)
            if pos >= len(text):
                raise JsonSyntaxError("unterminated array", pos)
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == "]":
                return array, pos + 1
            raise JsonSyntaxError(
                f"expected ',' or ']', found {text[pos]!r}", pos
            )
    match = _NUMBER_RE.match(text, pos)
    if match is not None and match.end() > pos:
        return _convert_number(match.group()), match.end()
    match = _LITERAL_RE.match(text, pos)
    if match is not None:
        return _LITERAL_VALUES[match.group()], match.end()
    raise JsonSyntaxError(f"unexpected character {ch!r}", pos)


def _read_key(text: str, pos: int) -> tuple[str, int]:
    """Read the object key at *pos* (must be a string literal)."""
    if pos >= len(text) or text[pos] != '"':
        raise JsonSyntaxError("expected object key", pos)
    match = _STRING_RE.match(text, pos)
    if match is None:
        raise JsonSyntaxError("invalid object key", pos)
    return _decode_string(match.group()[1:-1], pos + 1), match.end()


def _expect(text: str, pos: int, ch: str) -> int:
    pos = _skip_ws(text, pos)
    if pos >= len(text) or text[pos] != ch:
        raise JsonSyntaxError(f"expected {ch!r}", pos)
    return pos + 1


def _project(
    text: str,
    pos: int,
    path: Path,
    step_index: int,
    out: list,
    counters: ScanCounters | None = None,
) -> int:
    """Project steps from *step_index* over the value at *pos*.

    Matched items append to *out*; returns the value's end offset.
    When *counters* is given, materialized items bump ``matched`` and
    skipped-over values bump ``skipped``.
    """
    if step_index == len(path):
        item, end = _build_value(text, pos)
        out.append(item)
        if counters is not None:
            counters.matched += 1
        return end

    pos = _skip_ws(text, pos)
    if pos >= len(text):
        raise JsonSyntaxError("unexpected end of input", pos)
    ch = text[pos]
    step = path[step_index]

    if isinstance(step, ValueByKey):
        if ch != "{":
            return _skip(text, pos, counters)
        return _walk_object(text, pos, path, step_index, out, step.key, counters)
    if isinstance(step, ValueByIndex):
        if ch != "[":
            return _skip(text, pos, counters)
        return _walk_array(text, pos, path, step_index, out, step.index, counters)
    # KeysOrMembers
    if ch == "[":
        return _walk_array(text, pos, path, step_index, out, None, counters)
    if ch == "{":
        return _walk_object(text, pos, path, step_index, out, None, counters)
    return _skip(text, pos, counters)


def _skip(text: str, pos: int, counters: ScanCounters | None) -> int:
    """Skip the value at *pos*, counting it when *counters* is given."""
    end = _skip_value(text, pos)
    if counters is not None:
        counters.skipped += 1
    return end


def _walk_object(
    text: str,
    pos: int,
    path: Path,
    step_index: int,
    out: list,
    target_key: str | None,
    counters: ScanCounters | None = None,
) -> int:
    """Walk an object; ``target_key`` None means keys-or-members."""
    at_end = step_index + 1 == len(path)
    pos += 1  # past '{'
    pos = _skip_ws(text, pos)
    if pos < len(text) and text[pos] == "}":
        return pos + 1
    # Duplicate keys: the parser keeps the *last* occurrence of a
    # repeated key, so buffer each matching occurrence's projection
    # (items + counters) and emit only the final one at the closing
    # brace.  Keys-or-members likewise deduplicates, because the built
    # dict's keys() would.
    matched: list | None = None
    matched_counters: ScanCounters | None = None
    seen_keys: set[str] = set()
    while True:
        pos = _skip_ws(text, pos)
        key, pos = _read_key(text, pos)
        pos = _expect(text, pos, ":")
        pos = _skip_ws(text, pos)
        if target_key is None:
            # Keys-or-members over an object yields its keys.
            if at_end and key not in seen_keys:
                seen_keys.add(key)
                out.append(key)
                if counters is not None:
                    counters.matched += 1
            pos = _skip(text, pos, counters)
        elif key == target_key:
            occurrence: list = []
            occurrence_counters = None if counters is None else ScanCounters()
            pos = _project(
                text, pos, path, step_index + 1, occurrence, occurrence_counters
            )
            if matched is not None and counters is not None:
                # The earlier occurrence is discarded unseen: recount
                # the whole value as one skipped.
                counters.skipped += 1
            matched, matched_counters = occurrence, occurrence_counters
        else:
            pos = _skip(text, pos, counters)
        pos = _skip_ws(text, pos)
        if pos >= len(text):
            raise JsonSyntaxError("unterminated object", pos)
        if text[pos] == ",":
            pos += 1
            continue
        if text[pos] == "}":
            if matched is not None:
                out.extend(matched)
                if counters is not None:
                    counters.matched += matched_counters.matched
                    counters.skipped += matched_counters.skipped
            return pos + 1
        raise JsonSyntaxError(f"expected ',' or '}}', found {text[pos]!r}", pos)


def _skip_to_container_end(text: str, pos: int, start: int) -> int:
    """From depth 1 inside a container, skip just past its closer.

    Jumps at string-search speed: one structural hop per bracket, quote
    search over string literals — no per-member tokenization, the same
    leniency :func:`_skip_value` already applies to skipped containers.
    """
    depth = 1
    i = pos
    while True:
        match = _STRUCT_RE.search(text, i)
        if match is None:
            raise JsonSyntaxError("unterminated container", start)
        found = match.group()
        if found == '"':
            i = _skip_string(text, match.start())
            continue
        depth += 1 if found in "{[" else -1
        i = match.end()
        if depth == 0:
            return i


def _walk_array(
    text: str,
    pos: int,
    path: Path,
    step_index: int,
    out: list,
    target_index: int | None,
    counters: ScanCounters | None = None,
) -> int:
    """Walk an array; ``target_index`` None means keys-or-members."""
    start = pos
    pos += 1  # past '['
    pos = _skip_ws(text, pos)
    if pos < len(text) and text[pos] == "]":
        return pos + 1
    position = 0
    while True:
        pos = _skip_ws(text, pos)
        position += 1
        if target_index is None or position == target_index:
            pos = _project(text, pos, path, step_index + 1, out, counters)
            if target_index is not None:
                # Positions only grow, so no later member can match:
                # skip the rest of the array in one bulk hop.
                end = _skip_to_container_end(text, pos, start)
                if counters is not None and text[_skip_ws(text, pos)] != "]":
                    counters.skipped += 1
                return end
        else:
            pos = _skip(text, pos, counters)
        pos = _skip_ws(text, pos)
        if pos >= len(text):
            raise JsonSyntaxError("unterminated array", pos)
        if text[pos] == ",":
            pos += 1
            continue
        if text[pos] == "]":
            return pos + 1
        raise JsonSyntaxError(f"expected ',' or ']', found {text[pos]!r}", pos)


def _resync(text: str, pos: int, error: JsonSyntaxError) -> int:
    """Position to resume scanning from after a malformed top-level value.

    Resyncs at the next newline past the error (the line-delimited
    convention most concatenated-JSON files follow); a multi-line broken
    record may cascade into several skips, but the position strictly
    advances so the scan always terminates.
    """
    start = error.offset if error.offset is not None else pos
    start = max(start, pos)
    newline = text.find("\n", start)
    if newline < 0:
        return len(text)
    return newline + 1


def _default_projector(
    text: str,
    pos: int,
    path: Path,
    out: list,
    counters: ScanCounters | None,
) -> int:
    """Per-record projector of the raw-text skipper.

    ``scan_text``/``scan_file`` delegate each top-level value to a
    projector with this signature; :mod:`repro.jsonlib.tape` plugs its
    structural-index projector into the same sliding-buffer machinery.
    """
    return _project(text, pos, path, 0, out, counters)


def scan_text(
    text: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    counters: ScanCounters | None = None,
    projector=_default_projector,
) -> Iterator[Item]:
    """Project *path* over every top-level value of *text*.

    Yields matched items lazily per top-level value; within one
    top-level value matches are collected eagerly (the value has to be
    walked to its end anyway to find the next one).

    A leading byte-order mark is ignored, matching RFC 8259's allowance
    for BOM-prefixed JSON texts.

    With ``on_malformed="skip_record"`` a malformed top-level value is
    skipped (resyncing at the next newline) instead of raising; each
    skip is reported to ``recorder(offset, message)`` when given.  When
    *counters* is given it accumulates projection hit/skip counts.
    """
    pos = 1 if text.startswith(_BOM) else 0
    pos = _skip_ws(text, pos)
    n = len(text)
    while pos < n:
        out: list = []
        try:
            pos = projector(text, pos, path, out, counters)
        except JsonSyntaxError as error:
            if on_malformed != "skip_record":
                raise
            if recorder is not None:
                recorder(pos, str(error))
            pos = _skip_ws(text, _resync(text, pos, error))
            continue
        yield from out
        pos = _skip_ws(text, pos)


_DEFAULT_CHUNK_SIZE = 1 << 20  # characters per read


def _rebase(error: JsonSyntaxError, base: int) -> JsonSyntaxError:
    """Shift *error*'s buffer-relative offset to an absolute file offset."""
    if base == 0 or error.offset is None:
        return error
    message = error._init_args[0]
    return type(error)(message, base + error.offset)


def scan_file(
    file_path: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    chunk_size: int = _DEFAULT_CHUNK_SIZE,
    counters: ScanCounters | None = None,
    projector=_default_projector,
) -> Iterator[Item]:
    """Project *path* over a JSON file, reading it in chunks.

    The file streams through a sliding buffer: at least one chunk is
    read ahead, whole top-level values are scanned out of the buffer,
    and the consumed prefix is dropped as the scan advances — memory is
    bounded by ``chunk_size`` plus the largest single top-level value,
    never by file size.  A value that extends past the buffered text is
    detected (the skipper either raises mid-token or stops exactly at
    the buffer edge), the buffer grows by a doubling read, and the value
    is re-scanned — amortized linear in file size.

    A leading byte-order mark is stripped by the ``utf-8-sig`` codec
    (RFC 8259 allows BOM-prefixed JSON texts); absolute offsets count
    from the first post-BOM character, matching :func:`scan_text` on
    the decoded text.

    Offsets reported to ``recorder`` and carried by raised
    :class:`~repro.errors.JsonSyntaxError`\\ s are absolute file
    offsets, identical to what a whole-file :func:`scan_text` reports.
    When *counters* is given it accumulates projection hit/skip counts;
    a value re-scanned after a buffer grow is counted once.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size!r}")
    with open(file_path, "r", encoding="utf-8-sig") as handle:
        buffer = handle.read(chunk_size)
        eof = buffer == ""
        base = 0  # absolute offset of buffer[0]
        pos = 0
        read_size = chunk_size

        def grow() -> bool:
            """Read more text into the buffer; True when anything arrived."""
            nonlocal buffer, eof, read_size
            chunk = handle.read(read_size)
            if chunk == "":
                eof = True
                return False
            buffer += chunk
            # Double so a value spanning many chunks costs O(n) total
            # re-scans, not O(n^2).
            read_size *= 2
            return True

        while True:
            pos = _skip_ws(buffer, pos)
            if pos >= len(buffer):
                if eof or not grow():
                    return
                continue
            out: list = []
            # Counters accumulate per attempt and merge only once the
            # value is accepted, so a grow-and-retry re-scan of the same
            # value cannot double-count hits or skips.
            attempt = None if counters is None else ScanCounters()
            try:
                end = projector(buffer, pos, path, out, attempt)
            except JsonSyntaxError as error:
                # Not EOF yet: the error may just be a truncated token
                # (a string or container cut mid-chunk) — grow and retry.
                if not eof and grow():
                    continue
                if on_malformed != "skip_record":
                    raise _rebase(error, base) from None
                if recorder is not None:
                    recorder(base + pos, str(_rebase(error, base)))
                pos = _skip_ws(buffer, _resync(buffer, pos, error))
                continue
            if end >= len(buffer) and not eof:
                # The value ran to the buffer edge; it may continue in
                # the next chunk (e.g. a number whose digits are split),
                # so re-scan with more text before trusting it.
                if grow():
                    continue
            if counters is not None:
                counters.merge(attempt)
            yield from out
            pos = end
            if pos > chunk_size:
                # Drop the consumed prefix; keep offsets absolute.
                base += pos
                buffer = buffer[pos:]
                pos = 0
                read_size = chunk_size
