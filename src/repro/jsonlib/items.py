"""The JSONiq item model.

Following the JSONiq extension to the XQuery data model, an *item* is
either a JSON object, a JSON array, or an atomic value.  We represent
items directly with Python's native types:

========  ==================
JSONiq    Python
========  ==================
object    ``dict``
array     ``list``
string    ``str``
number    ``int`` / ``float``
boolean   ``bool``
null      ``None``
dateTime  :class:`datetime.datetime`
========  ==================

A *sequence* — the universal value of the algebra — is represented as a
Python ``list`` of items.  (Arrays are also lists; the algebra layer keeps
the two apart by context, exactly as VXQuery keeps XDM sequences distinct
from JSON arrays by tagging.  Tagging every array would double allocation
cost for no behavioural difference in the reproduced queries.)

This module also provides :func:`sizeof_item`, the byte-size estimator
used for memory accounting (Table 3 and Figure 18b of the paper), and an
:class:`ItemBuilder` that assembles items from a streaming-parse event
sequence.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Iterable, Iterator

from repro.errors import ItemTypeError, JsonSyntaxError
from repro.jsonlib.events import Event, EventKind

Item = Any

_ATOMIC_TYPES = (str, int, float, bool, type(None), datetime.datetime)


def is_object(item: Item) -> bool:
    """Return True if *item* is a JSON object."""
    return isinstance(item, dict)


def is_array(item: Item) -> bool:
    """Return True if *item* is a JSON array."""
    return isinstance(item, list)


def is_atomic(item: Item) -> bool:
    """Return True if *item* is an atomic (non-structured) item."""
    return isinstance(item, _ATOMIC_TYPES) and not isinstance(item, (dict, list))


def item_type_name(item: Item) -> str:
    """Return the JSONiq type name of *item* (used in error messages)."""
    if isinstance(item, dict):
        return "object"
    if isinstance(item, list):
        return "array"
    if isinstance(item, bool):
        return "boolean"
    if isinstance(item, str):
        return "string"
    if isinstance(item, (int, float)):
        return "number"
    if item is None:
        return "null"
    if isinstance(item, datetime.datetime):
        return "dateTime"
    raise ItemTypeError(f"value of type {type(item).__name__} is not a JSON item")


# ---------------------------------------------------------------------------
# Size estimation
# ---------------------------------------------------------------------------

# Per-item overheads, roughly calibrated to CPython object sizes.  The
# absolute numbers only need to be *consistent*: the paper's memory
# comparisons (Table 3, Figure 18b) are about ratios and trends.
_OBJECT_BASE = 64
_PER_PAIR = 16
_ARRAY_BASE = 56
_PER_MEMBER = 8
_STRING_BASE = 49
_NUMBER_BYTES = 28
_BOOL_NULL_BYTES = 8
_DATETIME_BYTES = 48


def sizeof_item(item: Item) -> int:
    """Estimate the in-memory footprint of *item* in bytes.

    The estimate is a deep, allocation-style size: containers charge a
    base cost plus a per-entry cost plus the size of their children.
    Implemented iteratively so that arbitrarily deep documents do not
    overflow the Python stack.
    """
    total = 0
    stack = [item]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            total += _OBJECT_BASE + _PER_PAIR * len(node)
            for key, value in node.items():
                total += _STRING_BASE + len(key)
                stack.append(value)
        elif isinstance(node, list):
            total += _ARRAY_BASE + _PER_MEMBER * len(node)
            stack.extend(node)
        elif isinstance(node, str):
            total += _STRING_BASE + len(node)
        elif isinstance(node, bool) or node is None:
            total += _BOOL_NULL_BYTES
        elif isinstance(node, (int, float)):
            total += _NUMBER_BYTES
        elif isinstance(node, datetime.datetime):
            total += _DATETIME_BYTES
        else:
            raise ItemTypeError(
                f"value of type {type(node).__name__} is not a JSON item"
            )
    return total


def sizeof_sequence(items: Iterable[Item]) -> int:
    """Estimate the footprint of a sequence of items."""
    return _ARRAY_BASE + sum(_PER_MEMBER + sizeof_item(item) for item in items)


# ---------------------------------------------------------------------------
# Canonical keys (grouping, distinct-values, join bucketing)
# ---------------------------------------------------------------------------


def _canonical_number(value: int | float) -> int | float:
    """One canonical representative per numeric *value*.

    XQuery numeric equality says ``1 eq 1.0``, so equal numbers must map
    to the same canonical object — including an identical ``repr``,
    because the hash-join exchange buckets on the CRC32 of the key's
    canonical repr.  Ints that are exactly representable as floats
    canonicalize to the float (so ``1`` and ``1.0`` collide); ints
    beyond float precision stay ints, which is safe because no float
    equals them.  ``-0.0`` collapses to ``0.0``.
    """
    if isinstance(value, int):
        try:
            as_float = float(value)
        except OverflowError:
            return value
        return as_float if as_float == value else value
    if value == 0.0:
        return 0.0  # collapse -0.0, whose repr differs
    return value


def canonical_atomic(item: Item) -> tuple:
    """A hashable canonical key for one atomic item.

    Follows XQuery atomic-value equality: numbers compare across
    int/float (``1`` equals ``1.0``), booleans stay distinct from
    numbers (``true`` is not ``1``), strings stay distinct from numbers,
    and ``NaN`` equals ``NaN`` (so distinct-values keeps one).
    """
    if isinstance(item, bool):
        return ("bool", item)
    if isinstance(item, (int, float)):
        if isinstance(item, float) and math.isnan(item):
            return ("nan", "NaN")
        return ("num", _canonical_number(item))
    return (type(item).__name__, item)


def canonical_item(item: Item) -> tuple:
    """A hashable canonical form of one item, recursing into containers.

    Containers canonicalize structurally so the numeric unification of
    :func:`canonical_atomic` reaches nested values — ``{"a": [1]}`` and
    ``{"a": [1.0]}`` share a key, matching :func:`deep_equals`.  Object
    keys are sorted, making the form (and its ``repr``, which the
    hash-join exchange buckets on) independent of insertion order.
    """
    if isinstance(item, dict):
        return (
            "obj",
            tuple(sorted((key, canonical_item(value)) for key, value in item.items())),
        )
    if isinstance(item, list):
        return ("arr", tuple(canonical_item(value) for value in item))
    return canonical_atomic(item)


def canonical_key(sequence: list) -> tuple:
    """A hashable canonical form of a sequence (a grouping/join key)."""
    return tuple(canonical_item(item) for item in sequence)


# ---------------------------------------------------------------------------
# Structural equality
# ---------------------------------------------------------------------------


def deep_equals(left: Item, right: Item) -> bool:
    """Structural equality of two items.

    Unlike plain ``==``, this keeps ``True`` distinct from ``1`` and
    ``1`` equal to ``1.0`` only when both are numbers — matching JSONiq
    deep-equal semantics.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, dict):
        if not isinstance(right, dict) or len(left) != len(right):
            return False
        for key, value in left.items():
            if key not in right or not deep_equals(value, right[key]):
                return False
        return True
    if isinstance(left, list):
        if not isinstance(right, list) or len(left) != len(right):
            return False
        return all(deep_equals(a, b) for a, b in zip(left, right))
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    return left == right


# ---------------------------------------------------------------------------
# Building items from event streams
# ---------------------------------------------------------------------------


class ItemBuilder:
    """Assemble items from a streaming-parse event sequence.

    The builder is push-based: feed it events with :meth:`push`; each time
    a complete *top-level* value closes, it is appended to
    :attr:`finished`.  The caller drains ``finished`` whenever convenient,
    which is how the streaming scanner keeps at most one document's worth
    of state in memory.
    """

    def __init__(self) -> None:
        self.finished: list[Item] = []
        # Stack of containers under construction.  Each entry is
        # (container, pending_key) where pending_key is the key awaiting a
        # value when the container is a dict.
        self._stack: list[tuple[Item, str | None]] = []

    def push(self, event: Event) -> None:
        """Feed one event into the builder."""
        kind = event.kind
        if kind is EventKind.ATOMIC:
            self._attach(event.value)
        elif kind is EventKind.KEY:
            if not self._stack or not isinstance(self._stack[-1][0], dict):
                raise JsonSyntaxError("KEY event outside an object")
            container, _ = self._stack[-1]
            self._stack[-1] = (container, event.value)
        elif kind is EventKind.START_OBJECT:
            self._stack.append(({}, None))
        elif kind is EventKind.START_ARRAY:
            self._stack.append(([], None))
        elif kind in (EventKind.END_OBJECT, EventKind.END_ARRAY):
            if not self._stack:
                raise JsonSyntaxError("unbalanced END event")
            container, pending = self._stack.pop()
            expected_dict = kind is EventKind.END_OBJECT
            if isinstance(container, dict) is not expected_dict:
                raise JsonSyntaxError("mismatched container END event")
            if pending is not None:
                raise JsonSyntaxError("object key without a value")
            self._attach(container)
        else:  # pragma: no cover - exhaustive over EventKind
            raise JsonSyntaxError(f"unexpected event kind {kind}")

    def _attach(self, value: Item) -> None:
        """Attach a completed value to the enclosing container (or finish)."""
        if not self._stack:
            self.finished.append(value)
            return
        container, pending = self._stack[-1]
        if isinstance(container, dict):
            if pending is None:
                raise JsonSyntaxError("object value without a key")
            container[pending] = value
            self._stack[-1] = (container, None)
        else:
            container.append(value)

    @property
    def depth(self) -> int:
        """Nesting depth of the value currently under construction."""
        return len(self._stack)

    def take_finished(self) -> list[Item]:
        """Return and clear the list of completed top-level items."""
        done = self.finished
        self.finished = []
        return done


def build_items(events: Iterable[Event]) -> Iterator[Item]:
    """Yield each complete top-level item assembled from *events*."""
    builder = ItemBuilder()
    for event in events:
        builder.push(event)
        if builder.finished:
            yield from builder.take_finished()
    if builder.depth:
        raise JsonSyntaxError("event stream ended inside a value")
