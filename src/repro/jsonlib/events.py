"""Event vocabulary for streaming JSON parsing.

A streaming parse of a JSON text is a flat sequence of events, in the
style of Jackson's ``JsonToken`` stream.  The six structural events are::

    START_OBJECT  END_OBJECT  START_ARRAY  END_ARRAY  KEY  ATOMIC

``KEY`` carries the member name inside an object; ``ATOMIC`` carries a
string, number, boolean, or ``None`` value.  A well-formed event stream
for one JSON value satisfies the grammar::

    value  := ATOMIC | object | array
    object := START_OBJECT (KEY value)* END_OBJECT
    array  := START_ARRAY value* END_ARRAY
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

AtomicValue = Union[str, int, float, bool, None]


class EventKind(enum.Enum):
    """Kind tag for a streaming-parse event."""

    START_OBJECT = "start_object"
    END_OBJECT = "end_object"
    START_ARRAY = "start_array"
    END_ARRAY = "end_array"
    KEY = "key"
    ATOMIC = "atomic"


@dataclass(frozen=True, slots=True)
class Event:
    """One event of a streaming JSON parse.

    ``value`` is the member name for :attr:`EventKind.KEY` events, the
    atomic value for :attr:`EventKind.ATOMIC` events, and ``None`` for the
    four structural events.
    """

    kind: EventKind
    value: AtomicValue = None

    def is_start(self) -> bool:
        """Return True for START_OBJECT / START_ARRAY."""
        return self.kind in (EventKind.START_OBJECT, EventKind.START_ARRAY)

    def is_end(self) -> bool:
        """Return True for END_OBJECT / END_ARRAY."""
        return self.kind in (EventKind.END_OBJECT, EventKind.END_ARRAY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind in (EventKind.KEY, EventKind.ATOMIC):
            return f"Event({self.kind.name}, {self.value!r})"
        return f"Event({self.kind.name})"


# Shared singleton events for the value-less kinds: parsing emits millions
# of these, so avoiding one allocation per structural token matters.
START_OBJECT = Event(EventKind.START_OBJECT)
END_OBJECT = Event(EventKind.END_OBJECT)
START_ARRAY = Event(EventKind.START_ARRAY)
END_ARRAY = Event(EventKind.END_ARRAY)


def key_event(name: str) -> Event:
    """Build a KEY event carrying the member name."""
    return Event(EventKind.KEY, name)


def atomic_event(value: AtomicValue) -> Event:
    """Build an ATOMIC event carrying a scalar value."""
    return Event(EventKind.ATOMIC, value)
