"""Navigation paths over JSON items.

A *path* is a sequence of JSONiq navigation steps, the vocabulary of
Section 3.2 of the paper:

- **value** steps: by key for objects (``("bookstore")``) or by 1-based
  index for arrays (``(2)``);
- **keys-or-members** (``()``): all members of an array, or all keys of an
  object.

Paths serve two purposes here.  :func:`navigate` evaluates a path against
a materialized item (the naive execution strategy), and
:mod:`repro.jsonlib.projection` evaluates a path directly against a
parse-event stream (the optimized DATASCAN strategy of Section 4.2).
The equivalence of the two is a property-based test invariant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import JsonError
from repro.jsonlib.items import Item


@dataclass(frozen=True, slots=True)
class ValueByKey:
    """Value step on an object: yields the value under ``key``."""

    key: str

    def __str__(self) -> str:
        return f'("{self.key}")'


@dataclass(frozen=True, slots=True)
class ValueByIndex:
    """Value step on an array: yields the 1-based ``index``-th member."""

    index: int

    def __str__(self) -> str:
        return f"({self.index})"


@dataclass(frozen=True, slots=True)
class KeysOrMembers:
    """Keys-or-members step: array members, or object keys."""

    def __str__(self) -> str:
        return "()"


PathStep = Union[ValueByKey, ValueByIndex, KeysOrMembers]


class Path:
    """An immutable sequence of navigation steps."""

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[PathStep] = ()):
        self.steps: tuple[PathStep, ...] = tuple(steps)

    def extended(self, step: PathStep) -> "Path":
        """Return a new path with *step* appended."""
        return Path(self.steps + (step,))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __getitem__(self, index: int) -> PathStep:
        return self.steps[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


_PATH_TOKEN_RE = re.compile(r'\(\s*(?:"((?:[^"\\]|\\.)*)"|(\d+))?\s*\)')


def parse_path(text: str) -> Path:
    """Parse a path written in query syntax, e.g. ``("root")()("results")()``.

    Empty parentheses denote keys-or-members; a quoted string denotes a
    value-by-key step; an integer denotes a value-by-index step.
    """
    steps: list[PathStep] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos == len(text):
            break
        match = _PATH_TOKEN_RE.match(text, pos)
        if match is None:
            raise JsonError(f"invalid path syntax at {text[pos:]!r}")
        key, index = match.group(1), match.group(2)
        if key is not None:
            steps.append(ValueByKey(key.replace('\\"', '"')))
        elif index is not None:
            steps.append(ValueByIndex(int(index)))
        else:
            steps.append(KeysOrMembers())
        pos = match.end()
    return Path(steps)


def apply_step(item: Item, step: PathStep) -> Iterator[Item]:
    """Apply one navigation step to one item.

    JSONiq navigation is forgiving: a step applied to an item of the
    wrong type yields the empty sequence rather than an error.
    """
    if isinstance(step, ValueByKey):
        if isinstance(item, dict) and step.key in item:
            yield item[step.key]
    elif isinstance(step, ValueByIndex):
        if isinstance(item, list) and 1 <= step.index <= len(item):
            yield item[step.index - 1]
    elif isinstance(step, KeysOrMembers):
        if isinstance(item, list):
            yield from item
        elif isinstance(item, dict):
            yield from item.keys()
    else:  # pragma: no cover - PathStep is a closed union
        raise JsonError(f"unknown path step {step!r}")


def navigate(item: Item, path: Path) -> list[Item]:
    """Evaluate *path* against a materialized *item*.

    Each step maps over the current sequence, concatenating results —
    the JSONiq sequence semantics.  This is the reference (naive)
    implementation that the projecting parser must agree with.
    """
    current: list[Item] = [item]
    for step in path:
        next_items: list[Item] = []
        for element in current:
            next_items.extend(apply_step(element, step))
        current = next_items
        if not current:
            break
    return current


def navigate_sequence(items: Iterable[Item], path: Path) -> list[Item]:
    """Evaluate *path* against each item of a sequence, concatenated."""
    result: list[Item] = []
    for item in items:
        result.extend(navigate(item, path))
    return result
