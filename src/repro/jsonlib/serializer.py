"""Serialization of JSON items back to text.

A from-scratch counterpart of :mod:`repro.jsonlib.parser`.  Round-tripping
``parse(dumps(item)) == item`` is one of the property-based invariants of
the test suite.
"""

from __future__ import annotations

import datetime
import math
from typing import IO

from repro.errors import ItemTypeError
from repro.jsonlib.items import Item

_ESCAPE_MAP = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_string(text: str) -> str:
    """Escape *text* for inclusion in a JSON string literal."""
    out: list[str] = []
    for ch in text:
        mapped = _ESCAPE_MAP.get(ch)
        if mapped is not None:
            out.append(mapped)
        elif ch < " ":
            out.append(f"\\u{ord(ch):04x}")
        else:
            out.append(ch)
    return "".join(out)


def _format_number(value: int | float) -> str:
    """Format a number as JSON text."""
    if isinstance(value, int):
        return str(value)
    if math.isnan(value) or math.isinf(value):
        raise ItemTypeError("NaN and infinity are not representable in JSON")
    return repr(value)


def _write_item(item: Item, out: list[str], indent: int | None, level: int) -> None:
    """Append the serialization of *item* to *out*."""
    if isinstance(item, dict):
        if not item:
            out.append("{}")
            return
        open_sep, close_sep, item_sep, pad = _separators(indent, level)
        out.append("{" + open_sep)
        first = True
        for key, value in item.items():
            if not first:
                out.append(item_sep)
            first = False
            out.append(pad)
            out.append(f'"{_escape_string(key)}": ')
            _write_item(value, out, indent, level + 1)
        out.append(close_sep + "}")
    elif isinstance(item, list):
        if not item:
            out.append("[]")
            return
        open_sep, close_sep, item_sep, pad = _separators(indent, level)
        out.append("[" + open_sep)
        first = True
        for value in item:
            if not first:
                out.append(item_sep)
            first = False
            out.append(pad)
            _write_item(value, out, indent, level + 1)
        out.append(close_sep + "]")
    elif isinstance(item, bool):
        out.append("true" if item else "false")
    elif item is None:
        out.append("null")
    elif isinstance(item, str):
        out.append(f'"{_escape_string(item)}"')
    elif isinstance(item, (int, float)):
        out.append(_format_number(item))
    elif isinstance(item, datetime.datetime):
        out.append(f'"{item.isoformat()}"')
    else:
        raise ItemTypeError(
            f"value of type {type(item).__name__} is not serializable as JSON"
        )


def _separators(indent: int | None, level: int) -> tuple[str, str, str, str]:
    """Return (after-open, before-close, between-items, item-pad) strings."""
    if indent is None:
        return "", "", ", ", ""
    pad = " " * (indent * (level + 1))
    close_pad = "\n" + " " * (indent * level)
    return "\n", close_pad, ",\n", pad


def dumps(item: Item, indent: int | None = None) -> str:
    """Serialize *item* to a JSON string.

    ``indent`` of None produces compact single-line output; an integer
    produces pretty-printed output with that many spaces per level.
    """
    out: list[str] = []
    _write_item(item, out, indent, 0)
    return "".join(out)


def dump(item: Item, handle: IO[str], indent: int | None = None) -> None:
    """Serialize *item* to an open text file handle."""
    handle.write(dumps(item, indent=indent))
