"""Correctness tooling: plan invariant validation and differential testing.

The paper's rewrite rules are only worth reproducing if they are
*semantics-preserving*; this package checks that on purpose instead of
by accident:

- :mod:`repro.correctness.validator` — structural plan invariants
  (variable scoping, nested-plan shape, aggregate arity), run by the
  fixpoint engine after every rule fire,
- :mod:`repro.correctness.oracle` — an independent plain-Python oracle
  for the five paper queries, promoted from ``bench/reference.py``,
- :mod:`repro.correctness.generator` — randomized GHCN-shaped documents
  and small JSONiq queries (each paired with its own oracle),
- :mod:`repro.correctness.harness` — the differential harness running
  queries through the rewrite-toggle × backend × projection matrix,
  with a minimizing shrinker for failures.
"""

from repro.correctness.validator import PlanInvariantError, validate_plan
from repro.correctness.oracle import (
    iter_measurements,
    oracle_result,
    reference_q0,
    reference_q0b,
    reference_q1,
    reference_q1_groups,
    reference_q2,
)
from repro.correctness.harness import (
    DiffCheckReport,
    Mismatch,
    canonical_result,
    run_diffcheck,
)

__all__ = [
    "PlanInvariantError",
    "validate_plan",
    "iter_measurements",
    "oracle_result",
    "reference_q0",
    "reference_q0b",
    "reference_q1",
    "reference_q1_groups",
    "reference_q2",
    "DiffCheckReport",
    "Mismatch",
    "canonical_result",
    "run_diffcheck",
]
